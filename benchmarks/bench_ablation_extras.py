"""Design-choice ablations beyond the paper's figures.

Three extra studies called out in DESIGN.md:

* AHD search cost — the exhaustive search space size and the simulated cost
  of the one-off profiling run, versus one epoch (the paper's amortisation
  argument in §IV-C / §V-B).
* Device-count scaling — Pipe-BD speedup over DP with 2-8 GPUs (the paper's
  single-node setting; §VIII names multi-node as future work).
* Interconnect sensitivity — Pipe-BD on PCIe 4.0 vs PCIe 3.0 at fixed GPU
  type, quantifying the claim that relay communication is nearly negligible.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.sweep import gpu_sensitivity
from repro.core.ablation import make_profile
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table
from repro.core.runner import run_ablation
from repro.data.dataset import get_dataset
from repro.hardware.interconnect import PCIE_3
from repro.hardware.server import ServerSpec, default_a6000_server
from repro.models.pairs import build_nas_pair
from repro.parallel.executor import ScheduleExecutor
from repro.parallel.hybrid import build_ahd_plan, search_ahd, search_space_size


@pytest.mark.benchmark(group="extras")
def test_ahd_search_cost(benchmark, fast_steps):
    """The AHD decision is a one-off, amortised cost."""
    pair = build_nas_pair("cifar10")
    server = default_a6000_server()
    dataset = get_dataset("cifar10")

    def run_search():
        profile = make_profile(pair, server, 256)
        return search_ahd(pair, server, 256, profile, dataset, keep_candidates=True), profile

    (result, profile) = benchmark(run_search)
    config = ExperimentConfig(task="nas", dataset="cifar10", simulated_steps=fast_steps)
    epoch = run_ablation(config, strategies=("TR+DPU+AHD",)).results["TR+DPU+AHD"].epoch_time

    rows = [
        ["search space size (B=6, N=4)", str(search_space_size(6, 4))],
        ["candidates evaluated", str(result.num_candidates)],
        ["profiling cost (simulated)", f"{profile.profiling_cost_s:.2f}s"],
        ["one training epoch (simulated)", f"{epoch:.2f}s"],
        ["profiling cost / 100-epoch run", f"{profile.profiling_cost_s / (100 * epoch) * 100:.2f}%"],
    ]
    emit("AHD scheduling-overhead ablation", format_table(["quantity", "value"], rows))
    assert result.num_candidates == search_space_size(6, 4)
    assert profile.profiling_cost_s < 0.05 * 100 * epoch


@pytest.mark.benchmark(group="extras")
def test_device_count_scaling(benchmark, session, fast_steps):
    """Pipe-BD speedup over DP as the single-node GPU count grows."""

    def sweep():
        base = ExperimentConfig(task="nas", dataset="imagenet", simulated_steps=fast_steps)
        grid = session.sweep(
            base, num_gpus=(2, 4, 6, 8), strategies=("DP", "TR+DPU+AHD")
        )
        return gpu_sensitivity(grid, "TR+DPU+AHD")

    speedups = benchmark(sweep)
    rows = [[f"{n} GPUs", f"{speedups[n]:.2f}x"] for n in sorted(speedups)]
    emit("Device-count scaling (NAS, ImageNet)", format_table(["devices", "Pipe-BD vs DP"], rows))
    assert all(value > 1.0 for value in speedups.values())


@pytest.mark.benchmark(group="extras")
def test_interconnect_sensitivity(benchmark, fast_steps):
    """Relay/all-reduce traffic over PCIe 3.0 vs 4.0 barely moves the needle."""
    pair = build_nas_pair("imagenet")
    dataset = get_dataset("imagenet")
    fast_server = default_a6000_server()
    slow_server = ServerSpec(
        name="4x RTX A6000 (PCIe 3.0)",
        gpus=fast_server.gpus,
        interconnect=PCIE_3,
        host=fast_server.host,
    )

    def measure():
        times = {}
        for label, server in (("PCIe 4.0", fast_server), ("PCIe 3.0", slow_server)):
            profile = make_profile(pair, server, 256)
            plan = build_ahd_plan(pair, server, 256, profile, dataset)
            executor = ScheduleExecutor(
                pair=pair, server=server, dataset=dataset, simulated_steps=fast_steps
            )
            times[label] = executor.execute(plan).epoch_time
        return times

    times = benchmark(measure)
    slowdown = times["PCIe 3.0"] / times["PCIe 4.0"]
    rows = [[label, f"{value:.1f}s"] for label, value in times.items()]
    rows.append(["PCIe 3.0 / PCIe 4.0", f"{slowdown:.3f}x"])
    emit("Interconnect sensitivity (NAS, ImageNet, Pipe-BD)", format_table(["config", "epoch"], rows))
    # §IV-A: communication is almost negligible in the single-node setting.
    assert slowdown < 1.25
