"""Table II accuracy columns / §VII-D — training-quality parity.

The paper argues Pipe-BD cannot hurt accuracy because it only reorders the
schedule.  This benchmark trains the same student blocks under the baseline's
sequential ordering and under Pipe-BD's decoupled ordering on the numpy
autograd engine and reports the resulting losses and the maximum parameter
difference (which must be exactly zero).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.reporting import format_table
from repro.distill.datasets import SyntheticImageDataset
from repro.distill.trainer import (
    BlockwiseDistiller,
    build_compression_block_pairs,
    build_nas_block_pairs,
)

WORKLOADS = ("compression", "nas")


def _train_both(workload: str):
    dataset = SyntheticImageDataset(num_samples=64, sample_shape=(3, 8, 8), seed=17)
    if workload == "compression":
        build = build_compression_block_pairs
    else:
        build = build_nas_block_pairs
    baseline = BlockwiseDistiller(build(seed=21), lr=0.1)
    pipe_bd = BlockwiseDistiller(build(seed=21), lr=0.1)
    history_baseline = baseline.train_sequential(dataset, batch_size=8, steps_per_block=12)
    history_pipe_bd = pipe_bd.train_decoupled(dataset, batch_size=8, steps_per_block=12)
    state_baseline = baseline.student_state()
    state_pipe_bd = pipe_bd.student_state()
    max_diff = max(
        float(np.abs(state_baseline[name] - state_pipe_bd[name]).max()) for name in state_baseline
    )
    return history_baseline, history_pipe_bd, max_diff


@pytest.mark.benchmark(group="accuracy-parity")
@pytest.mark.parametrize("workload", WORKLOADS)
def test_accuracy_parity(benchmark, workload):
    history_baseline, history_pipe_bd, max_diff = benchmark(_train_both, workload)

    rows = []
    for block_index in history_baseline.block_indices():
        rows.append(
            [
                f"block {block_index}",
                f"{history_baseline.final_loss(block_index):.6f}",
                f"{history_pipe_bd.final_loss(block_index):.6f}",
            ]
        )
    rows.append(["max |param diff|", f"{max_diff:.2e}", f"{max_diff:.2e}"])
    emit(
        f"§VII-D — training quality parity ({workload} blocks)",
        format_table(["quantity", "baseline (DP order)", "Pipe-BD (decoupled order)"], rows),
    )

    # Identical data order => bit-identical parameters and losses.
    assert max_diff == 0.0
    for block_index in history_baseline.block_indices():
        assert history_baseline.final_loss(block_index) == pytest.approx(
            history_pipe_bd.final_loss(block_index), abs=0.0
        )
        # And training makes progress: each curve is finite and the average
        # of its second half does not exceed that of its first half (the
        # per-step values are noisy because each step sees a different batch).
        curve = np.array(history_pipe_bd.losses[block_index])
        assert np.all(np.isfinite(curve))
        half = len(curve) // 2
        assert curve[half:].mean() <= curve[:half].mean() * 1.10
