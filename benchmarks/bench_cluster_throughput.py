"""Cluster benchmark — fleet throughput under the three placement policies.

Not a paper figure: the paper schedules blocks within one job on one server;
this benchmark exercises the queueing layer above it.  A seeded 200-job
Poisson workload (mixed tasks, batch sizes, strategies and gang sizes) is
served by a heterogeneous 4-node fleet under FIFO first-fit, best-fit
packing and shortest-job-first, sharing one :class:`~repro.core.session.Session`
so profiles are built once per experiment cell across all 600 placements.

Expected shape: best-fit packs tightest (highest GPU utilization, shortest
makespan), SJF minimises mean queue wait, FIFO trails both because its queue
head blocks everything behind it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.cluster_report import compare_policies, format_cluster_report
from repro.cluster import default_cluster, poisson_workload, run_policy_comparison
from repro.cluster.simulator import ClusterSimulator

NUM_JOBS = 200
ARRIVAL_RATE = 0.5  # jobs/sec: heavy enough that gangs queue and policies differ
POLICY_NAMES = ("fifo", "best-fit", "sjf")


@pytest.fixture(scope="module")
def workload():
    return poisson_workload(num_jobs=NUM_JOBS, rate=ARRIVAL_RATE, seed=0)


@pytest.fixture(scope="module")
def cluster():
    return default_cluster()


@pytest.mark.benchmark(group="cluster")
def test_cluster_policy_throughput(benchmark, session, cluster, workload):
    reports = benchmark(run_policy_comparison, cluster, workload, POLICY_NAMES, session)

    emit(
        f"Cluster throughput — {NUM_JOBS} Poisson jobs on {cluster.name}",
        compare_policies(reports),
    )
    for name, report in reports.items():
        emit(f"Cluster detail — {name}", format_cluster_report(report))
        emit_json(f"cluster_{name.replace('-', '_')}", report.to_dict())

    # Every policy serves every job; the fleet is never left idle with work.
    for report in reports.values():
        assert report.num_jobs == NUM_JOBS
        assert 0.0 < report.gpu_utilization <= 1.0
    # Packing beats strict FIFO on makespan; SJF beats it on mean wait.
    assert reports["best-fit"].makespan <= reports["fifo"].makespan
    assert reports["sjf"].mean_wait <= reports["fifo"].mean_wait

    # Cache amortisation: hundreds of jobs collapse onto a handful of
    # experiment cells, so profile builds stay far below the job count.
    assert session.stats.profile_builds < NUM_JOBS / 4


def test_cluster_run_is_deterministic(session, cluster, workload):
    first = ClusterSimulator(cluster, policy="best-fit", session=session).run(workload)
    second = ClusterSimulator(cluster, policy="best-fit", session=session).run(workload)
    assert first.to_dict() == second.to_dict()
    emit(
        "Cluster determinism",
        f"best-fit makespan reproduced bit-identically: {first.makespan:.3f}s",
    )
