"""Engine-primitive microbenchmarks behind the PR-8 performance work.

Three primitives carry the simulator's hot paths, and each gets a focused
measurement here:

* **Event loop** — a synthetic pipeline task graph (every task depends on its
  predecessor on the same resource and on the same step of the previous
  resource) is executed at two fleet widths.  The candidate-heap rewrite made
  per-event cost O(log R) instead of an O(R) scan, so events/sec should be
  roughly flat in the resource count.  The deterministic ``makespan_s`` and
  task counts are gated by the ±20% perf-regression job; the events/sec
  throughput is wall-clock and stays ungated.
* **Memo fills** — a gang burst of identical jobs arriving at t=0 exercises
  the batched epoch-memo fill: one ``cluster.memo_fill`` span per drain
  instant covering every missing cell, zero spans once the memo is warm.
  Span/cell/simulation counts are gated; fill latency is recorded ungated.
* **Vectorized estimator** — the AHD planner search scored through
  ``estimator_vec`` versus the scalar triple loop (``REPRO_NO_VECTOR=1``).
  Both must pick the same winner at the same float; the speedup must hold
  the >=3x acceptance floor asserted in-test (the ratio itself is wall-clock
  and ungated).

Run with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_primitives.py -q -s
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit, emit_json
from repro.cluster import default_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.workload import JobSpec, Workload
from repro.core.reporting import format_table
from repro.core.session import Session
from repro.obs.tracing import SpanRecorder
from repro.parallel.hybrid import search_ahd
from repro.sim.engine import SimulationEngine
from repro.sim.events import TaskKind

ENGINE_WIDTHS = (8, 32)
TASKS_PER_RESOURCE = 200
BURST_JOBS = 24
SPEEDUP_FLOOR = 3.0
TIMING_REPEATS = 5


def _best_of(repeats, fn):
    """Minimum wall time of ``fn`` over ``repeats`` calls (first result kept)."""
    result = fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _pipeline_graph(num_resources: int) -> SimulationEngine:
    """A dense synthetic pipeline: steps chained per resource, relayed across.

    Task (step, resource) depends on (step-1, resource) and (step, resource-1),
    mirroring the dependency shape the executor emits, so the event loop sees
    realistic queue contention on every pop.
    """
    engine = SimulationEngine()
    previous_row: list = []
    for step in range(TASKS_PER_RESOURCE):
        row = []
        for res in range(num_resources):
            deps = []
            if row:
                deps.append(row[-1])
            if previous_row:
                deps.append(previous_row[res])
            row.append(
                engine.add_task(
                    name=f"t{step}.{res}",
                    kind=TaskKind.STUDENT_FORWARD,
                    resource=f"gpu{res}",
                    duration=0.001 * (1 + (step + res) % 7),
                    deps=deps,
                    step=step,
                    device=res,
                )
            )
        previous_row = row
    return engine


def test_event_engine_throughput():
    rows = []
    payload_runs = []
    for width in ENGINE_WIDTHS:
        engine = _pipeline_graph(width)
        elapsed, trace = _best_of(TIMING_REPEATS, engine.run)
        events = engine.num_tasks
        assert len(trace) == events
        rows.append(
            [
                str(width),
                str(events),
                f"{trace.makespan:.4f}",
                f"{elapsed * 1e3:.2f}",
                f"{events / elapsed:,.0f}",
            ]
        )
        payload_runs.append(
            {
                "resources": width,
                "num_tasks": events,
                "makespan_s": trace.makespan,
                "run_ms": elapsed * 1e3,
                "events_per_sec": events / elapsed,
            }
        )
    payload = {"tasks_per_resource": TASKS_PER_RESOURCE, "runs": payload_runs}
    emit_json("engine_primitives_event_loop", payload)
    emit(
        "Event engine throughput — candidate-heap loop on synthetic pipelines",
        format_table(
            ["resources", "tasks", "makespan s", "run ms", "events/s"], rows
        ),
    )
    # O(log R) per event: quadrupling the fleet must not halve throughput
    # (the old O(R) scan degraded roughly linearly in R).
    narrow, wide = payload_runs
    assert wide["events_per_sec"] > narrow["events_per_sec"] / 2.0, payload_runs


def test_memo_fill_batch_latency(session):
    jobs = tuple(
        JobSpec(
            job_id=f"burst-{index}",
            arrival_time=0.0,
            gpus=2,
            task="nas",
            dataset="cifar10",
            batch_size=128,
            strategy="TR",
            epochs=1,
            simulated_steps=4,
        )
        for index in range(BURST_JOBS)
    )
    workload = Workload(name="memo-burst", jobs=jobs)
    cluster = default_cluster()
    memo: dict = {}

    simulator = ClusterSimulator(cluster, policy="fifo", session=session, epoch_time_cache=memo)
    with SpanRecorder() as recorder:
        start = time.perf_counter()
        report = simulator.run(workload)
        cold_s = time.perf_counter() - start
    fills = [s for s in recorder.spans() if s.name == "cluster.memo_fill"]
    fill_cells = sum(s.tags["cells"] for s in fills)

    warm = ClusterSimulator(cluster, policy="fifo", session=session, epoch_time_cache=memo)
    runs_before = session.stats.runs
    with SpanRecorder() as warm_recorder:
        start = time.perf_counter()
        warm_report = warm.run(workload)
        warm_s = time.perf_counter() - start
    warm_fills = [s for s in warm_recorder.spans() if s.name == "cluster.memo_fill"]

    # One drain instant -> one span covering every missing cell; a warm memo
    # never opens a fill span or touches the simulator, and the schedule is
    # identical either way.
    assert len(fills) == 1
    assert fill_cells == simulator.simulations_run
    assert warm_fills == []
    assert session.stats.runs == runs_before
    assert warm_report.to_dict() == report.to_dict()

    payload = {
        "jobs": BURST_JOBS,
        "memo_fill_spans": len(fills),
        "memo_fill_cells": fill_cells,
        "simulations": simulator.simulations_run,
        "warm_memo_fill_spans": len(warm_fills),
        "makespan_s": report.makespan,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
    }
    emit_json("engine_primitives_memo_fill", payload)
    emit(
        "Batched epoch-memo fills — gang burst on the default fleet",
        f"{BURST_JOBS} jobs, {len(fills)} fill span covering "
        f"{fill_cells} cells ({simulator.simulations_run} simulations); "
        f"cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms, "
        f"warm fill spans: {len(warm_fills)}",
    )


def test_vectorized_estimator_speedup(session, fast_steps):
    from repro.tune.space import TuneSpace

    space = TuneSpace(
        strategies=("TR+DPU+AHD",),
        batch_sizes=(256,),
        gpu_counts=(4,),
        servers=("a6000",),
    )
    config = space.points()[0].config(fast_steps)
    pair = session.pair(config)
    server = session.server(config)
    dataset = session.dataset(config)
    profile = session.profile(config)

    def run_search():
        return search_ahd(pair, server, config.batch_size, profile, dataset)

    saved = os.environ.pop("REPRO_NO_VECTOR", None)
    try:
        vec_s, vec_result = _best_of(TIMING_REPEATS, run_search)
        os.environ["REPRO_NO_VECTOR"] = "1"
        scalar_s, scalar_result = _best_of(TIMING_REPEATS, run_search)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_VECTOR", None)
        else:
            os.environ["REPRO_NO_VECTOR"] = saved

    # Same winner at the same float — the equivalence suite's guarantee,
    # re-checked here on the exact cell being timed.
    assert vec_result.best.step_time == scalar_result.best.step_time
    assert vec_result.best.plan.stages == scalar_result.best.plan.stages

    speedup = scalar_s / vec_s
    payload = {
        "search_space_size": vec_result.best.plan.metadata["search_space_size"],
        "step_time_s": vec_result.best.step_time,
        "vector_ms": vec_s * 1e3,
        "scalar_ms": scalar_s * 1e3,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    emit_json("engine_primitives_estimator", payload)
    emit(
        "Vectorized AHD search vs scalar triple loop",
        f"{payload['search_space_size']} candidates: "
        f"vector {vec_s * 1e3:.3f} ms, scalar {scalar_s * 1e3:.3f} ms "
        f"-> {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)",
    )
    assert speedup >= SPEEDUP_FLOOR, payload
