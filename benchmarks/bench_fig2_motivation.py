"""Fig. 2 — motivational breakdown: Baseline vs Ideal vs Pipe-BD.

NAS on CIFAR-10 with four RTX A6000 GPUs, batch 256.  The paper's figure
shows the per-epoch time split into data loading, teacher execution, student
execution and idle time; the baseline is dominated by redundant teacher
execution and under-utilised student execution, the ideal bar removes all
redundancy, and Pipe-BD lands close to ideal.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.breakdown import breakdown_total, epoch_breakdown, ideal_breakdown
from repro.core.config import ExperimentConfig
from repro.core.runner import run_ablation
from repro.core.reporting import format_table


def _measure(fast_steps: int):
    config = ExperimentConfig(task="nas", dataset="cifar10", simulated_steps=fast_steps)
    suite = run_ablation(config, strategies=("DP", "TR+DPU+AHD"))
    baseline = epoch_breakdown(suite.results["DP"])
    pipe_bd = epoch_breakdown(suite.results["TR+DPU+AHD"])
    ideal = ideal_breakdown(
        config.build_pair(), config.build_server(), config.build_dataset(), config.batch_size
    )
    return baseline, ideal, pipe_bd


@pytest.mark.benchmark(group="fig2")
def test_fig2_motivational_breakdown(benchmark, fast_steps):
    baseline, ideal, pipe_bd = benchmark(_measure, fast_steps)

    categories = ("data_load", "teacher_exec", "student_exec", "idle")
    rows = []
    for label, breakdown in (("Baseline (DP)", baseline), ("Ideal", ideal), ("Pipe-BD", pipe_bd)):
        rows.append(
            [label]
            + [f"{breakdown[category]:.2f}s" for category in categories]
            + [f"{breakdown_total(breakdown):.2f}s"]
        )
    emit(
        "Fig. 2 — time/epoch breakdown (NAS, CIFAR-10, 4x A6000)",
        format_table(["bar"] + list(categories) + ["total"], rows),
    )

    # Shape checks: baseline > Pipe-BD > ideal, and the baseline's redundant
    # teacher execution is the dominant removable component.
    assert breakdown_total(baseline) > breakdown_total(pipe_bd) > breakdown_total(ideal)
    assert baseline["teacher_exec"] > pipe_bd["teacher_exec"]
    assert baseline["data_load"] >= pipe_bd["data_load"] * 0.95
