"""Fig. 4 — speedup and ablation of baselines and Pipe-BD.

Four cells: (NAS, compression) x (CIFAR-10, ImageNet) on 4x RTX A6000 at
batch 256.  For each cell the figure plots the speedup of LS, TR, TR+DPU,
TR+IR and TR+DPU+AHD over the DP baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.ablation import ALL_STRATEGIES
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table

CELLS = (
    ("nas", "cifar10"),
    ("nas", "imagenet"),
    ("compression", "cifar10"),
    ("compression", "imagenet"),
)


def _measure_cell(session, task: str, dataset: str, fast_steps: int):
    config = ExperimentConfig(task=task, dataset=dataset, simulated_steps=fast_steps)
    return session.ablation(config, strategies=tuple(ALL_STRATEGIES))


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("task,dataset", CELLS, ids=[f"{t}-{d}" for t, d in CELLS])
def test_fig4_speedup_ablation(benchmark, session, task, dataset, fast_steps):
    suite = benchmark(_measure_cell, session, task, dataset, fast_steps)
    speedups, epoch_times = suite.speedups("DP"), suite.epoch_times()

    rows = [
        [strategy, f"{epoch_times[strategy]:.2f}s", f"{speedups[strategy]:.2f}x"]
        for strategy in ALL_STRATEGIES
    ]
    emit(
        f"Fig. 4 — speedup over DP ({task}, {dataset}, 4x A6000, batch 256)",
        format_table(["strategy", "epoch time", "speedup vs DP"], rows),
    )
    emit_json(f"fig4_{task}_{dataset}", suite.to_dict())

    # Shape checks shared by every cell: Pipe-BD wins, each Pipe-BD technique
    # is at least as good as the previous one.
    assert speedups["TR+DPU+AHD"] > 1.0
    assert speedups["TR+DPU+AHD"] >= speedups["TR+DPU"] * 0.99
    assert speedups["TR+DPU"] >= speedups["TR"] * 0.99
    assert speedups["TR+DPU+AHD"] > speedups["LS"]
    if dataset == "cifar10":
        # §VII-A: LS beats DP on CIFAR-10.
        assert speedups["LS"] > 1.0
    if dataset == "imagenet":
        # §VII-A: AHD has a large impact on ImageNet (heavy block 0).
        assert speedups["TR+DPU+AHD"] > speedups["TR+DPU"] * 1.05
