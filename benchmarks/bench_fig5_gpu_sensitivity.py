"""Fig. 5 — GPU-type sensitivity of Pipe-BD on NAS / ImageNet.

(a) speedups of the strategies on a 4x RTX 2080Ti server vs the default
4x RTX A6000 server; (b, c) the AHD schedules Pipe-BD picks automatically for
each machine.  The paper's point is that the speedup trends are similar but
the automatically chosen schedules differ, because the block-0 imbalance gap
is wider on the A6000.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.schedule_viz import schedule_summary
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table

STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")


def _measure(session, server: str, fast_steps: int):
    config = ExperimentConfig(
        task="nas", dataset="imagenet", server=server, simulated_steps=fast_steps
    )
    suite = session.ablation(config, strategies=STRATEGIES)
    return suite, suite.results["TR+DPU+AHD"].plan


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("server", ("2080ti", "a6000"))
def test_fig5_gpu_sensitivity(benchmark, session, server, fast_steps):
    suite, plan = benchmark(_measure, session, server, fast_steps)
    speedups = suite.speedups("DP")

    rows = [[strategy, f"{speedups[strategy]:.2f}x"] for strategy in STRATEGIES]
    emit(
        f"Fig. 5a — speedup over DP (NAS, ImageNet, 4x {server})",
        format_table(["strategy", "speedup vs DP"], rows),
    )
    emit(f"Fig. 5b/c — AHD schedule on {server}", schedule_summary(plan))
    emit_json(f"fig5_{server}", suite.to_dict())

    assert speedups["TR+DPU+AHD"] > 1.0
    # The heavy ImageNet block 0 is shared across devices on both machines.
    assert plan.stages[0].num_devices >= 2


def test_fig5_schedules_differ_between_gpu_types(session, fast_steps):
    """The automatic scheduler reacts to the GPU type (Fig. 5b vs 5c)."""
    _, plan_ti = _measure(session, "2080ti", fast_steps)
    _, plan_a6000 = _measure(session, "a6000", fast_steps)
    signature_ti = [(stage.block_ids, stage.device_ids) for stage in plan_ti.stages]
    signature_a6000 = [(stage.block_ids, stage.device_ids) for stage in plan_a6000.stages]
    emit(
        "Fig. 5 — schedule comparison",
        f"2080Ti: {signature_ti}\nA6000 : {signature_a6000}",
    )
    assert signature_ti != signature_a6000
