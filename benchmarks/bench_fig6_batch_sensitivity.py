"""Fig. 6 — batch-size sensitivity of Pipe-BD on NAS.

Batch sizes 128 / 256 / 384 / 512 on CIFAR-10 and ImageNet, 4x RTX A6000,
speedups normalised against DP at each batch size.  The paper's trends: the
speedup is generally larger at smaller batch sizes (utilization gap), except
AHD on ImageNet which improves with batch size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table
from repro.core.runner import run_ablation

BATCH_SIZES = (128, 256, 384, 512)
STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")


def _measure(dataset: str, fast_steps: int):
    series = {}
    for batch_size in BATCH_SIZES:
        config = ExperimentConfig(
            task="nas", dataset=dataset, batch_size=batch_size, simulated_steps=fast_steps
        )
        suite = run_ablation(config, strategies=STRATEGIES)
        series[batch_size] = suite.speedups("DP")
    return series


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("dataset", ("cifar10", "imagenet"))
def test_fig6_batch_size_sensitivity(benchmark, dataset, fast_steps):
    series = benchmark(_measure, dataset, fast_steps)

    rows = []
    for strategy in STRATEGIES:
        rows.append(
            [strategy] + [f"{series[batch][strategy]:.2f}x" for batch in BATCH_SIZES]
        )
    emit(
        f"Fig. 6 — speedup over DP vs batch size (NAS, {dataset}, 4x A6000)",
        format_table(["strategy"] + [f"b{batch}" for batch in BATCH_SIZES], rows),
    )

    # Pipe-BD wins at every batch size.
    for batch in BATCH_SIZES:
        assert series[batch]["TR+DPU+AHD"] > 1.0
    # Fig. 6 trend: the advantage at the smallest batch is at least comparable
    # to the largest batch (utilization difference shrinks as batches grow).
    assert series[128]["TR+DPU+AHD"] >= series[512]["TR+DPU+AHD"] * 0.85
