"""Fig. 6 — batch-size sensitivity of Pipe-BD on NAS.

Batch sizes 128 / 256 / 384 / 512 on CIFAR-10 and ImageNet, 4x RTX A6000,
speedups normalised against DP at each batch size.  The paper's trends: the
speedup is generally larger at smaller batch sizes (utilization gap), except
AHD on ImageNet which improves with batch size.

This benchmark drives the grid through ``Session.sweep``, so the profile
table for each (pair, server, batch) cell is built exactly once and shared
by every strategy.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.sweep import batch_sensitivity
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table

BATCH_SIZES = (128, 256, 384, 512)
STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")


def _measure(session, dataset: str, fast_steps: int):
    base = ExperimentConfig(task="nas", dataset=dataset, simulated_steps=fast_steps)
    return session.sweep(base, batch_sizes=BATCH_SIZES, strategies=STRATEGIES)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("dataset", ("cifar10", "imagenet"))
def test_fig6_batch_size_sensitivity(benchmark, session, dataset, fast_steps):
    sweep = benchmark(_measure, session, dataset, fast_steps)
    series = {
        strategy: batch_sensitivity(sweep, strategy) for strategy in STRATEGIES
    }

    rows = [
        [strategy] + [f"{series[strategy][batch]:.2f}x" for batch in BATCH_SIZES]
        for strategy in STRATEGIES
    ]
    emit(
        f"Fig. 6 — speedup over DP vs batch size (NAS, {dataset}, 4x A6000)",
        format_table(["strategy"] + [f"b{batch}" for batch in BATCH_SIZES], rows),
    )
    emit_json(f"fig6_{dataset}", sweep.to_dict())

    # Pipe-BD wins at every batch size.
    for batch in BATCH_SIZES:
        assert series["TR+DPU+AHD"][batch] > 1.0
    # Fig. 6 trend: the advantage at the smallest batch is at least comparable
    # to the largest batch (utilization difference shrinks as batches grow).
    assert series["TR+DPU+AHD"][128] >= series["TR+DPU+AHD"][512] * 0.85
