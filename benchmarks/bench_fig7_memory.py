"""Fig. 7 — per-rank memory overhead of Pipe-BD on NAS.

Peak memory allocation of each rank (and the maximum over ranks) for DP, LS,
TR/TR+DPU and TR+DPU+AHD on CIFAR-10 and ImageNet.  The paper's shape:
teacher relaying concentrates memory on the low-indexed ranks (large feature
maps), AHD relieves that by splitting the heavy blocks along the batch
dimension, and the average overhead of Pipe-BD over DP stays minor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.memory_report import average_memory_overhead, per_rank_memory_gb
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table, memory_table
from repro.core.runner import run_ablation

STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")


def _measure(dataset: str, fast_steps: int):
    config = ExperimentConfig(task="nas", dataset=dataset, simulated_steps=fast_steps)
    return run_ablation(config, strategies=STRATEGIES)


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("dataset", ("cifar10", "imagenet"))
def test_fig7_memory_overhead(benchmark, dataset, fast_steps):
    suite = benchmark(_measure, dataset, fast_steps)
    results = suite.results

    emit(
        f"Fig. 7 — max memory allocation per rank (NAS, {dataset})",
        memory_table(results),
    )
    overhead_rows = [
        [strategy, f"{average_memory_overhead(results[strategy], results['DP']) * 100:.1f}%"]
        for strategy in STRATEGIES
        if strategy != "DP"
    ]
    emit(
        f"§VII-C — average per-rank memory overhead over DP ({dataset})",
        format_table(["strategy", "avg overhead"], overhead_rows),
    )

    tr = per_rank_memory_gb(results["TR"])
    ahd = per_rank_memory_gb(results["TR+DPU+AHD"])
    # TR's rank 0 holds the big-feature-map blocks.
    assert tr[0] >= max(tr[d] for d in (1, 2, 3)) * 0.99
    # Every strategy fits the 48 GB A6000.
    for result in results.values():
        assert result.max_memory_gb() < 48.0
    # AHD does not increase the worst rank compared with TR.
    assert max(ahd.values()) <= max(tr.values()) * 1.05
