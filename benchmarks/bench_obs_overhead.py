"""Telemetry overhead: an instrumented sweep vs the no-op-recorder path.

Every hot path in the codebase carries ``span(...)`` context managers and
metrics-registry updates.  With no :class:`~repro.obs.tracing.SpanRecorder`
installed (the default, and what every non-``profile`` entry point runs),
``span()`` returns a shared null singleton — the telemetry must then cost
nothing measurable.  This benchmark times ``Session.sweep`` over a fixed
grid both ways, interleaved with fresh sessions and min-of-N so process
warmup and scheduler noise cancel, and asserts the fully *recorded* run
stays within 5% of the no-op run.

``overhead_ratio`` (recorded / no-op, ~1.0) and the deterministic
``simulations`` count are gated by the ±20% perf-regression CI job
against ``benchmarks/baselines/obs_overhead.json``; the raw millisecond
timings are recorded for the report but deliberately ungated — absolute
speed is the business of ``bench_cluster_throughput`` /
``bench_serve_latency``.
"""

from __future__ import annotations

import gc
import time

from benchmarks.conftest import emit, emit_json
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table
from repro.core.session import Session
from repro.obs.tracing import SpanRecorder

REPEATS = 7
BATCH_SIZES = (128, 256)
GPU_COUNTS = (2, 4)
STRATEGIES = ("DP", "TR+DPU+AHD")
ASSERTED_MAX_OVERHEAD = 1.05


def _sweep_once(fast_steps, recorder):
    """One cold sweep on a fresh store-less session; returns (seconds, sweep)."""
    session = Session()
    base = ExperimentConfig(simulated_steps=fast_steps)

    def run():
        return session.sweep(
            base,
            batch_sizes=list(BATCH_SIZES),
            num_gpus=list(GPU_COUNTS),
            strategies=list(STRATEGIES),
        )

    start = time.perf_counter()
    if recorder is None:
        sweep = run()
    else:
        with recorder:
            sweep = run()
    return time.perf_counter() - start, sweep


def test_obs_overhead(fast_steps):
    # Untimed warmup: build model pairs / profiles once so neither arm pays
    # first-touch costs.
    _sweep_once(fast_steps, None)

    noop_times, recorded_times = [], []
    simulations = None
    gc_was_enabled = gc.isenabled()
    gc.disable()  # collector pauses are the dominant noise at this scale
    try:
        for repeat in range(REPEATS):
            # Alternate which arm goes first so drift (cache warmth, CPU
            # frequency) biases neither side.
            arms = ["noop", "recorded"]
            if repeat % 2:
                arms.reverse()
            sizes = {}
            for arm in arms:
                recorder = (
                    None if arm == "noop" else SpanRecorder(capacity=65536)
                )
                seconds, sweep = _sweep_once(fast_steps, recorder)
                (noop_times if arm == "noop" else recorded_times).append(seconds)
                sizes[arm] = len(sweep.cells) * len(sweep.strategies)
            # Both arms do identical deterministic work.
            assert sizes["noop"] == sizes["recorded"]
            simulations = sizes["noop"]
    finally:
        if gc_was_enabled:
            gc.enable()

    noop_ms = min(noop_times) * 1000.0
    recorded_ms = min(recorded_times) * 1000.0
    overhead_ratio = recorded_ms / noop_ms

    assert overhead_ratio <= ASSERTED_MAX_OVERHEAD, (
        f"recorded sweep is {overhead_ratio:.3f}x the no-op run "
        f"(bound {ASSERTED_MAX_OVERHEAD}x): {recorded_ms:.2f} ms vs "
        f"{noop_ms:.2f} ms"
    )

    payload = {
        "grid": {
            "batch_sizes": list(BATCH_SIZES),
            "gpu_counts": list(GPU_COUNTS),
            "strategies": list(STRATEGIES),
        },
        "repeats": REPEATS,
        "simulations": simulations,
        "noop_ms": noop_ms,
        "recorded_ms": recorded_ms,
        "overhead_ratio": overhead_ratio,
    }
    emit_json("obs_overhead", payload)

    rows = [
        ["no-op recorder", f"{noop_ms:.3f}"],
        ["span recorder installed", f"{recorded_ms:.3f}"],
    ]
    emit(
        "Telemetry overhead on Session.sweep (min of "
        f"{REPEATS} interleaved runs)",
        format_table(["arm", "sweep ms"], rows)
        + f"\noverhead ratio = {overhead_ratio:.4f} "
        f"(asserted <= {ASSERTED_MAX_OVERHEAD})",
    )
