"""Pregen artifact throughput and read-path comparison at scale.

Two measurements back ROADMAP item 2 (pregenerated planning tables +
read-optimized index):

* **Generation / resume** — ``run_pregen`` over the smoke grid into a
  fresh store (rows/sec through the real simulate-and-append path), then
  an immediate re-run that must simulate **zero** cells (the resume
  no-op, priced in milliseconds).
* **Read path at >=100k rows** — a store bulk-filled to 100k records,
  read cold through both registered readers: ``scan`` (first-touch JSONL
  shard parse per key) and ``sqlite`` (point query against the index).
  Every sampled key is read on a *fresh* store handle so each
  measurement is a true cold lookup — the boot-against-artifact case the
  index exists for.  The acceptance bar is asserted in-test: **sqlite
  p99 < scan p99**.

Deterministic counts (``grid_size``, per-phase ``simulations``,
``rows`` / ``indexed_rows``) are gated by the ±20% perf-regression CI
job against ``benchmarks/baselines/``; wall-clock numbers (rows/sec,
latency percentiles) are recorded for the report and asserted only
relatively, as everywhere else in the harness.
"""

from __future__ import annotations

import tempfile
import time

from benchmarks.conftest import emit, emit_json
from repro.core.reporting import format_table
from repro.store import ExperimentStore, run_pregen
from repro.store.index import build_index
from repro.store.keys import SCHEMA_VERSION, canonical_json, content_key
from tools.load_serve import percentile

#: Rows the read-path comparison runs at (the ISSUE floor is 100k).
READ_ROWS = 100_000

#: Cold lookups sampled per reader, spread evenly across the key space.
READ_SAMPLES = 300


def _bulk_fill(root: str, rows: int) -> list:
    """Append ``rows`` synthetic records straight into a store's shards.

    Grouping by prefix and writing each shard file once keeps the fill to
    ~a second; going through ``ExperimentStore.put`` would pay a flock +
    open per row, which is the write path's business, not this read
    benchmark's.  Returns every content key in insertion order.
    """
    store = ExperimentStore(root)
    ts = time.time()
    keys = []
    by_prefix: dict = {}
    for i in range(rows):
        payload = {"i": i}
        key = content_key("bench", payload)
        keys.append(key)
        record = {
            "key": key,
            "kind": "bench",
            "schema": SCHEMA_VERSION,
            "ts": ts,
            "value": payload,
        }
        by_prefix.setdefault(key[:2], []).append(record)
    for prefix, records in by_prefix.items():
        with open(store.shards_dir / f"{prefix}.jsonl", "a") as handle:
            handle.write("".join(canonical_json(r) + "\n" for r in records))
    return keys


def _cold_read_latencies(root: str, reader: str, sample: list) -> list:
    """Per-key cold-get latency via a fresh handle per lookup."""
    latencies = []
    for i in sample:
        store = ExperimentStore(root, reader=reader)
        start = time.perf_counter()
        value = store.get("bench", {"i": i})
        latencies.append(time.perf_counter() - start)
        assert value == {"i": i}, (reader, i, value)
    return latencies


def _latency_stats(latencies: list) -> dict:
    return {
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
    }


def test_pregen_generation_and_resume():
    with tempfile.TemporaryDirectory(prefix="repro-bench-pregen-") as root:
        store = ExperimentStore(root)
        cold = run_pregen(store, grid="smoke")
        resume = run_pregen(store, grid="smoke")

    assert cold.complete and resume.complete
    assert cold.simulated == cold.total_cells
    assert resume.simulated == 0, resume.to_dict()

    generation = {
        "grid_size": cold.total_cells,
        "simulations": cold.simulated,
        "rows_per_s": cold.total_cells / cold.duration_s,
        "duration_s": cold.duration_s,
    }
    resume_noop = {
        "simulations": resume.simulated,
        "duration_s": resume.duration_s,
    }
    payload = {"generation": generation, "resume": resume_noop}
    emit(
        "pregen: smoke-grid generation vs resume no-op",
        format_table(
            ["phase", "cells simulated", "seconds"],
            [
                ["cold generation", str(cold.simulated), f"{cold.duration_s:.3f}"],
                ["resume (no-op)", str(resume.simulated), f"{resume.duration_s:.3f}"],
            ],
        ),
    )
    emit_json("pregen_throughput", payload)


def test_index_vs_scan_read_latency():
    with tempfile.TemporaryDirectory(prefix="repro-bench-index-") as root:
        _bulk_fill(root, READ_ROWS)
        indexed_rows = build_index(ExperimentStore(root))
        assert indexed_rows == READ_ROWS

        step = READ_ROWS // READ_SAMPLES
        sample = list(range(0, READ_ROWS, step))[:READ_SAMPLES]
        scan = _latency_stats(_cold_read_latencies(root, "scan", sample))
        sqlite = _latency_stats(_cold_read_latencies(root, "sqlite", sample))

    # The acceptance bar: at >=100k rows the index must beat shard scans
    # on tail latency (it replaces an O(shard) parse with a point query).
    assert sqlite["p99_ms"] < scan["p99_ms"], (sqlite, scan)

    payload = {
        "rows": READ_ROWS,
        "indexed_rows": indexed_rows,
        "samples": READ_SAMPLES,
        "scan": scan,
        "sqlite": sqlite,
        "speedup_p99": scan["p99_ms"] / sqlite["p99_ms"],
    }
    emit(
        f"store reads at {READ_ROWS} rows: sqlite index vs JSONL scan (cold)",
        format_table(
            ["reader", "p50 ms", "p99 ms"],
            [
                ["scan", f"{scan['p50_ms']:.3f}", f"{scan['p99_ms']:.3f}"],
                ["sqlite", f"{sqlite['p50_ms']:.3f}", f"{sqlite['p99_ms']:.3f}"],
            ],
        ),
    )
    emit_json("pregen_read_paths", payload)
