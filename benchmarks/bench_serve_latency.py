"""Serve hot-path latency: store-backed warm requests vs cold simulations.

Measures in-process dispatch latency of ``POST /v1/plan`` through the
:class:`~repro.serve.client.LocalClient` (no sockets, so the numbers are
the service's own work, not TCP noise): a **cold** pass over a grid of
distinct cells (every request plans, simulates and writes through the
store) and **warm** passes over the same grid (every request must answer
from the store with zero simulations).

The deterministic work accounting (``simulations`` per phase,
``cold_hit_rate`` / ``warm_hit_rate``, ``grid_size``) is gated by the
±20% perf-regression CI job against ``benchmarks/baselines/``; the
latency percentiles are recorded for the report and asserted only
relatively — warm p99 must stay below cold p50, the acceptance bar for
the zero-simulation hot path.  ``tools/load_serve.py`` is the
over-the-wire twin of this benchmark.
"""

from __future__ import annotations

import tempfile
import time

from benchmarks.conftest import emit, emit_json
from repro.core.reporting import format_table
from tools.load_serve import build_grid, percentile

GRID_SIZE = 12
WARM_PASSES = 3


def _measure(client, bodies):
    latencies = []
    simulations = 0
    warm_hits = 0
    for body in bodies:
        start = time.perf_counter()
        response = client.post("/v1/plan", json=body)
        latencies.append(time.perf_counter() - start)
        assert response.status_code == 200, response.json()
        request_meta = response.json()["meta"]["request"]
        simulations += request_meta["simulations"]
        warm_hits += 1 if request_meta["warm"] else 0
    return latencies, simulations, warm_hits


def _stats(latencies, simulations):
    return {
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p95_ms": percentile(latencies, 0.95) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
        "simulations": simulations,
    }


def test_serve_latency(fast_steps):
    from repro.serve.client import LocalClient
    from repro.serve.service import PlannerService

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        service = PlannerService(store=root)
        client = LocalClient(service)
        grid = build_grid(GRID_SIZE, fast_steps)

        cold_latencies, cold_simulations, cold_warm = _measure(client, grid)
        warm_bodies = [body for _ in range(WARM_PASSES) for body in grid]
        warm_latencies, warm_simulations, warm_warm = _measure(client, warm_bodies)

    cold = _stats(cold_latencies, cold_simulations)
    warm = _stats(warm_latencies, warm_simulations)

    # The zero-simulation guarantee, in both work and latency terms.
    assert cold_simulations == GRID_SIZE
    assert warm_simulations == 0
    assert warm_warm == len(warm_bodies)
    assert warm["p99_ms"] < cold["p50_ms"], (warm, cold)

    payload = {
        "grid_size": GRID_SIZE,
        "warm_passes": WARM_PASSES,
        "cold_hit_rate": cold_warm / GRID_SIZE,
        "warm_hit_rate": warm_warm / len(warm_bodies),
        "cold": cold,
        "warm": warm,
        "warm_p99_over_cold_p50": warm["p99_ms"] / cold["p50_ms"],
    }
    emit_json("serve_latency", payload)

    rows = [
        [
            phase,
            f"{stats['p50_ms']:.3f}",
            f"{stats['p95_ms']:.3f}",
            f"{stats['p99_ms']:.3f}",
            str(stats["simulations"]),
        ]
        for phase, stats in (("cold", cold), ("warm", warm))
    ]
    emit(
        "Serve latency: store-backed warm requests vs cold simulations",
        format_table(["phase", "p50 ms", "p95 ms", "p99 ms", "simulations"], rows)
        + f"\nwarm p99 / cold p50 = {payload['warm_p99_over_cold_p50']:.4f}",
    )
