"""Table II — parallel blockwise distillation training results.

For each of the four (task, dataset) cells the table reports the teacher and
student model sizes and the per-epoch elapsed time under DP, LS and Pipe-BD.
Accuracy parity is covered separately by ``bench_accuracy_parity.py`` (the
scheduling change provably cannot alter the training mathematics).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.config import ExperimentConfig
from repro.core.reporting import TABLE2_HEADERS, format_table, table2_row

CELLS = (
    ("nas", "cifar10"),
    ("nas", "imagenet"),
    ("compression", "cifar10"),
    ("compression", "imagenet"),
)

#: Paper Table II per-epoch times (seconds), for shape comparison only.
PAPER_EPOCH_SECONDS = {
    ("nas", "cifar10"): {"DP": 31.52, "LS": 16.33, "TR+DPU+AHD": 10.23},
    ("nas", "imagenet"): {"DP": 3741, "LS": 7526, "TR+DPU+AHD": 855},
    ("compression", "cifar10"): {"DP": 798, "LS": 397, "TR+DPU+AHD": 109},
    ("compression", "imagenet"): {"DP": 13763, "LS": 34009, "TR+DPU+AHD": 3639},
}


def _measure_cell(session, task: str, dataset: str, fast_steps: int):
    config = ExperimentConfig(task=task, dataset=dataset, simulated_steps=fast_steps)
    suite = session.ablation(config, strategies=("DP", "LS", "TR+DPU+AHD"))
    return session.pair(config), suite


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("task,dataset", CELLS, ids=[f"{t}-{d}" for t, d in CELLS])
def test_table2_end_to_end(benchmark, session, task, dataset, fast_steps):
    pair, suite = benchmark(_measure_cell, session, task, dataset, fast_steps)
    epoch_times = suite.epoch_times()
    emit_json(f"table2_{task}_{dataset}", suite.to_dict())

    row = table2_row(task, dataset, pair, epoch_times)
    paper = PAPER_EPOCH_SECONDS[(task, dataset)]
    comparison = format_table(
        ["column", "measured (simulated)", "paper"],
        [
            ["DP epoch", f"{epoch_times['DP']:.1f}s", f"{paper['DP']}s"],
            ["LS epoch", f"{epoch_times['LS']:.1f}s", f"{paper['LS']}s"],
            ["Pipe-BD epoch", f"{epoch_times['TR+DPU+AHD']:.1f}s", f"{paper['TR+DPU+AHD']}s"],
            [
                "Pipe-BD speedup vs DP",
                f"{epoch_times['DP'] / epoch_times['TR+DPU+AHD']:.2f}x",
                f"{paper['DP'] / paper['TR+DPU+AHD']:.2f}x",
            ],
        ],
    )
    emit(f"Table II — {task} / {dataset}", format_table(TABLE2_HEADERS, [row]) + "\n\n" + comparison)

    # Shape: Pipe-BD is the fastest column in every row, as in the paper.
    assert epoch_times["TR+DPU+AHD"] < epoch_times["DP"]
    assert epoch_times["TR+DPU+AHD"] < epoch_times["LS"]
