"""Autotuner convergence: how fast each driver finds the grid optimum.

For a fixed tuning grid and a ladder of simulation budgets, every registered
search driver is scored on (a) the best epoch time it found, (b) how many
discrete-event simulations it spent and (c) how many *distinct cells* it
simulated.  Exhaustive search is the ground truth; successive halving should
match its optimum at a fraction of the simulations, and seeded random search
falls in between.  See ``docs/TUNING.md`` for the driver guide.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.core.reporting import format_table
from repro.core.session import Session
from repro.tune.drivers import DRIVERS
from repro.tune.space import TuneSpace
from repro.tune.tuner import tune

BUDGETS = (8, 16, 32)


def bench_space() -> TuneSpace:
    return TuneSpace(
        strategies=("DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD"),
        batch_sizes=(128, 256, 512),
        gpu_counts=(2, 4),
        servers=("a6000",),
    )


def test_tune_convergence(fast_steps):
    space = bench_space()
    truth = tune(
        space,
        objective="epoch_time",
        driver="exhaustive",
        budget=len(space),
        simulated_steps=fast_steps,
        session=Session(),
    )
    optimum = truth.best.epoch_time

    rows = []
    payload = {"grid_size": len(space), "optimum_epoch_time_s": optimum, "runs": []}
    for driver in DRIVERS.names():
        for budget in BUDGETS:
            result = tune(
                space,
                objective="epoch_time",
                driver=driver,
                budget=budget,
                seed=0,
                simulated_steps=fast_steps,
                session=Session(),
            )
            gap = result.best.epoch_time / optimum - 1.0
            rows.append(
                [
                    driver,
                    str(budget),
                    str(result.evaluator_stats["simulations"]),
                    f"{result.best.epoch_time:.2f}s",
                    f"{gap * 100:.1f}%",
                    str(len(result.frontier)),
                ]
            )
            payload["runs"].append(
                {
                    "driver": driver,
                    "budget": budget,
                    "simulations": result.evaluator_stats["simulations"],
                    "best_epoch_time_s": result.best.epoch_time,
                    "optimality_gap": gap,
                    "trajectory": list(result.trajectory),
                }
            )
            assert result.best.epoch_time >= optimum * (1.0 - 1e-9)

    emit(
        f"Tune convergence vs exhaustive optimum ({optimum:.2f}s on {len(space)} cells)",
        format_table(
            ["driver", "budget", "sims", "best epoch", "gap", "frontier"], rows
        ),
    )
    emit_json("bench_tune_convergence", payload)

    # Halving at the largest budget must match the exhaustive optimum.
    halving = [
        run
        for run in payload["runs"]
        if run["driver"] == "successive-halving" and run["budget"] == BUDGETS[-1]
    ][0]
    assert abs(halving["best_epoch_time_s"] - optimum) < 1e-9
    assert halving["simulations"] < len(space)
