"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series (run with ``pytest benchmarks/ --benchmark-only -s``
to see them).  Absolute numbers are simulated seconds, not the authors'
wall-clock measurements; the shapes (who wins, by roughly what factor, where
the crossovers fall) are the reproduction target.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled report block."""
    line = "=" * max(20, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}\n{body}\n")


@pytest.fixture(scope="session")
def fast_steps() -> int:
    """Simulated steps per measurement; small keeps benchmarks quick."""
    return 6
