"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  The files are named ``bench_*.py`` so the default
collection glob skips them; name them explicitly::

    PYTHONPATH=src python -m pytest benchmarks/bench_*.py -q -s  Absolute numbers are simulated seconds, not the authors'
wall-clock measurements; the shapes (who wins, by roughly what factor, where
the crossovers fall) are the reproduction target.

Set ``REPRO_BENCH_JSON_DIR=<dir>`` to additionally dump each benchmark's raw
results (``ExecutionResult.to_dict()`` / ``SweepResult.to_dict()`` payloads)
as JSON files for downstream tooling.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.session import Session


def emit(title: str, body: str) -> None:
    """Print a labelled report block."""
    line = "=" * max(20, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}\n{body}\n")


def emit_json(name: str, payload: dict) -> None:
    """Write a JSON artifact when REPRO_BENCH_JSON_DIR is set (no-op otherwise)."""
    out_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if not out_dir:
        return
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{name}.json"
    target.write_text(json.dumps(payload, indent=2))
    print(f"[json] wrote {target}")


@pytest.fixture(scope="session")
def fast_steps() -> int:
    """Simulated steps per measurement; small keeps benchmarks quick."""
    return 6


@pytest.fixture(scope="session")
def session() -> Session:
    """One shared session so profiles/pairs are built once per cell."""
    return Session()
