"""Autotuner walkthrough: find the best Pipe-BD configuration automatically.

Instead of hand-enumerating sweep grids, describe the search space and let
``Session.tune`` find the best (strategy, batch, GPU count, server) cell for
an objective — here minimum epoch time, then minimum cost under a deadline.
Run with ``PYTHONPATH=src python examples/autotune_quickstart.py``.
Full guide: ``docs/TUNING.md``.
"""

from repro import Session, TuneSpace
from repro.analysis.pareto import (
    format_frontier_table,
    format_tune_summary,
    frontier_series,
)
from repro.tune.objective import MinCostUnderDeadline


def main() -> None:
    session = Session()

    # 1. Describe the search space: every strategy, three batch sizes, both
    #    GPU counts, both server presets -> 72 candidates.
    space = TuneSpace(
        batch_sizes=(128, 256, 512),
        gpu_counts=(2, 4),
        servers=("a6000", "2080ti"),
    )
    print(f"search space: {len(space)} candidates")

    # 2. Tune for minimum epoch time with a 32-simulation budget.  The
    #    successive-halving driver ranks everything with free analytic
    #    estimates and only simulates the survivors.
    result = session.tune(space, objective="epoch_time", budget=32)
    print()
    print(format_tune_summary(result))
    print()
    print(format_frontier_table(result))

    # 3. The frontier answers "how much hardware buys how much speed":
    print()
    for gpus, epoch_time in sorted(frontier_series(result).items()):
        print(f"  best with {int(gpus)} GPUs: {epoch_time:.2f}s/epoch")

    # 4. Same space, different question: the cheapest configuration that
    #    still finishes an epoch within 12 simulated seconds.
    budget_result = session.tune(
        space,
        objective=MinCostUnderDeadline(deadline=12.0),
        budget=32,
    )
    best = budget_result.best
    print()
    print(
        f"cheapest under 12s deadline: {best.point.label()} "
        f"(${best.cost:.4f}/epoch, {best.epoch_time:.2f}s/epoch)"
    )

    # 5. Everything above reused one Session: the second tune hit the
    #    caches the first one filled.
    stats = session.stats
    print()
    print(
        f"session: {stats.runs} simulations, profile cache hit rate "
        f"{stats.hit_rate('profile') * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
