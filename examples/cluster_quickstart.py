#!/usr/bin/env python3
"""Cluster quickstart: serve a multi-job workload on a simulated fleet.

Generates a seeded 60-job Poisson workload (mixed tasks, batch sizes, gang
sizes and strategies), gang-schedules it onto a heterogeneous 4-node fleet
under all three placement policies, and prints the fleet-level comparison —
plus the cache amortisation that makes it cheap: hundreds of placements
collapse onto a handful of profiled experiment cells.

Usage::

    python examples/cluster_quickstart.py
"""

from __future__ import annotations

from repro.analysis.cluster_report import compare_policies, format_cluster_report
from repro.cluster import default_cluster, poisson_workload, run_policy_comparison
from repro.core.session import Session


def main() -> None:
    cluster = default_cluster()  # 2x a6000 nodes + 2x 2080ti nodes, 4 GPUs each
    workload = poisson_workload(num_jobs=60, rate=0.5, seed=0)

    print(cluster.describe())
    print(workload.describe())
    print()

    session = Session()
    reports = run_policy_comparison(cluster, workload, session=session)

    print(compare_policies(reports))
    print()
    print(format_cluster_report(reports["best-fit"]))
    print()

    stats = session.stats
    print(
        f"Cache amortisation: {len(workload)} jobs x {len(reports)} policies "
        f"needed only {stats.profile_builds} profile builds "
        f"({stats.profile_hits} hits) and {stats.executor_builds} executors."
    )

    first = reports["best-fit"].records[0]
    print(
        f"First placement: {first.job_id} -> {first.node} "
        f"({first.gpus} GPUs, waited {first.wait_time:.1f}s, "
        f"ran {first.service_time:.1f}s as {first.cell})"
    )


if __name__ == "__main__":
    main()
