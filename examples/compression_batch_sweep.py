#!/usr/bin/env python3
"""Model-compression workload: batch-size sweep and memory report.

Reproduces the compression side of the paper's evaluation (VGG-16 teacher
distilled into depthwise-separable replacement blocks): speedups over the DP
baseline across batch sizes (the Fig. 6 methodology applied to compression)
and the per-rank memory footprint of each strategy (Fig. 7 methodology).

Usage::

    python examples/compression_batch_sweep.py [cifar10|imagenet]
"""

from __future__ import annotations

import sys

from repro.analysis.memory_report import average_memory_overhead
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table, memory_table
from repro.core.runner import run_ablation

STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")
BATCH_SIZES = (128, 256, 384, 512)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cifar10"

    print(f"=== Batch-size sweep (compression, {dataset}, 4x A6000) ===")
    sweep = {}
    for batch_size in BATCH_SIZES:
        config = ExperimentConfig(task="compression", dataset=dataset, batch_size=batch_size)
        sweep[batch_size] = run_ablation(config, strategies=STRATEGIES).speedups("DP")
    rows = [
        [strategy] + [f"{sweep[batch][strategy]:.2f}x" for batch in BATCH_SIZES]
        for strategy in STRATEGIES
    ]
    print(format_table(["strategy"] + [f"batch {b}" for b in BATCH_SIZES], rows))
    print()

    print(f"=== Per-rank peak memory at batch 256 (compression, {dataset}) ===")
    suite = run_ablation(
        ExperimentConfig(task="compression", dataset=dataset, batch_size=256),
        strategies=STRATEGIES,
    )
    print(memory_table(suite.results))
    overhead = average_memory_overhead(suite.results["TR+DPU+AHD"], suite.results["DP"])
    print(f"\nPipe-BD average per-rank memory overhead over DP: {overhead * 100:.1f}%")


if __name__ == "__main__":
    main()
