#!/usr/bin/env python3
"""Model-compression workload: batch-size sweep and memory report.

Reproduces the compression side of the paper's evaluation (VGG-16 teacher
distilled into depthwise-separable replacement blocks): speedups over the DP
baseline across batch sizes (the Fig. 6 methodology applied to compression)
and the per-rank memory footprint of each strategy (Fig. 7 methodology).

The sweep runs through the :class:`~repro.core.session.Session` facade, so
the model pair is built once and each batch size is profiled exactly once,
shared by every strategy; independent cells execute in parallel.

Usage::

    python examples/compression_batch_sweep.py [cifar10|imagenet]
"""

from __future__ import annotations

import sys

from repro.analysis.memory_report import average_memory_overhead
from repro.analysis.sweep import format_best_cells, format_sweep_table
from repro.core.config import ExperimentConfig
from repro.core.reporting import memory_table
from repro.core.session import Session

STRATEGIES = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")
BATCH_SIZES = (128, 256, 384, 512)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cifar10"
    session = Session()
    base = ExperimentConfig(task="compression", dataset=dataset)

    print(f"=== Batch-size sweep (compression, {dataset}, 4x A6000) ===")
    sweep = session.sweep(
        base, batch_sizes=BATCH_SIZES, strategies=STRATEGIES, parallel=True
    )
    print(format_sweep_table(sweep))
    print()
    print(format_best_cells(sweep))
    print()
    print(
        f"(session stats: {session.stats.profile_builds} profiles built, "
        f"{session.stats.profile_hits} cache hits, {session.stats.runs} runs)"
    )
    print()

    print(f"=== Per-rank peak memory at batch 256 (compression, {dataset}) ===")
    suite = sweep.cell(batch_size=256)
    print(memory_table(suite.results))
    overhead = average_memory_overhead(suite.results["TR+DPU+AHD"], suite.results["DP"])
    print(f"\nPipe-BD average per-rank memory overhead over DP: {overhead * 100:.1f}%")


if __name__ == "__main__":
    main()
