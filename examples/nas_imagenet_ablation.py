#!/usr/bin/env python3
"""NAS-on-ImageNet ablation: every scheduling strategy on both servers.

Reproduces the setting behind Figs. 4(a) and 5 of the paper: block-wisely
supervised NAS (MobileNetV2 teacher, ProxylessNAS supernet student) on
ImageNet, comparing DP, LS, TR, TR+DPU, TR+IR and full Pipe-BD on the default
4x RTX A6000 server and the alternative 4x RTX 2080Ti server, and showing how
automatic hybrid distribution picks different schedules for the two machines.

Usage::

    python examples/nas_imagenet_ablation.py
"""

from __future__ import annotations

from repro.analysis.schedule_viz import schedule_summary
from repro.core.ablation import ALL_STRATEGIES
from repro.core.config import ExperimentConfig
from repro.core.reporting import format_table, speedup_table
from repro.core.runner import run_ablation


def main() -> None:
    plans = {}
    for server in ("a6000", "2080ti"):
        config = ExperimentConfig(task="nas", dataset="imagenet", server=server)
        suite = run_ablation(config, strategies=ALL_STRATEGIES)
        print(speedup_table(suite))
        print()
        plans[server] = suite.results["TR+DPU+AHD"].plan

        rows = [
            [strategy, f"{result.epoch_time:.1f}s", f"{result.max_memory_gb():.2f} GB"]
            for strategy, result in suite.results.items()
        ]
        print(format_table(["strategy", "epoch (simulated)", "max rank memory"], rows))
        print()

    print("Automatically chosen Pipe-BD schedules (paper Fig. 5b/5c):")
    for server, plan in plans.items():
        print(f"\n--- {server} ---")
        print(schedule_summary(plan))


if __name__ == "__main__":
    main()
