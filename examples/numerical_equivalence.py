#!/usr/bin/env python3
"""Numerical demonstration that Pipe-BD does not change the training maths.

Builds small teacher/student block pairs (a VGG-style compression pair and a
NAS mixed-op pair) on the numpy autograd engine and trains them twice with the
same data order: once block-by-block as the DP baseline schedules the work,
and once with Pipe-BD's decoupled per-step ordering.  The resulting student
parameters are bit-identical — the executable form of the paper's §VII-D
claim that only the schedule, not the formulation, changes.

Usage::

    python examples/numerical_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro.distill.datasets import SyntheticImageDataset
from repro.distill.supernet import derive_architecture
from repro.distill.trainer import (
    BlockwiseDistiller,
    build_compression_block_pairs,
    build_nas_block_pairs,
)


def run_workload(name: str, build_pairs) -> None:
    dataset = SyntheticImageDataset(num_samples=96, sample_shape=(3, 8, 8), seed=23)
    baseline = BlockwiseDistiller(build_pairs(seed=42), lr=0.05)
    pipe_bd = BlockwiseDistiller(build_pairs(seed=42), lr=0.05)

    history_baseline = baseline.train_sequential(dataset, batch_size=8, steps_per_block=10)
    history_pipe_bd = pipe_bd.train_decoupled(dataset, batch_size=8, steps_per_block=10)

    state_baseline = baseline.student_state()
    state_pipe_bd = pipe_bd.student_state()
    max_diff = max(
        float(np.abs(state_baseline[key] - state_pipe_bd[key]).max()) for key in state_baseline
    )

    print(f"=== {name} ===")
    for block_index in history_baseline.block_indices():
        loss_baseline = history_baseline.final_loss(block_index)
        loss_pipe_bd = history_pipe_bd.final_loss(block_index)
        first = history_pipe_bd.losses[block_index][0]
        print(
            f"  block {block_index}: first loss {first:.4f} -> final loss "
            f"baseline {loss_baseline:.6f} | pipe-bd {loss_pipe_bd:.6f}"
        )
    print(f"  max |parameter difference| between orderings: {max_diff:.3e}")
    assert max_diff == 0.0, "decoupled updates must not change the result"
    print("  -> bit-identical student parameters under both schedules\n")


def main() -> None:
    run_workload("Compression blocks (conv -> depthwise-separable)", build_compression_block_pairs)

    dataset_label = "NAS blocks (mixed-op supernet students)"
    run_workload(dataset_label, build_nas_block_pairs)

    # Show the searched architecture derived from the trained supernet.
    distiller = BlockwiseDistiller(build_nas_block_pairs(seed=42), lr=0.05)
    distiller.train_decoupled(
        SyntheticImageDataset(num_samples=96, sample_shape=(3, 8, 8), seed=23),
        batch_size=8,
        steps_per_block=10,
    )
    selections = [
        derive_architecture(pair.student) for pair in distiller.pairs
    ]
    print("Selected candidate per searchable block (argmax of architecture params):", selections)


if __name__ == "__main__":
    main()
