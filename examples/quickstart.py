#!/usr/bin/env python3
"""Quickstart: schedule and simulate Pipe-BD on the paper's default setup.

Runs the full Pipe-BD pipeline — profile the blocks, search the automatic
hybrid distribution, execute one epoch on the simulated 4x RTX A6000 server —
for the NAS workload on CIFAR-10, and compares it against the data-parallel
baseline.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.schedule_viz import render_gantt, schedule_summary
from repro.core.config import ExperimentConfig
from repro.core.pipebd import PipeBD
from repro.core.runner import run_experiment


def main() -> None:
    config = ExperimentConfig(task="nas", dataset="cifar10", batch_size=256)
    pair = config.build_pair()
    server = config.build_server()
    dataset = config.build_dataset()

    print("Workload :", pair.describe())
    print("Server   :", server.describe())
    print("Dataset  :", dataset.describe())
    print()

    # --- Pipe-BD: automatic scheduling (Algorithm 1) + simulated epoch --- #
    framework = PipeBD(pair=pair, server=server, dataset=dataset, batch_size=config.batch_size)
    framework.initialize()
    print("Pipe-BD schedule decided by automatic hybrid distribution:")
    print(schedule_summary(framework.plan))
    print()

    pipe_bd_result = framework.simulate_epoch()
    baseline_result = run_experiment(config.with_strategy("DP"))

    print(f"DP baseline epoch time : {baseline_result.epoch_time:8.2f} s (simulated)")
    print(f"Pipe-BD epoch time     : {pipe_bd_result.epoch_time:8.2f} s (simulated)")
    print(f"Speedup                : {baseline_result.epoch_time / pipe_bd_result.epoch_time:8.2f} x")
    print()

    print("Steady-state schedule of the first few steps (one row per GPU):")
    trace = pipe_bd_result.trace
    window_start = trace.makespan * 0.3
    window_end = min(trace.makespan, window_start + 3 * pipe_bd_result.step_time)
    print(render_gantt(trace, num_devices=server.num_devices, width=90,
                       start=window_start, end=window_end))


if __name__ == "__main__":
    main()
