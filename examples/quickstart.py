#!/usr/bin/env python3
"""Quickstart: schedule and simulate Pipe-BD on the paper's default setup.

Runs the full Pipe-BD pipeline — profile the blocks, search the automatic
hybrid distribution, execute one epoch on the simulated 4x RTX A6000 server —
for the NAS workload on CIFAR-10, and compares it against the data-parallel
baseline through the :class:`~repro.core.session.Session` facade (which
profiles the cell once and shares the table across strategies).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.schedule_viz import render_gantt, schedule_summary
from repro.core.config import ExperimentConfig
from repro.core.session import Session


def main() -> None:
    session = Session()
    config = ExperimentConfig(task="nas", dataset="cifar10", batch_size=256)

    print("Workload :", session.pair(config).describe())
    print("Server   :", session.server(config).describe())
    print("Dataset  :", session.dataset(config).describe())
    print()

    # --- Pipe-BD (automatic scheduling, Algorithm 1) vs the DP baseline --- #
    suite = session.ablation(config, strategies=("DP", "TR+DPU+AHD"))
    pipe_bd_result = suite.results["TR+DPU+AHD"]
    baseline_result = suite.results["DP"]

    print("Pipe-BD schedule decided by automatic hybrid distribution:")
    print(schedule_summary(pipe_bd_result.plan))
    print()

    print(f"DP baseline epoch time : {baseline_result.epoch_time:8.2f} s (simulated)")
    print(f"Pipe-BD epoch time     : {pipe_bd_result.epoch_time:8.2f} s (simulated)")
    print(f"Speedup                : {suite.speedups('DP')['TR+DPU+AHD']:8.2f} x")
    print()

    print("Steady-state schedule of the first few steps (one row per GPU):")
    trace = pipe_bd_result.trace
    window_start = trace.makespan * 0.3
    window_end = min(trace.makespan, window_start + 3 * pipe_bd_result.step_time)
    print(render_gantt(trace, num_devices=session.server(config).num_devices, width=90,
                       start=window_start, end=window_end))


if __name__ == "__main__":
    main()
