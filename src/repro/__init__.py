"""Pipe-BD: Pipelined Parallel Blockwise Distillation — reproduction library.

This package reproduces the system described in "Pipe-BD: Pipelined Parallel
Blockwise Distillation" (DATE 2023).  It contains:

* ``repro.models`` — layer-accurate architecture descriptions of the teacher
  and student networks the paper evaluates (MobileNetV2, ProxylessNAS
  supernet, VGG-16, depthwise-separable students).
* ``repro.hardware`` — analytical models of the paper's multi-GPU servers
  (RTX A6000 / RTX 2080Ti nodes, PCIe interconnects, shared host loaders).
* ``repro.sim`` — a discrete-event simulator used to execute training
  schedules on the modelled hardware.
* ``repro.parallel`` — every scheduling strategy in the paper: the
  data-parallel (DP) and layerwise-scheduling (LS) baselines, teacher
  relaying (TR), decoupled parameter update (DPU), automatic hybrid
  distribution (AHD) and internal relaying (IR).
* ``repro.distill`` — a small numpy autograd engine plus blockwise
  distillation trainers used to demonstrate that Pipe-BD's reordering does
  not change the mathematical formulation.
* ``repro.core`` — the Pipe-BD framework (Algorithm 1), experiment runner
  and report formatting.
* ``repro.cluster`` — the fleet layer above single-server Pipe-BD:
  multi-job workload generation, pluggable gang-scheduling policies and an
  event-driven cluster simulator.
* ``repro.tune`` — the autotuner: search-space DSL, pluggable objectives
  and search drivers, incremental evaluation and Pareto-frontier results.
* ``repro.store`` — the persistence layer: a content-addressed on-disk
  experiment store that makes sweeps, tuning runs and fleet replays
  resumable across processes, plus the ``inline``/``thread``/``process``
  execution-backend registry.
* ``repro.analysis`` — breakdowns, speedups, memory reports, schedule
  visualisation, fleet-level cluster reports, Pareto analytics and
  store warm/cold hit-rate reports.
* ``repro.serve`` — planner-as-a-service: the versioned HTTP JSON API
  (``/v1/plan``, ``/v1/sweep``, ``/v1/tune``, ``/v1/cluster``,
  ``/v1/precompute``) over one store-backed session, with FastAPI and
  dependency-free stdlib frontends.  Imported lazily — ``import repro``
  stays light.

See ``docs/ARCHITECTURE.md`` for the layer map, ``docs/API.md`` for the
public API reference and ``docs/TUNING.md`` for the autotuning guide.
"""

from repro.version import __version__
from repro.core.config import ExperimentConfig
from repro.core.pipebd import PipeBD
from repro.core.session import Session, SweepResult, get_default_session
from repro.core.runner import run_experiment, run_ablation
from repro.parallel.registry import REGISTRY, register_strategy
from repro.cluster import (
    ClusterSimulator,
    ClusterSpec,
    NodeSpec,
    POLICIES,
    Workload,
    default_cluster,
    poisson_workload,
    register_policy,
    run_policy_comparison,
)
from repro.store import (
    BACKENDS,
    ExperimentStore,
    open_store,
    register_backend,
)
from repro.tune import (
    DRIVERS,
    OBJECTIVES,
    TuneResult,
    TuneSpace,
    register_driver,
    register_objective,
    tune,
)

__all__ = [
    "__version__",
    "ExperimentConfig",
    "PipeBD",
    "Session",
    "SweepResult",
    "get_default_session",
    "run_experiment",
    "run_ablation",
    "REGISTRY",
    "register_strategy",
    "ClusterSimulator",
    "ClusterSpec",
    "NodeSpec",
    "POLICIES",
    "Workload",
    "default_cluster",
    "poisson_workload",
    "register_policy",
    "run_policy_comparison",
    "BACKENDS",
    "ExperimentStore",
    "open_store",
    "register_backend",
    "DRIVERS",
    "OBJECTIVES",
    "TuneResult",
    "TuneSpace",
    "register_driver",
    "register_objective",
    "tune",
]
