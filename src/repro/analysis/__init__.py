"""Post-processing: breakdowns, speedups, memory, schedules, cache analytics."""

from repro.analysis.breakdown import (
    epoch_breakdown,
    ideal_breakdown,
    breakdown_fractions,
)
from repro.analysis.speedup import speedup_over, speedup_series, geometric_mean_speedup
from repro.analysis.memory_report import per_rank_memory_gb, average_memory_overhead
from repro.analysis.schedule_viz import render_gantt, schedule_summary
from repro.analysis.sweep import (
    sweep_speedups,
    batch_sensitivity,
    gpu_sensitivity,
    sweep_crossover_batch,
    format_sweep_table,
    format_best_cells,
)
from repro.analysis.cluster_report import (
    ClusterReport,
    JobRecord,
    compare_policies,
    format_cluster_report,
    percentile,
)
from repro.analysis.store_report import (
    format_session_stats,
    format_store_overview,
    store_overview,
    warm_cold_summary,
)
from repro.analysis.pareto import (
    assert_frontier_consistent,
    dominated_fraction,
    format_frontier_table,
    format_tune_summary,
    frontier_points,
    frontier_series,
    hypervolume_2d,
    load_tune_result,
)

__all__ = [
    "epoch_breakdown",
    "ideal_breakdown",
    "breakdown_fractions",
    "speedup_over",
    "speedup_series",
    "geometric_mean_speedup",
    "per_rank_memory_gb",
    "average_memory_overhead",
    "render_gantt",
    "schedule_summary",
    "sweep_speedups",
    "batch_sensitivity",
    "gpu_sensitivity",
    "sweep_crossover_batch",
    "format_sweep_table",
    "format_best_cells",
    "ClusterReport",
    "JobRecord",
    "compare_policies",
    "format_cluster_report",
    "percentile",
    "format_session_stats",
    "format_store_overview",
    "store_overview",
    "warm_cold_summary",
    "assert_frontier_consistent",
    "dominated_fraction",
    "format_frontier_table",
    "format_tune_summary",
    "frontier_points",
    "frontier_series",
    "hypervolume_2d",
    "load_tune_result",
]
