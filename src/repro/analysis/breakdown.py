"""Epoch-time breakdowns (paper Fig. 2).

Fig. 2 compares three bars for NAS on CIFAR-10 with four GPUs:

* *Baseline* — the DP strategy's per-epoch time split into data loading,
  teacher execution, student execution and idle time.
* *Ideal* — "measuring the training time of each part separately with a
  single GPU and dividing each time by four": an imaginary perfectly
  parallel system with no redundancy.
* *Pipe-BD* — the same breakdown under the full Pipe-BD schedule.

:func:`epoch_breakdown` derives the first and third bars from execution
results; :func:`ideal_breakdown` computes the second analytically from the
cost model, mirroring the paper's methodology.
"""

from __future__ import annotations

from typing import Dict

from repro.data.dataset import DatasetSpec
from repro.data.loader import DataLoadModel
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.executor import ExecutionResult
from repro.sim.metrics import BREAKDOWN_CATEGORIES

#: Categories of the Fig. 2 bars.
FIG2_CATEGORIES = ("data_load", "teacher_exec", "student_exec", "idle")


def epoch_breakdown(result: ExecutionResult, per_device: bool = False) -> Dict[str, float]:
    """Average per-device epoch breakdown (seconds) of one execution result.

    The paper's Fig. 2 plots time per epoch of one (representative) device; we
    report the mean over devices (per_device=False) so imbalanced strategies
    are not misrepresented, or the per-device maximum when requested.
    """
    totals = {category: 0.0 for category in BREAKDOWN_CATEGORIES}
    num_devices = len(result.breakdown)
    for categories in result.breakdown.values():
        for category, value in categories.items():
            totals[category] += value
    averaged = {category: value / num_devices for category, value in totals.items()}
    merged = {
        "data_load": averaged["data_load"],
        "teacher_exec": averaged["teacher_exec"],
        "student_exec": averaged["student_exec"],
        "idle": averaged["idle"] + averaged["comm"],
    }
    if per_device:
        return merged
    return merged


def ideal_breakdown(
    pair: DistillationPair,
    server: ServerSpec,
    dataset: DatasetSpec,
    batch_size: int,
) -> Dict[str, float]:
    """The paper's 'ideal' bar: single-GPU times for each part divided by N.

    One epoch of ideal work is: load the data once, run every teacher block
    once per step at the full batch, and run every student block's training
    once per step at the full batch — all divided by the device count
    (perfect parallelisation, no redundancy, full-batch efficiency).
    """
    cost_model = server.cost_model()
    loader = DataLoadModel(dataset=dataset, host=server.host)
    steps = dataset.steps_per_epoch(batch_size)
    num_devices = server.num_devices

    teacher_step = sum(
        cost_model.block_forward_time(block, batch_size) for block in pair.teacher.blocks
    )
    rounds = pair.student_rounds_per_step
    student_step = sum(
        rounds
        * (
            cost_model.block_forward_time(block, batch_size)
            + cost_model.block_backward_time(block, batch_size)
        )
        + cost_model.weight_update_time(block)
        for block in pair.student.blocks
    )
    load_step = loader.batch_load_time(batch_size, concurrent_loaders=1)

    return {
        "data_load": steps * load_step / num_devices,
        "teacher_exec": steps * teacher_step / num_devices,
        "student_exec": steps * student_step / num_devices,
        "idle": 0.0,
    }


def breakdown_fractions(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Normalise a breakdown to fractions of its total."""
    total = sum(breakdown.values())
    if total <= 0:
        return {category: 0.0 for category in breakdown}
    return {category: value / total for category, value in breakdown.items()}


def breakdown_total(breakdown: Dict[str, float]) -> float:
    """Total epoch time represented by a breakdown."""
    return sum(breakdown.values())
