"""Fleet-level analytics over cluster simulation runs.

The cluster simulator reduces a run to :class:`JobRecord` rows (one per
completed job); everything here derives the queueing-level quantities a
fleet operator reads — makespan, queue-wait distribution, GPU utilization,
throughput — and formats per-policy comparison tables.  The module is pure
data + arithmetic: it never imports the simulator, so reports parsed back
from JSON are first-class citizens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.reporting import format_seconds, format_table
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JobRecord:
    """One completed job: where it ran, when, and what faults cost it.

    The reliability fields default to "nothing happened": ``preemptions``
    counts fault-driven interruptions, ``gpu_seconds`` the actual GPU-time
    occupied across every attempt (``None`` means the fault-free
    ``gpus * service_time``), ``wasted_gpu_seconds`` the slice destroyed by
    lost work and recovery overheads, ``recovery_seconds`` the total time
    spent between an eviction and the next start, and ``final_gpus`` the
    gang size the job *finished* on (elastic ``shrink`` makes it smaller
    than ``gpus``).
    """

    job_id: str
    node: str
    gpus: int
    strategy: str
    cell: str
    arrival_time: float
    start_time: float
    finish_time: float
    preemptions: int = 0
    gpu_seconds: Optional[float] = None
    wasted_gpu_seconds: float = 0.0
    recovery_seconds: float = 0.0
    final_gpus: Optional[int] = None
    tenant: str = "default"
    deadline: Optional[float] = None
    cost_usd: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_time < self.arrival_time:
            raise ConfigurationError(
                f"job {self.job_id!r} started before it arrived"
            )
        if self.finish_time < self.start_time:
            raise ConfigurationError(
                f"job {self.job_id!r} finished before it started"
            )
        if self.preemptions < 0:
            raise ConfigurationError(
                f"job {self.job_id!r} has a negative preemption count"
            )
        if self.wasted_gpu_seconds < 0 or self.recovery_seconds < 0:
            raise ConfigurationError(
                f"job {self.job_id!r} has negative reliability accounting"
            )

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before the gang was first placed."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Seconds from first placement to completion (recovery included)."""
        return self.finish_time - self.start_time

    @property
    def effective_gpu_seconds(self) -> float:
        """GPU-seconds actually occupied (fault-free runs derive it)."""
        if self.gpu_seconds is not None:
            return self.gpu_seconds
        return self.gpus * self.service_time

    @property
    def useful_gpu_seconds(self) -> float:
        """Occupied GPU-seconds minus the slice faults destroyed."""
        return max(0.0, self.effective_gpu_seconds - self.wasted_gpu_seconds)

    @property
    def slowdown(self) -> float:
        """Turnaround over service time (>= 1; queueing inflates it)."""
        return (self.wait_time + self.service_time) / max(self.service_time, 1e-9)

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the job beat its deadline (``None`` when it has none)."""
        if self.deadline is None:
            return None
        return self.finish_time <= self.deadline

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "node": self.node,
            "gpus": self.gpus,
            "strategy": self.strategy,
            "cell": self.cell,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "wait_time": self.wait_time,
            "service_time": self.service_time,
            "preemptions": self.preemptions,
            # Coerced to float so a fresh report and its JSON round-trip
            # render byte-identically even when a counter happens to be an
            # exact integer sum.
            "gpu_seconds": (
                float(self.gpu_seconds) if self.gpu_seconds is not None else None
            ),
            "wasted_gpu_seconds": float(self.wasted_gpu_seconds),
            "recovery_seconds": float(self.recovery_seconds),
            "final_gpus": self.final_gpus,
            "tenant": self.tenant,
            "deadline": self.deadline,
            "cost_usd": (float(self.cost_usd) if self.cost_usd is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        gpu_seconds = payload.get("gpu_seconds")
        final_gpus = payload.get("final_gpus")
        return cls(
            job_id=payload["job_id"],
            node=payload["node"],
            gpus=int(payload["gpus"]),
            strategy=payload["strategy"],
            cell=payload.get("cell", ""),
            arrival_time=float(payload["arrival_time"]),
            start_time=float(payload["start_time"]),
            finish_time=float(payload["finish_time"]),
            preemptions=int(payload.get("preemptions", 0)),
            gpu_seconds=(float(gpu_seconds) if gpu_seconds is not None else None),
            wasted_gpu_seconds=float(payload.get("wasted_gpu_seconds", 0.0)),
            recovery_seconds=float(payload.get("recovery_seconds", 0.0)),
            final_gpus=(int(final_gpus) if final_gpus is not None else None),
            tenant=payload.get("tenant", "default"),
            deadline=(
                float(payload["deadline"]) if payload.get("deadline") is not None else None
            ),
            cost_usd=(
                float(payload["cost_usd"]) if payload.get("cost_usd") is not None else None
            ),
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class ClusterReport:
    """Aggregated outcome of serving one workload under one policy.

    The reliability fields are only populated by fault-injected runs:
    ``fault_events`` is the injected trace (as dicts), ``recoveries`` one
    duration per eviction-to-restart gap (feeding the p95), ``killed`` one
    dict per job the degraded fleet could never host again, and
    ``elastic_policy`` the recovery policy that handled evictions.
    """

    policy: str
    cluster_name: str
    workload_name: str
    node_gpus: Dict[str, int] = field(default_factory=dict)
    records: Tuple[JobRecord, ...] = ()
    fault_events: Tuple[dict, ...] = ()
    fault_trace_name: Optional[str] = None
    elastic_policy: Optional[str] = None
    recoveries: Tuple[float, ...] = ()
    killed: Tuple[dict, ...] = ()
    #: Exact per-node GPU-seconds occupied, populated by fault runs where a
    #: job's attempts may span several nodes (restart/migrate); empty for
    #: fault-free runs, whose records are single-node by construction.
    node_busy_gpu_seconds: Dict[str, float] = field(default_factory=dict)
    #: Declared tenant specs (as dicts) and the price curve name, populated
    #: by multi-tenant / spot-priced runs.
    tenants: Tuple[dict, ...] = ()
    price_curve: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Scalar metrics
    # ------------------------------------------------------------------ #
    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def total_gpus(self) -> int:
        return sum(self.node_gpus.values())

    @property
    def makespan(self) -> float:
        """Seconds from t=0 until the last job finishes."""
        return max((record.finish_time for record in self.records), default=0.0)

    @property
    def mean_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.wait_time for record in self.records) / len(self.records)

    @property
    def p95_wait(self) -> float:
        if not self.records:
            return 0.0
        return percentile([record.wait_time for record in self.records], 95)

    @property
    def max_wait(self) -> float:
        return max((record.wait_time for record in self.records), default=0.0)

    @property
    def mean_service(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.service_time for record in self.records) / len(self.records)

    def _node_capacity_gpu_seconds(self) -> Dict[str, float]:
        """Per-node live-capacity integral over the makespan.

        Crash faults remove GPUs *permanently*, so a degraded fleet's
        denominator is not ``gpus * makespan``: each crash subtracts the
        removed GPUs for the remainder of the run.  Crash events replay in
        time order with per-node clamping (a crash cannot remove more than
        the node still has), mirroring the simulator's capacity ledger.
        """
        makespan = self.makespan
        capacity = {node: float(gpus * makespan) for node, gpus in self.node_gpus.items()}
        if makespan <= 0:
            return capacity
        live = dict(self.node_gpus)
        for event in self.fault_events:
            if event.get("kind") != "crash":
                continue
            node = event.get("node")
            if node not in live:
                continue
            when = float(event.get("time", 0.0))
            amount = event.get("gpus")
            removed = live[node] if amount is None else min(int(amount), live[node])
            live[node] -= removed
            capacity[node] -= removed * max(0.0, makespan - when)
        return capacity

    @property
    def capacity_gpu_seconds(self) -> float:
        """Fleet GPU-seconds actually available (crash-adjusted)."""
        return sum(self._node_capacity_gpu_seconds().values())

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over the fleet GPU-seconds actually available.

        The denominator is the live-capacity integral, so a fleet that
        permanently loses GPUs to crashes is scored against what remained,
        not against hardware that no longer exists.
        """
        capacity = self.capacity_gpu_seconds
        if capacity <= 0:
            return 0.0
        busy = sum(record.effective_gpu_seconds for record in self.records)
        return busy / capacity

    @property
    def jobs_per_hour(self) -> float:
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        return self.num_jobs / makespan * 3600.0

    # ------------------------------------------------------------------ #
    # Reliability analytics (all zero / empty for fault-free runs)
    # ------------------------------------------------------------------ #
    @property
    def faults_injected(self) -> int:
        """How many fault events the run replayed."""
        return len(self.fault_events)

    @property
    def jobs_killed(self) -> int:
        """Jobs the degraded fleet could never host again."""
        return len(self.killed)

    @property
    def interruptions(self) -> int:
        """Fault-driven evictions across completed *and* killed jobs."""
        completed = sum(record.preemptions for record in self.records)
        lost = sum(int(entry.get("preemptions", 0)) for entry in self.killed)
        return completed + lost

    @property
    def wasted_gpu_hours(self) -> float:
        """GPU-hours destroyed by lost work, overheads and killed jobs."""
        wasted = sum(record.wasted_gpu_seconds for record in self.records)
        # A killed job's entire occupancy was wasted — it never finished.
        wasted += sum(float(entry.get("gpu_seconds", 0.0)) for entry in self.killed)
        return wasted / 3600.0

    @property
    def recovery_p95(self) -> float:
        """95th-percentile eviction-to-restart gap in seconds."""
        if not self.recoveries:
            return 0.0
        return percentile(list(self.recoveries), 95)

    @property
    def goodput(self) -> float:
        """Useful (non-wasted) GPU-seconds over fleet GPU-seconds.

        Equals :attr:`gpu_utilization` for fault-free runs; under faults
        the gap between the two is exactly the fleet's recovery tax.
        """
        capacity = self.capacity_gpu_seconds
        if capacity <= 0:
            return 0.0
        useful = sum(record.useful_gpu_seconds for record in self.records)
        return useful / capacity

    # ------------------------------------------------------------------ #
    # SLO analytics (multi-tenancy; trivially satisfied without tenants)
    # ------------------------------------------------------------------ #
    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of deadline-carrying jobs that finished in time.

        Killed jobs with deadlines count as misses; a workload with no
        deadlines scores a vacuous 1.0.
        """
        hits = 0
        total = 0
        for record in self.records:
            met = record.met_deadline
            if met is None:
                continue
            total += 1
            hits += int(met)
        for entry in self.killed:
            if entry.get("deadline") is not None:
                total += 1
        if total == 0:
            return 1.0
        return hits / total

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-tenant mean slowdowns.

        Each tenant's allocation is the reciprocal of its mean job
        slowdown (fast turnaround = large allocation); Jain's index
        ``(Σx)² / (n·Σx²)`` is 1.0 when every tenant sees the same
        slowdown and approaches ``1/n`` as one tenant monopolises the
        fleet.  Always within [0, 1]; vacuously 1.0 with at most one
        tenant represented in the records.
        """
        by_tenant: Dict[str, List[float]] = {}
        for record in self.records:
            by_tenant.setdefault(record.tenant, []).append(record.slowdown)
        if len(by_tenant) <= 1:
            return 1.0
        allocations = [
            1.0 / max(sum(slowdowns) / len(slowdowns), 1e-9)
            for slowdowns in by_tenant.values()
        ]
        square_of_sum = sum(allocations) ** 2
        sum_of_squares = sum(x * x for x in allocations)
        if sum_of_squares <= 0:
            return 1.0
        return square_of_sum / (len(allocations) * sum_of_squares)

    @property
    def total_cost_usd(self) -> float:
        """Spot-priced USD across completed and killed jobs (0 if unpriced)."""
        total = sum(
            record.cost_usd for record in self.records if record.cost_usd is not None
        )
        total += sum(
            float(entry["cost_usd"])
            for entry in self.killed
            if entry.get("cost_usd") is not None
        )
        return total

    @property
    def cost_per_job(self) -> float:
        """USD per *completed* job; killed jobs' spend is in the numerator."""
        if not self.records:
            return 0.0
        return self.total_cost_usd / len(self.records)

    def per_tenant(self) -> Dict[str, dict]:
        """Per-tenant SLO breakdown (declared tenants always present)."""
        names = [spec["name"] for spec in self.tenants]
        for record in self.records:
            if record.tenant not in names:
                names.append(record.tenant)
        for entry in self.killed:
            tenant = entry.get("tenant", "default")
            if tenant not in names:
                names.append(tenant)
        breakdown: Dict[str, dict] = {}
        for name in names:
            records = [record for record in self.records if record.tenant == name]
            killed = [
                entry for entry in self.killed if entry.get("tenant", "default") == name
            ]
            count = len(records)
            with_deadline = [r for r in records if r.met_deadline is not None]
            deadline_total = len(with_deadline) + sum(
                1 for entry in killed if entry.get("deadline") is not None
            )
            hits = sum(1 for r in with_deadline if r.met_deadline)
            cost = sum(r.cost_usd for r in records if r.cost_usd is not None)
            cost += sum(
                float(entry["cost_usd"])
                for entry in killed
                if entry.get("cost_usd") is not None
            )
            breakdown[name] = {
                "jobs": count,
                "killed": len(killed),
                "mean_wait_s": (
                    sum(r.wait_time for r in records) / count if count else 0.0
                ),
                "mean_slowdown": (
                    sum(r.slowdown for r in records) / count if count else 0.0
                ),
                "gpu_seconds": sum(r.effective_gpu_seconds for r in records),
                "useful_gpu_seconds": sum(r.useful_gpu_seconds for r in records),
                "deadline_hit_rate": (
                    hits / deadline_total if deadline_total else 1.0
                ),
                "cost_usd": cost,
            }
        return breakdown

    @property
    def goodput_jobs_per_hour(self) -> float:
        """Completed-job throughput, discounted by the wasted-work share.

        The tune objective ``goodput_under_faults`` maximises this: it
        rewards finishing jobs fast *and* not burning GPU-hours on work a
        fault destroys.
        """
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        occupied = sum(record.effective_gpu_seconds for record in self.records)
        occupied += sum(float(entry.get("gpu_seconds", 0.0)) for entry in self.killed)
        if occupied <= 0:
            return self.jobs_per_hour
        useful = sum(record.useful_gpu_seconds for record in self.records)
        return self.jobs_per_hour * (useful / occupied)

    # ------------------------------------------------------------------ #
    # Per-dimension breakdowns
    # ------------------------------------------------------------------ #
    def per_node_utilization(self) -> Dict[str, float]:
        """Busy fraction of every node's GPUs over the makespan.

        Fault runs provide exact per-node occupancy via
        ``node_busy_gpu_seconds`` (a restarted or migrated job occupies
        several nodes across its attempts); fault-free runs derive it from
        the records, whose single attempt ran entirely on ``record.node``.
        Denominators are the per-node live-capacity integrals, so crashed
        GPUs stop counting against the node from the moment they die.
        """
        busy: Dict[str, float] = {node: 0.0 for node in self.node_gpus}
        if self.node_busy_gpu_seconds:
            busy.update(self.node_busy_gpu_seconds)
        else:
            for record in self.records:
                busy[record.node] = (
                    busy.get(record.node, 0.0) + record.effective_gpu_seconds
                )
        capacity = self._node_capacity_gpu_seconds()
        return {
            node: (busy.get(node, 0.0) / capacity[node] if capacity[node] > 0 else 0.0)
            for node in self.node_gpus
        }

    def per_node_jobs(self) -> Dict[str, int]:
        counts: Dict[str, int] = {node: 0 for node in self.node_gpus}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    def waits_by_gang_size(self) -> Dict[int, float]:
        """Mean queue wait per gang size (starvation shows up here)."""
        sums: Dict[int, List[float]] = {}
        for record in self.records:
            sums.setdefault(record.gpus, []).append(record.wait_time)
        return {
            gpus: sum(waits) / len(waits) for gpus, waits in sorted(sums.items())
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Scalar metrics only (the row a comparison table shows)."""
        return {
            "policy": self.policy,
            "cluster": self.cluster_name,
            "workload": self.workload_name,
            "num_jobs": self.num_jobs,
            "total_gpus": self.total_gpus,
            "makespan_s": self.makespan,
            "mean_wait_s": self.mean_wait,
            "p95_wait_s": self.p95_wait,
            "max_wait_s": self.max_wait,
            "mean_service_s": self.mean_service,
            "gpu_utilization": self.gpu_utilization,
            "jobs_per_hour": self.jobs_per_hour,
            "faults_injected": self.faults_injected,
            "jobs_killed": self.jobs_killed,
            "interruptions": self.interruptions,
            "wasted_gpu_hours": self.wasted_gpu_hours,
            "recovery_p95_s": self.recovery_p95,
            "goodput": self.goodput,
            "goodput_jobs_per_hour": self.goodput_jobs_per_hour,
            "elastic_policy": self.elastic_policy,
            "deadline_hit_rate": self.deadline_hit_rate,
            "fairness_index": self.fairness_index,
            "total_cost_usd": self.total_cost_usd,
            "cost_per_job": self.cost_per_job,
        }

    def to_dict(self) -> dict:
        payload = self.summary()
        payload["node_gpus"] = dict(self.node_gpus)
        payload["per_node_utilization"] = self.per_node_utilization()
        payload["records"] = [record.to_dict() for record in self.records]
        payload["fault_trace"] = self.fault_trace_name
        payload["fault_events"] = [dict(event) for event in self.fault_events]
        payload["recoveries"] = list(self.recoveries)
        payload["killed"] = [dict(entry) for entry in self.killed]
        payload["node_busy_gpu_seconds"] = {
            node: float(seconds)
            for node, seconds in self.node_busy_gpu_seconds.items()
        }
        payload["tenants"] = [dict(spec) for spec in self.tenants]
        payload["price_curve"] = self.price_curve
        payload["per_tenant"] = self.per_tenant()
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterReport":
        return cls(
            policy=payload["policy"],
            cluster_name=payload.get("cluster", ""),
            workload_name=payload.get("workload", ""),
            node_gpus={node: int(g) for node, g in payload.get("node_gpus", {}).items()},
            records=tuple(
                JobRecord.from_dict(record) for record in payload.get("records", ())
            ),
            fault_events=tuple(
                dict(event) for event in payload.get("fault_events", ())
            ),
            fault_trace_name=payload.get("fault_trace"),
            elastic_policy=payload.get("elastic_policy"),
            recoveries=tuple(float(r) for r in payload.get("recoveries", ())),
            killed=tuple(dict(entry) for entry in payload.get("killed", ())),
            node_busy_gpu_seconds={
                node: float(seconds)
                for node, seconds in payload.get("node_busy_gpu_seconds", {}).items()
            },
            tenants=tuple(dict(spec) for spec in payload.get("tenants", ())),
            price_curve=payload.get("price_curve"),
        )


# ---------------------------------------------------------------------- #
# Formatting
# ---------------------------------------------------------------------- #
def format_cluster_report(report: ClusterReport) -> str:
    """Multi-section text report for one policy run."""
    lines = [
        f"{report.policy} on {report.cluster_name} — {report.workload_name}",
        f"  jobs          : {report.num_jobs}",
        f"  makespan      : {format_seconds(report.makespan)}",
        f"  mean wait     : {format_seconds(report.mean_wait)}",
        f"  p95 wait      : {format_seconds(report.p95_wait)}",
        f"  GPU util      : {report.gpu_utilization * 100:.1f}%",
        f"  throughput    : {report.jobs_per_hour:.1f} jobs/hour",
    ]
    if report.faults_injected:
        lines.extend(
            [
                f"  faults        : {report.faults_injected} events "
                f"({report.fault_trace_name}), elastic={report.elastic_policy}",
                f"  interruptions : {report.interruptions} "
                f"({report.jobs_killed} jobs killed)",
                f"  goodput       : {report.goodput * 100:.1f}% "
                f"({report.goodput_jobs_per_hour:.1f} useful jobs/hour)",
                f"  wasted        : {report.wasted_gpu_hours:.2f} GPU-hours",
                f"  recovery p95  : {format_seconds(report.recovery_p95)}",
            ]
        )
    per_tenant = report.per_tenant()
    if report.tenants or len(per_tenant) > 1:
        lines.extend(
            [
                f"  deadline hits : {report.deadline_hit_rate * 100:.1f}%",
                f"  fairness      : {report.fairness_index:.3f} (Jain)",
                f"  cost          : ${report.total_cost_usd:.2f} total, "
                f"${report.cost_per_job:.2f}/job"
                + (f" ({report.price_curve} pricing)" if report.price_curve else ""),
            ]
        )
        tenant_rows = [
            [
                name,
                str(stats["jobs"]),
                str(stats["killed"]),
                format_seconds(stats["mean_wait_s"]),
                f"{stats['mean_slowdown']:.2f}x",
                f"{stats['deadline_hit_rate'] * 100:.0f}%",
                f"${stats['cost_usd']:.2f}",
            ]
            for name, stats in per_tenant.items()
        ]
        lines.append(
            format_table(
                ["tenant", "jobs", "killed", "mean wait", "slowdown", "ddl", "cost"],
                tenant_rows,
            )
        )
    utilization = report.per_node_utilization()
    jobs = report.per_node_jobs()
    node_rows = [
        [node, str(gpus), f"{utilization[node] * 100:.1f}%", str(jobs[node])]
        for node, gpus in report.node_gpus.items()
    ]
    lines.append(format_table(["node", "gpus", "util", "jobs"], node_rows))
    return "\n".join(lines)


def compare_policies(reports: Mapping[str, ClusterReport] | Sequence[ClusterReport]) -> str:
    """Side-by-side table of scalar metrics, one row per policy."""
    if isinstance(reports, Mapping):
        ordered = list(reports.values())
    else:
        ordered = list(reports)
    if not ordered:
        raise ConfigurationError("no reports to compare")
    has_faults = any(report.faults_injected for report in ordered)
    rows = []
    for report in ordered:
        row = [
            report.policy,
            format_seconds(report.makespan),
            format_seconds(report.mean_wait),
            format_seconds(report.p95_wait),
            f"{report.gpu_utilization * 100:.1f}%",
            f"{report.jobs_per_hour:.1f}",
        ]
        if has_faults:
            row.extend(
                [
                    f"{report.goodput * 100:.1f}%",
                    str(report.jobs_killed),
                    format_seconds(report.recovery_p95),
                ]
            )
        rows.append(row)
    headers = ["policy", "makespan", "mean wait", "p95 wait", "gpu util", "jobs/h"]
    if has_faults:
        headers.extend(["goodput", "killed", "rec p95"])
    title = (
        f"{ordered[0].num_jobs} jobs on {ordered[0].cluster_name} "
        f"({ordered[0].workload_name})"
    )
    return f"{title}\n{format_table(headers, rows)}"
