"""Fleet-level analytics over cluster simulation runs.

The cluster simulator reduces a run to :class:`JobRecord` rows (one per
completed job); everything here derives the queueing-level quantities a
fleet operator reads — makespan, queue-wait distribution, GPU utilization,
throughput — and formats per-policy comparison tables.  The module is pure
data + arithmetic: it never imports the simulator, so reports parsed back
from JSON are first-class citizens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.reporting import format_seconds, format_table
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JobRecord:
    """One completed job: where it ran and when."""

    job_id: str
    node: str
    gpus: int
    strategy: str
    cell: str
    arrival_time: float
    start_time: float
    finish_time: float

    def __post_init__(self) -> None:
        if self.start_time < self.arrival_time:
            raise ConfigurationError(
                f"job {self.job_id!r} started before it arrived"
            )
        if self.finish_time < self.start_time:
            raise ConfigurationError(
                f"job {self.job_id!r} finished before it started"
            )

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before the gang was placed."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Seconds of execution once placed."""
        return self.finish_time - self.start_time

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "node": self.node,
            "gpus": self.gpus,
            "strategy": self.strategy,
            "cell": self.cell,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "wait_time": self.wait_time,
            "service_time": self.service_time,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            node=payload["node"],
            gpus=int(payload["gpus"]),
            strategy=payload["strategy"],
            cell=payload.get("cell", ""),
            arrival_time=float(payload["arrival_time"]),
            start_time=float(payload["start_time"]),
            finish_time=float(payload["finish_time"]),
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class ClusterReport:
    """Aggregated outcome of serving one workload under one policy."""

    policy: str
    cluster_name: str
    workload_name: str
    node_gpus: Dict[str, int] = field(default_factory=dict)
    records: Tuple[JobRecord, ...] = ()

    # ------------------------------------------------------------------ #
    # Scalar metrics
    # ------------------------------------------------------------------ #
    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def total_gpus(self) -> int:
        return sum(self.node_gpus.values())

    @property
    def makespan(self) -> float:
        """Seconds from t=0 until the last job finishes."""
        return max((record.finish_time for record in self.records), default=0.0)

    @property
    def mean_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.wait_time for record in self.records) / len(self.records)

    @property
    def p95_wait(self) -> float:
        if not self.records:
            return 0.0
        return percentile([record.wait_time for record in self.records], 95)

    @property
    def max_wait(self) -> float:
        return max((record.wait_time for record in self.records), default=0.0)

    @property
    def mean_service(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.service_time for record in self.records) / len(self.records)

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over fleet GPU-seconds across the makespan."""
        makespan = self.makespan
        if makespan <= 0 or self.total_gpus == 0:
            return 0.0
        busy = sum(record.gpus * record.service_time for record in self.records)
        return busy / (self.total_gpus * makespan)

    @property
    def jobs_per_hour(self) -> float:
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        return self.num_jobs / makespan * 3600.0

    # ------------------------------------------------------------------ #
    # Per-dimension breakdowns
    # ------------------------------------------------------------------ #
    def per_node_utilization(self) -> Dict[str, float]:
        """Busy fraction of every node's GPUs over the makespan."""
        makespan = self.makespan
        busy: Dict[str, float] = {node: 0.0 for node in self.node_gpus}
        for record in self.records:
            busy[record.node] = busy.get(record.node, 0.0) + record.gpus * record.service_time
        return {
            node: (busy.get(node, 0.0) / (gpus * makespan) if makespan > 0 else 0.0)
            for node, gpus in self.node_gpus.items()
        }

    def per_node_jobs(self) -> Dict[str, int]:
        counts: Dict[str, int] = {node: 0 for node in self.node_gpus}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    def waits_by_gang_size(self) -> Dict[int, float]:
        """Mean queue wait per gang size (starvation shows up here)."""
        sums: Dict[int, List[float]] = {}
        for record in self.records:
            sums.setdefault(record.gpus, []).append(record.wait_time)
        return {
            gpus: sum(waits) / len(waits) for gpus, waits in sorted(sums.items())
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Scalar metrics only (the row a comparison table shows)."""
        return {
            "policy": self.policy,
            "cluster": self.cluster_name,
            "workload": self.workload_name,
            "num_jobs": self.num_jobs,
            "total_gpus": self.total_gpus,
            "makespan_s": self.makespan,
            "mean_wait_s": self.mean_wait,
            "p95_wait_s": self.p95_wait,
            "max_wait_s": self.max_wait,
            "mean_service_s": self.mean_service,
            "gpu_utilization": self.gpu_utilization,
            "jobs_per_hour": self.jobs_per_hour,
        }

    def to_dict(self) -> dict:
        payload = self.summary()
        payload["node_gpus"] = dict(self.node_gpus)
        payload["per_node_utilization"] = self.per_node_utilization()
        payload["records"] = [record.to_dict() for record in self.records]
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterReport":
        return cls(
            policy=payload["policy"],
            cluster_name=payload.get("cluster", ""),
            workload_name=payload.get("workload", ""),
            node_gpus={node: int(g) for node, g in payload.get("node_gpus", {}).items()},
            records=tuple(
                JobRecord.from_dict(record) for record in payload.get("records", ())
            ),
        )


# ---------------------------------------------------------------------- #
# Formatting
# ---------------------------------------------------------------------- #
def format_cluster_report(report: ClusterReport) -> str:
    """Multi-section text report for one policy run."""
    lines = [
        f"{report.policy} on {report.cluster_name} — {report.workload_name}",
        f"  jobs          : {report.num_jobs}",
        f"  makespan      : {format_seconds(report.makespan)}",
        f"  mean wait     : {format_seconds(report.mean_wait)}",
        f"  p95 wait      : {format_seconds(report.p95_wait)}",
        f"  GPU util      : {report.gpu_utilization * 100:.1f}%",
        f"  throughput    : {report.jobs_per_hour:.1f} jobs/hour",
    ]
    utilization = report.per_node_utilization()
    jobs = report.per_node_jobs()
    node_rows = [
        [node, str(gpus), f"{utilization[node] * 100:.1f}%", str(jobs[node])]
        for node, gpus in report.node_gpus.items()
    ]
    lines.append(format_table(["node", "gpus", "util", "jobs"], node_rows))
    return "\n".join(lines)


def compare_policies(reports: Mapping[str, ClusterReport] | Sequence[ClusterReport]) -> str:
    """Side-by-side table of scalar metrics, one row per policy."""
    if isinstance(reports, Mapping):
        ordered = list(reports.values())
    else:
        ordered = list(reports)
    if not ordered:
        raise ConfigurationError("no reports to compare")
    rows = [
        [
            report.policy,
            format_seconds(report.makespan),
            format_seconds(report.mean_wait),
            format_seconds(report.p95_wait),
            f"{report.gpu_utilization * 100:.1f}%",
            f"{report.jobs_per_hour:.1f}",
        ]
        for report in ordered
    ]
    headers = ["policy", "makespan", "mean wait", "p95 wait", "gpu util", "jobs/h"]
    title = (
        f"{ordered[0].num_jobs} jobs on {ordered[0].cluster_name} "
        f"({ordered[0].workload_name})"
    )
    return f"{title}\n{format_table(headers, rows)}"
