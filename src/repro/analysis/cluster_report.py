"""Fleet-level analytics over cluster simulation runs.

The cluster simulator reduces a run to :class:`JobRecord` rows (one per
completed job); everything here derives the queueing-level quantities a
fleet operator reads — makespan, queue-wait distribution, GPU utilization,
throughput — and formats per-policy comparison tables.  The module is pure
data + arithmetic: it never imports the simulator, so reports parsed back
from JSON are first-class citizens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.reporting import format_seconds, format_table
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JobRecord:
    """One completed job: where it ran, when, and what faults cost it.

    The reliability fields default to "nothing happened": ``preemptions``
    counts fault-driven interruptions, ``gpu_seconds`` the actual GPU-time
    occupied across every attempt (``None`` means the fault-free
    ``gpus * service_time``), ``wasted_gpu_seconds`` the slice destroyed by
    lost work and recovery overheads, ``recovery_seconds`` the total time
    spent between an eviction and the next start, and ``final_gpus`` the
    gang size the job *finished* on (elastic ``shrink`` makes it smaller
    than ``gpus``).
    """

    job_id: str
    node: str
    gpus: int
    strategy: str
    cell: str
    arrival_time: float
    start_time: float
    finish_time: float
    preemptions: int = 0
    gpu_seconds: Optional[float] = None
    wasted_gpu_seconds: float = 0.0
    recovery_seconds: float = 0.0
    final_gpus: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_time < self.arrival_time:
            raise ConfigurationError(
                f"job {self.job_id!r} started before it arrived"
            )
        if self.finish_time < self.start_time:
            raise ConfigurationError(
                f"job {self.job_id!r} finished before it started"
            )
        if self.preemptions < 0:
            raise ConfigurationError(
                f"job {self.job_id!r} has a negative preemption count"
            )
        if self.wasted_gpu_seconds < 0 or self.recovery_seconds < 0:
            raise ConfigurationError(
                f"job {self.job_id!r} has negative reliability accounting"
            )

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before the gang was first placed."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Seconds from first placement to completion (recovery included)."""
        return self.finish_time - self.start_time

    @property
    def effective_gpu_seconds(self) -> float:
        """GPU-seconds actually occupied (fault-free runs derive it)."""
        if self.gpu_seconds is not None:
            return self.gpu_seconds
        return self.gpus * self.service_time

    @property
    def useful_gpu_seconds(self) -> float:
        """Occupied GPU-seconds minus the slice faults destroyed."""
        return max(0.0, self.effective_gpu_seconds - self.wasted_gpu_seconds)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "node": self.node,
            "gpus": self.gpus,
            "strategy": self.strategy,
            "cell": self.cell,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "wait_time": self.wait_time,
            "service_time": self.service_time,
            "preemptions": self.preemptions,
            # Coerced to float so a fresh report and its JSON round-trip
            # render byte-identically even when a counter happens to be an
            # exact integer sum.
            "gpu_seconds": (
                float(self.gpu_seconds) if self.gpu_seconds is not None else None
            ),
            "wasted_gpu_seconds": float(self.wasted_gpu_seconds),
            "recovery_seconds": float(self.recovery_seconds),
            "final_gpus": self.final_gpus,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        gpu_seconds = payload.get("gpu_seconds")
        final_gpus = payload.get("final_gpus")
        return cls(
            job_id=payload["job_id"],
            node=payload["node"],
            gpus=int(payload["gpus"]),
            strategy=payload["strategy"],
            cell=payload.get("cell", ""),
            arrival_time=float(payload["arrival_time"]),
            start_time=float(payload["start_time"]),
            finish_time=float(payload["finish_time"]),
            preemptions=int(payload.get("preemptions", 0)),
            gpu_seconds=(float(gpu_seconds) if gpu_seconds is not None else None),
            wasted_gpu_seconds=float(payload.get("wasted_gpu_seconds", 0.0)),
            recovery_seconds=float(payload.get("recovery_seconds", 0.0)),
            final_gpus=(int(final_gpus) if final_gpus is not None else None),
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class ClusterReport:
    """Aggregated outcome of serving one workload under one policy.

    The reliability fields are only populated by fault-injected runs:
    ``fault_events`` is the injected trace (as dicts), ``recoveries`` one
    duration per eviction-to-restart gap (feeding the p95), ``killed`` one
    dict per job the degraded fleet could never host again, and
    ``elastic_policy`` the recovery policy that handled evictions.
    """

    policy: str
    cluster_name: str
    workload_name: str
    node_gpus: Dict[str, int] = field(default_factory=dict)
    records: Tuple[JobRecord, ...] = ()
    fault_events: Tuple[dict, ...] = ()
    fault_trace_name: Optional[str] = None
    elastic_policy: Optional[str] = None
    recoveries: Tuple[float, ...] = ()
    killed: Tuple[dict, ...] = ()
    #: Exact per-node GPU-seconds occupied, populated by fault runs where a
    #: job's attempts may span several nodes (restart/migrate); empty for
    #: fault-free runs, whose records are single-node by construction.
    node_busy_gpu_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Scalar metrics
    # ------------------------------------------------------------------ #
    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def total_gpus(self) -> int:
        return sum(self.node_gpus.values())

    @property
    def makespan(self) -> float:
        """Seconds from t=0 until the last job finishes."""
        return max((record.finish_time for record in self.records), default=0.0)

    @property
    def mean_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.wait_time for record in self.records) / len(self.records)

    @property
    def p95_wait(self) -> float:
        if not self.records:
            return 0.0
        return percentile([record.wait_time for record in self.records], 95)

    @property
    def max_wait(self) -> float:
        return max((record.wait_time for record in self.records), default=0.0)

    @property
    def mean_service(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.service_time for record in self.records) / len(self.records)

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over fleet GPU-seconds across the makespan."""
        makespan = self.makespan
        if makespan <= 0 or self.total_gpus == 0:
            return 0.0
        busy = sum(record.effective_gpu_seconds for record in self.records)
        return busy / (self.total_gpus * makespan)

    @property
    def jobs_per_hour(self) -> float:
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        return self.num_jobs / makespan * 3600.0

    # ------------------------------------------------------------------ #
    # Reliability analytics (all zero / empty for fault-free runs)
    # ------------------------------------------------------------------ #
    @property
    def faults_injected(self) -> int:
        """How many fault events the run replayed."""
        return len(self.fault_events)

    @property
    def jobs_killed(self) -> int:
        """Jobs the degraded fleet could never host again."""
        return len(self.killed)

    @property
    def interruptions(self) -> int:
        """Fault-driven evictions across completed *and* killed jobs."""
        completed = sum(record.preemptions for record in self.records)
        lost = sum(int(entry.get("preemptions", 0)) for entry in self.killed)
        return completed + lost

    @property
    def wasted_gpu_hours(self) -> float:
        """GPU-hours destroyed by lost work, overheads and killed jobs."""
        wasted = sum(record.wasted_gpu_seconds for record in self.records)
        # A killed job's entire occupancy was wasted — it never finished.
        wasted += sum(float(entry.get("gpu_seconds", 0.0)) for entry in self.killed)
        return wasted / 3600.0

    @property
    def recovery_p95(self) -> float:
        """95th-percentile eviction-to-restart gap in seconds."""
        if not self.recoveries:
            return 0.0
        return percentile(list(self.recoveries), 95)

    @property
    def goodput(self) -> float:
        """Useful (non-wasted) GPU-seconds over fleet GPU-seconds.

        Equals :attr:`gpu_utilization` for fault-free runs; under faults
        the gap between the two is exactly the fleet's recovery tax.
        """
        makespan = self.makespan
        if makespan <= 0 or self.total_gpus == 0:
            return 0.0
        useful = sum(record.useful_gpu_seconds for record in self.records)
        return useful / (self.total_gpus * makespan)

    @property
    def goodput_jobs_per_hour(self) -> float:
        """Completed-job throughput, discounted by the wasted-work share.

        The tune objective ``goodput_under_faults`` maximises this: it
        rewards finishing jobs fast *and* not burning GPU-hours on work a
        fault destroys.
        """
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        occupied = sum(record.effective_gpu_seconds for record in self.records)
        occupied += sum(float(entry.get("gpu_seconds", 0.0)) for entry in self.killed)
        if occupied <= 0:
            return self.jobs_per_hour
        useful = sum(record.useful_gpu_seconds for record in self.records)
        return self.jobs_per_hour * (useful / occupied)

    # ------------------------------------------------------------------ #
    # Per-dimension breakdowns
    # ------------------------------------------------------------------ #
    def per_node_utilization(self) -> Dict[str, float]:
        """Busy fraction of every node's GPUs over the makespan.

        Fault runs provide exact per-node occupancy via
        ``node_busy_gpu_seconds`` (a restarted or migrated job occupies
        several nodes across its attempts); fault-free runs derive it from
        the records, whose single attempt ran entirely on ``record.node``.
        """
        makespan = self.makespan
        busy: Dict[str, float] = {node: 0.0 for node in self.node_gpus}
        if self.node_busy_gpu_seconds:
            busy.update(self.node_busy_gpu_seconds)
        else:
            for record in self.records:
                busy[record.node] = (
                    busy.get(record.node, 0.0) + record.effective_gpu_seconds
                )
        return {
            node: (busy.get(node, 0.0) / (gpus * makespan) if makespan > 0 else 0.0)
            for node, gpus in self.node_gpus.items()
        }

    def per_node_jobs(self) -> Dict[str, int]:
        counts: Dict[str, int] = {node: 0 for node in self.node_gpus}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    def waits_by_gang_size(self) -> Dict[int, float]:
        """Mean queue wait per gang size (starvation shows up here)."""
        sums: Dict[int, List[float]] = {}
        for record in self.records:
            sums.setdefault(record.gpus, []).append(record.wait_time)
        return {
            gpus: sum(waits) / len(waits) for gpus, waits in sorted(sums.items())
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Scalar metrics only (the row a comparison table shows)."""
        return {
            "policy": self.policy,
            "cluster": self.cluster_name,
            "workload": self.workload_name,
            "num_jobs": self.num_jobs,
            "total_gpus": self.total_gpus,
            "makespan_s": self.makespan,
            "mean_wait_s": self.mean_wait,
            "p95_wait_s": self.p95_wait,
            "max_wait_s": self.max_wait,
            "mean_service_s": self.mean_service,
            "gpu_utilization": self.gpu_utilization,
            "jobs_per_hour": self.jobs_per_hour,
            "faults_injected": self.faults_injected,
            "jobs_killed": self.jobs_killed,
            "interruptions": self.interruptions,
            "wasted_gpu_hours": self.wasted_gpu_hours,
            "recovery_p95_s": self.recovery_p95,
            "goodput": self.goodput,
            "goodput_jobs_per_hour": self.goodput_jobs_per_hour,
            "elastic_policy": self.elastic_policy,
        }

    def to_dict(self) -> dict:
        payload = self.summary()
        payload["node_gpus"] = dict(self.node_gpus)
        payload["per_node_utilization"] = self.per_node_utilization()
        payload["records"] = [record.to_dict() for record in self.records]
        payload["fault_trace"] = self.fault_trace_name
        payload["fault_events"] = [dict(event) for event in self.fault_events]
        payload["recoveries"] = list(self.recoveries)
        payload["killed"] = [dict(entry) for entry in self.killed]
        payload["node_busy_gpu_seconds"] = {
            node: float(seconds)
            for node, seconds in self.node_busy_gpu_seconds.items()
        }
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterReport":
        return cls(
            policy=payload["policy"],
            cluster_name=payload.get("cluster", ""),
            workload_name=payload.get("workload", ""),
            node_gpus={node: int(g) for node, g in payload.get("node_gpus", {}).items()},
            records=tuple(
                JobRecord.from_dict(record) for record in payload.get("records", ())
            ),
            fault_events=tuple(
                dict(event) for event in payload.get("fault_events", ())
            ),
            fault_trace_name=payload.get("fault_trace"),
            elastic_policy=payload.get("elastic_policy"),
            recoveries=tuple(float(r) for r in payload.get("recoveries", ())),
            killed=tuple(dict(entry) for entry in payload.get("killed", ())),
            node_busy_gpu_seconds={
                node: float(seconds)
                for node, seconds in payload.get("node_busy_gpu_seconds", {}).items()
            },
        )


# ---------------------------------------------------------------------- #
# Formatting
# ---------------------------------------------------------------------- #
def format_cluster_report(report: ClusterReport) -> str:
    """Multi-section text report for one policy run."""
    lines = [
        f"{report.policy} on {report.cluster_name} — {report.workload_name}",
        f"  jobs          : {report.num_jobs}",
        f"  makespan      : {format_seconds(report.makespan)}",
        f"  mean wait     : {format_seconds(report.mean_wait)}",
        f"  p95 wait      : {format_seconds(report.p95_wait)}",
        f"  GPU util      : {report.gpu_utilization * 100:.1f}%",
        f"  throughput    : {report.jobs_per_hour:.1f} jobs/hour",
    ]
    if report.faults_injected:
        lines.extend(
            [
                f"  faults        : {report.faults_injected} events "
                f"({report.fault_trace_name}), elastic={report.elastic_policy}",
                f"  interruptions : {report.interruptions} "
                f"({report.jobs_killed} jobs killed)",
                f"  goodput       : {report.goodput * 100:.1f}% "
                f"({report.goodput_jobs_per_hour:.1f} useful jobs/hour)",
                f"  wasted        : {report.wasted_gpu_hours:.2f} GPU-hours",
                f"  recovery p95  : {format_seconds(report.recovery_p95)}",
            ]
        )
    utilization = report.per_node_utilization()
    jobs = report.per_node_jobs()
    node_rows = [
        [node, str(gpus), f"{utilization[node] * 100:.1f}%", str(jobs[node])]
        for node, gpus in report.node_gpus.items()
    ]
    lines.append(format_table(["node", "gpus", "util", "jobs"], node_rows))
    return "\n".join(lines)


def compare_policies(reports: Mapping[str, ClusterReport] | Sequence[ClusterReport]) -> str:
    """Side-by-side table of scalar metrics, one row per policy."""
    if isinstance(reports, Mapping):
        ordered = list(reports.values())
    else:
        ordered = list(reports)
    if not ordered:
        raise ConfigurationError("no reports to compare")
    has_faults = any(report.faults_injected for report in ordered)
    rows = []
    for report in ordered:
        row = [
            report.policy,
            format_seconds(report.makespan),
            format_seconds(report.mean_wait),
            format_seconds(report.p95_wait),
            f"{report.gpu_utilization * 100:.1f}%",
            f"{report.jobs_per_hour:.1f}",
        ]
        if has_faults:
            row.extend(
                [
                    f"{report.goodput * 100:.1f}%",
                    str(report.jobs_killed),
                    format_seconds(report.recovery_p95),
                ]
            )
        rows.append(row)
    headers = ["policy", "makespan", "mean wait", "p95 wait", "gpu util", "jobs/h"]
    if has_faults:
        headers.extend(["goodput", "killed", "rec p95"])
    title = (
        f"{ordered[0].num_jobs} jobs on {ordered[0].cluster_name} "
        f"({ordered[0].workload_name})"
    )
    return f"{title}\n{format_table(headers, rows)}"
