"""Per-rank memory reports (paper Fig. 7 and §VII-C)."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.parallel.executor import ExecutionResult


def per_rank_memory_gb(result: ExecutionResult) -> Dict[int, float]:
    """Peak memory allocation per rank, in GB."""
    return {
        device: peak_bytes / 1e9
        for device, peak_bytes in sorted(result.peak_memory_bytes.items())
    }


def max_memory_gb(result: ExecutionResult) -> float:
    """The Fig. 7 'Max.' bar: the largest per-rank allocation."""
    return result.max_memory_gb()


def average_memory_overhead(
    result: ExecutionResult, baseline: ExecutionResult
) -> float:
    """Average per-rank relative memory overhead versus a baseline.

    The paper reports Pipe-BD's overhead over DP as 8.7 % (CIFAR-10) and
    21.3 % (ImageNet) on average across ranks (§VII-C).
    """
    ours = result.peak_memory_bytes
    base = baseline.peak_memory_bytes
    if set(ours) != set(base):
        raise ConfigurationError("results cover different device sets")
    if not ours:
        raise ConfigurationError("results carry no memory information")
    ratios = [
        (ours[device] - base[device]) / base[device] for device in sorted(ours)
    ]
    return sum(ratios) / len(ratios)


def memory_overhead_table(
    results: Mapping[str, ExecutionResult], baseline: str = "DP"
) -> Dict[str, float]:
    """Average overhead of every strategy versus the chosen baseline."""
    if baseline not in results:
        raise ConfigurationError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    return {
        strategy: average_memory_overhead(result, base)
        for strategy, result in results.items()
        if strategy != baseline
    }
