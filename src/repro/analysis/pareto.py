"""Pareto-frontier analytics over autotuning results.

Covered by ``docs/TUNING.md`` (reading results) and ``docs/API.md``.

These helpers consume either a live :class:`~repro.tune.result.TuneResult`
or the JSON document its ``to_dict``/``to_json`` export (e.g. written by
``python -m repro tune --out result.json``), so notebooks can post-process
tuning runs without re-simulating anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.reporting import format_table
from repro.errors import ConfigurationError

ResultLike = Union[dict, "TuneResult"]  # noqa: F821 - TuneResult via duck typing


def _as_dict(result: ResultLike) -> dict:
    if hasattr(result, "to_dict"):
        return result.to_dict()
    if isinstance(result, dict):
        return result
    raise ConfigurationError(
        f"expected a TuneResult or its dict export, got {type(result).__name__}"
    )


def load_tune_result(path: Union[str, Path]) -> dict:
    """Load a tune-result JSON document written by the CLI or ``to_json``.

    Example:
        >>> import tempfile, os
        >>> from repro.analysis.pareto import load_tune_result
        >>> from repro.tune import TuneSpace, tune
        >>> result = tune(TuneSpace(strategies=("DP",), batch_sizes=(128,),
        ...                         gpu_counts=(2,)),
        ...               driver="exhaustive", budget=1, simulated_steps=4)
        >>> handle, path = tempfile.mkstemp(suffix=".json"); os.close(handle)
        >>> _ = open(path, "w").write(result.to_json())
        >>> load_tune_result(path)["driver"]
        'exhaustive'
        >>> os.remove(path)
    """
    payload = json.loads(Path(path).read_text())
    for field in ("frontier", "best", "objective"):
        if field not in payload:
            raise ConfigurationError(
                f"{path} is not a tune result (missing {field!r})"
            )
    return payload


def frontier_points(result: ResultLike) -> List[dict]:
    """The frontier's measurement dicts, fastest-first."""
    return list(_as_dict(result)["frontier"])


def dominated_fraction(result: ResultLike) -> float:
    """Fraction of evaluated candidates pruned as Pareto-dominated."""
    payload = _as_dict(result)
    total = len(payload["measurements"])
    if total == 0:
        return 0.0
    return 1.0 - len(payload["frontier"]) / total


#: Frontier axes where larger is better; every other axis is minimised.
MAXIMISED_AXES = frozenset({"jobs_per_hour"})


def frontier_series(
    result: ResultLike, x: str = "gpus", y: str = "epoch_time_s"
) -> Dict[float, float]:
    """One frontier axis against another, keeping the best ``y`` per ``x``.

    "Best" respects the axis's sense: minimised axes (``epoch_time_s``,
    ``gpus``, ``max_memory_gb``, ``cost_usd_per_epoch``) keep the smallest
    value per ``x``; ``jobs_per_hour`` keeps the largest.

    Example:
        >>> from repro.analysis.pareto import frontier_series
        >>> from repro.tune import TuneSpace, tune
        >>> result = tune(TuneSpace(strategies=("TR",), batch_sizes=(128,),
        ...                         gpu_counts=(2, 4)),
        ...               driver="exhaustive", budget=2, simulated_steps=4)
        >>> sorted(frontier_series(result).keys())
        [2, 4]
    """
    maximise = y in MAXIMISED_AXES
    series: Dict[float, float] = {}
    for point in frontier_points(result):
        if x not in point or y not in point:
            raise ConfigurationError(
                f"unknown frontier axis {x!r}/{y!r}; available: {sorted(point)}"
            )
        key, value = point[x], point[y]
        if value is None or key is None:
            continue
        if key not in series or (value > series[key] if maximise else value < series[key]):
            series[key] = value
    return series


def hypervolume_2d(
    result: ResultLike,
    x: str = "gpus",
    y: str = "epoch_time_s",
    reference: Tuple[float, float] = None,
) -> float:
    """Dominated area of the 2-D frontier projection, up to a reference point.

    Both axes are minimised; the reference defaults to (max_x, max_y) over
    the frontier, so a larger hypervolume means a frontier that pushes
    further toward the origin.  A single-point frontier has volume 0 under
    the default reference.
    """
    series = sorted(frontier_series(result, x=x, y=y).items())
    if not series:
        return 0.0
    if reference is None:
        reference = (max(k for k, _ in series), max(v for _, v in series))
    ref_x, ref_y = reference
    volume = 0.0
    best_y = float("inf")
    for key, value in series:
        if key > ref_x:
            break
        best_y = min(best_y, value)
        next_keys = [k for k, _ in series if k > key]
        upper = min(next_keys + [ref_x])
        if best_y < ref_y:
            volume += (upper - key) * (ref_y - best_y)
    return volume


def format_frontier_table(result: ResultLike) -> str:
    """Fixed-width table of the Pareto frontier, fastest candidate first.

    Example:
        >>> from repro.analysis.pareto import format_frontier_table
        >>> from repro.tune import TuneSpace, tune
        >>> result = tune(TuneSpace(strategies=("DP", "TR"), batch_sizes=(128,),
        ...                         gpu_counts=(2,)),
        ...               driver="exhaustive", budget=2, simulated_steps=4)
        >>> print(format_frontier_table(result).splitlines()[0])
        Pareto frontier (2 evaluated, 1 dominated)
    """
    payload = _as_dict(result)
    rows = []
    for point in payload["frontier"]:
        memory = point["max_memory_gb"]
        jobs = point["jobs_per_hour"]
        rows.append(
            [
                point["label"],
                f"{point['epoch_time_s']:.2f}s",
                str(point["gpus"]),
                f"{memory:.2f}GB" if memory is not None else "-",
                f"${point['cost_usd_per_epoch']:.4f}",
                f"{jobs:.1f}/h" if jobs is not None else "-",
            ]
        )
    table = format_table(
        ["candidate", "epoch", "gpus", "peak mem", "cost/epoch", "throughput"], rows
    )
    dominated = len(payload["measurements"]) - len(payload["frontier"])
    title = (
        f"Pareto frontier ({len(payload['measurements'])} evaluated, "
        f"{dominated} dominated)"
    )
    return f"{title}\n{table}"


def format_tune_summary(result: ResultLike) -> str:
    """One-paragraph summary: winner, objective score, simulation spend.

    Example:
        >>> from repro.analysis.pareto import format_tune_summary
        >>> from repro.tune import TuneSpace, tune
        >>> result = tune(TuneSpace(strategies=("DP",), batch_sizes=(128,),
        ...                         gpu_counts=(2,)),
        ...               driver="exhaustive", budget=1, simulated_steps=4)
        >>> "winner" in format_tune_summary(result)
        True
    """
    payload = _as_dict(result)
    best = payload["best"]
    stats = payload.get("evaluator_stats", {})
    lines = [
        f"objective     : {payload['objective']['name']} ({payload['objective']['sense']})",
        f"driver        : {payload['driver']} (budget {payload['budget']})",
        f"winner        : {best['label']}",
        f"  epoch time  : {best['epoch_time_s']:.2f}s",
        f"  cost/epoch  : ${best['cost_usd_per_epoch']:.4f}",
        f"simulations   : {stats.get('simulations', '?')} "
        f"(grid size {payload['space'].get('size', '?')})",
        f"frontier size : {len(payload['frontier'])}",
    ]
    return "\n".join(lines)


def assert_frontier_consistent(result: ResultLike) -> None:
    """Raise if any frontier point is dominated by any measurement.

    A guard for hand-edited or externally produced result documents.
    """
    payload = _as_dict(result)

    def axes(point: dict) -> Tuple[float, float, float]:
        return (point["epoch_time_s"], point["gpus"], point["max_memory_gb"] or 0.0)

    for frontier_point in payload["frontier"]:
        for other in payload["measurements"]:
            a, b = axes(other), axes(frontier_point)
            if all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b)):
                raise ConfigurationError(
                    f"frontier point {frontier_point['label']!r} is dominated by "
                    f"{other['label']!r}"
                )
