"""ASCII rendering of schedules and execution traces (paper Figs. 3 and 5b/c)."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.parallel.plan import SchedulePlan
from repro.sim.events import TaskKind
from repro.sim.resources import device_compute
from repro.sim.trace import Trace

#: One-character glyph per task kind used in the Gantt rendering.
KIND_GLYPHS: Dict[TaskKind, str] = {
    TaskKind.DATA_LOAD: "D",
    TaskKind.TEACHER_FORWARD: "T",
    TaskKind.STUDENT_FORWARD: "S",
    TaskKind.STUDENT_BACKWARD: "B",
    TaskKind.WEIGHT_UPDATE: "U",
    TaskKind.SEND: ">",
    TaskKind.RECV: "<",
    TaskKind.ALLREDUCE: "A",
    TaskKind.BARRIER: "|",
    TaskKind.VALIDATE: "V",
}


def schedule_summary(plan: SchedulePlan) -> str:
    """Summarise which blocks each device handles (the Fig. 5b/5c content).

    Example output for the paper's A6000 ImageNet schedule::

        device 0: blocks 0-2 (shared with devices 0,1,2, batch 86)
        device 3: blocks 3-5 (batch 256)
    """
    lines: List[str] = [f"strategy: {plan.strategy}, global batch {plan.batch_size}"]
    if plan.kind == "pipeline":
        for stage in plan.stages:
            blocks = (
                f"block {stage.first_block}"
                if stage.first_block == stage.last_block
                else f"blocks {stage.first_block}-{stage.last_block}"
            )
            micro = stage.per_device_batch(plan.batch_size)
            for device in stage.device_ids:
                if stage.num_devices > 1:
                    shared = ",".join(str(d) for d in stage.device_ids)
                    lines.append(
                        f"device {device}: {blocks} (shared with devices {shared}, "
                        f"per-device batch {micro})"
                    )
                else:
                    lines.append(f"device {device}: {blocks} (per-device batch {micro})")
    elif plan.kind == "layerwise":
        assert plan.device_blocks is not None
        for device in sorted(plan.device_blocks):
            blocks = ",".join(str(b) for b in plan.device_blocks[device])
            lines.append(f"device {device}: blocks {blocks} (full batch {plan.batch_size})")
    else:
        lines.append(
            f"all devices: every block in sequence (per-device batch "
            f"{plan.batch_size // plan.num_devices})"
        )
    return "\n".join(lines)


def render_gantt(
    trace: Trace,
    num_devices: int,
    width: int = 100,
    start: float | None = None,
    end: float | None = None,
) -> str:
    """Render the per-device compute timeline as an ASCII Gantt chart.

    Each device's compute stream becomes one row of ``width`` characters;
    each character covers an equal slice of the rendered interval and shows
    the glyph of the task occupying most of that slice (``.`` for idle).
    """
    if trace is None:
        raise ConfigurationError(
            "this result has no trace to render: traces are not persisted "
            "in the experiment store, so store-hydrated results carry "
            "trace=None — re-run the cell without a store (or with a cold "
            "one) to obtain a trace"
        )
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    if start is None:
        start = 0.0
    if end is None:
        end = trace.makespan
    if end <= start:
        return "(empty trace)"
    span = end - start
    slice_width = span / width

    lines: List[str] = [f"time: {start:.4f}s .. {end:.4f}s  ({span * 1e3:.2f} ms)"]
    for device in range(num_devices):
        resource = device_compute(device)
        records = [record for record in trace if record.resource == resource]
        row = []
        for slot in range(width):
            slot_start = start + slot * slice_width
            slot_end = slot_start + slice_width
            best_glyph = "."
            best_overlap = 0.0
            for record in records:
                overlap = min(record.end, slot_end) - max(record.start, slot_start)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_glyph = KIND_GLYPHS.get(record.kind, "?")
            row.append(best_glyph)
        lines.append(f"gpu{device} |{''.join(row)}|")
    legend = "  ".join(f"{glyph}={kind.value}" for kind, glyph in KIND_GLYPHS.items())
    lines.append(f"legend: {legend}  .=idle")
    return "\n".join(lines)
