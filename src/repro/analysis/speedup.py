"""Speedup computations (paper Figs. 4, 5a, 6)."""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.parallel.executor import ExecutionResult


def speedup_over(result: ExecutionResult, baseline: ExecutionResult) -> float:
    """Speedup of ``result`` relative to ``baseline`` (epoch-time ratio)."""
    if result.epoch_time <= 0:
        raise ConfigurationError("result epoch time must be positive")
    return baseline.epoch_time / result.epoch_time


def speedup_series(
    results: Mapping[str, ExecutionResult], baseline: str = "DP"
) -> Dict[str, float]:
    """Speedups of every strategy in a result mapping over one baseline."""
    if baseline not in results:
        raise ConfigurationError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    return {strategy: speedup_over(result, base) for strategy, result in results.items()}


def geometric_mean_speedup(speedups: Sequence[float]) -> float:
    """Geometric mean of a collection of speedups."""
    if not speedups:
        raise ConfigurationError("speedups must be non-empty")
    if any(value <= 0 for value in speedups):
        raise ConfigurationError("speedups must be positive")
    return math.exp(sum(math.log(value) for value in speedups) / len(speedups))


def normalized_epoch_times(
    results: Mapping[str, ExecutionResult], baseline: str = "DP"
) -> Dict[str, float]:
    """Epoch times normalised to the baseline (inverse of the speedups)."""
    series = speedup_series(results, baseline)
    return {strategy: 1.0 / value for strategy, value in series.items()}


def crossover_batch(
    series_a: Mapping[int, float], series_b: Mapping[int, float]
) -> int | None:
    """Smallest batch size at which series B overtakes series A.

    Used to locate where one strategy's speedup crosses another's in the
    batch-size sensitivity sweep (Fig. 6); returns ``None`` if it never does.
    """
    for batch in sorted(set(series_a) & set(series_b)):
        if series_b[batch] >= series_a[batch]:
            return batch
    return None
