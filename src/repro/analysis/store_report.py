"""Warm/cold cache analytics: how much work the store and session saved.

The sweep, cluster and tune consumers all answer the same capacity
question — *of the work this command implied, how much was actually
simulated and how much was replayed from a cache?*  This module turns the
:class:`~repro.core.session.SessionStats` counters and a persistent
:class:`~repro.store.store.ExperimentStore`'s stats into that answer:

* :func:`warm_cold_summary` — one dict: simulations performed vs results
  hydrated from the store, with the warm fraction;
* :func:`store_overview` — store-level aggregates plus a per-record-kind
  breakdown (``run`` / ``estimate`` / ``throughput``);
* :func:`format_session_stats` / :func:`format_store_overview` — the
  fixed-width tables ``python -m repro cache stats`` and ``--table``
  consumers print.

Documented in ``docs/CACHING.md`` (observability section).
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.core.session import Session, SessionStats
from repro.store.store import ExperimentStore


def warm_cold_summary(session: Session) -> dict:
    """Simulations vs store replays for one session, with the warm fraction.

    Example:
        >>> from repro.analysis.store_report import warm_cold_summary
        >>> from repro import ExperimentConfig, Session
        >>> session = Session()
        >>> _ = session.run(ExperimentConfig(batch_size=128, simulated_steps=4))
        >>> summary = warm_cold_summary(session)
        >>> (summary["simulations"], summary["warm_fraction"])
        (1, 0.0)
    """
    stats = session.stats
    total = stats.runs + stats.store_hits
    return {
        "simulations": stats.runs,
        "store_hits": stats.store_hits,
        "store_builds": stats.store_builds,
        "warm_fraction": stats.store_hits / total if total else 0.0,
        "has_store": session.store is not None,
    }


def request_warm_cold(delta: dict) -> dict:
    """Per-request hydration accounting from a :meth:`SessionStats.delta`.

    The serve layer brackets each HTTP request with
    ``SessionStats.snapshot()`` / ``delta()`` and embeds this summary as
    ``meta.request`` in the response, making "this query performed zero
    simulations" observable by the caller.

    Example:
        >>> from repro.analysis.store_report import request_warm_cold
        >>> request_warm_cold({"runs": 0, "store_hits": 3, "store_builds": 0})
        {'simulations': 0, 'store_hits': 3, 'store_builds': 0, 'warm': True}
    """
    simulations = delta.get("runs", 0)
    return {
        "simulations": simulations,
        "store_hits": delta.get("store_hits", 0),
        "store_builds": delta.get("store_builds", 0),
        "warm": simulations == 0,
    }


def store_overview(store: ExperimentStore) -> dict:
    """Store stats plus a per-record-kind count breakdown (one record walk)."""
    return store.overview()


def format_session_stats(stats: SessionStats) -> str:
    """Per-cache build/hit/hit-rate table for one session.

    Example:
        >>> from repro.analysis.store_report import format_session_stats
        >>> from repro.core.session import SessionStats
        >>> print(format_session_stats(SessionStats(profile_builds=1,
        ...                                         profile_hits=3)).splitlines()[0])
        Session caches (1 simulation(s) performed)
    """
    rows = []
    for cache in SessionStats.CACHES:
        builds = getattr(stats, f"{cache}_builds")
        hits = getattr(stats, f"{cache}_hits")
        rows.append([cache, str(builds), str(hits), f"{stats.hit_rate(cache):.2f}"])
    table = format_table(["cache", "builds", "hits", "hit rate"], rows)
    return f"Session caches ({stats.runs} simulation(s) performed)\n{table}"


def format_store_overview(store: ExperimentStore) -> str:
    """Human-readable ``cache stats`` report for one store."""
    overview = store_overview(store)
    stats = overview["stats"]
    rows = [
        ["records", str(stats["records"])],
        ["shards", str(stats["shards"])],
        ["disk bytes", str(stats["disk_bytes"])],
        ["quarantined", str(stats["quarantined_records"])],
        ["hits (this handle)", str(stats["hits"])],
        ["misses (this handle)", str(stats["misses"])],
        ["hit rate", f"{stats['hit_rate']:.2f}"],
    ]
    for kind, count in overview["records_by_kind"].items():
        rows.append([f"kind:{kind}", str(count)])
    table = format_table(["metric", "value"], rows)
    return f"Experiment store at {overview['root']}\n{table}"
