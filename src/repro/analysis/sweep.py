"""Analysis helpers over :class:`~repro.core.session.SweepResult` grids.

These consume the typed sweep results produced by ``Session.sweep`` and turn
them into the series and tables the paper's sensitivity figures plot:
batch-size sensitivity (Fig. 6), GPU-count scaling (the extras ablation) and
per-cell speedup tables (Figs. 4/5a generalised to arbitrary grids).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.speedup import crossover_batch
from repro.core.reporting import format_table
from repro.core.session import SweepResult
from repro.errors import ConfigurationError


def sweep_speedups(sweep: SweepResult, baseline: str = "DP") -> Dict[str, Dict[str, float]]:
    """Per-cell speedups over a baseline: ``{cell label: {strategy: x}}``."""
    return sweep.speedup_table(baseline)


def batch_sensitivity(
    sweep: SweepResult, strategy: str, baseline: str = "DP"
) -> Dict[int, float]:
    """Speedup of one strategy vs batch size (Fig. 6's data series)."""
    return sweep.series(strategy, axis="batch_size", baseline=baseline)


def gpu_sensitivity(
    sweep: SweepResult, strategy: str, baseline: str = "DP"
) -> Dict[int, float]:
    """Speedup of one strategy vs GPU count (device-scaling series)."""
    return sweep.series(strategy, axis="num_gpus", baseline=baseline)


def sweep_crossover_batch(
    sweep: SweepResult, strategy_a: str, strategy_b: str, baseline: str = "DP"
) -> int | None:
    """Smallest swept batch size at which strategy B overtakes strategy A."""
    return crossover_batch(
        batch_sensitivity(sweep, strategy_a, baseline),
        batch_sensitivity(sweep, strategy_b, baseline),
    )


def format_sweep_table(sweep: SweepResult, baseline: str = "DP") -> str:
    """Fixed-width speedup table: one row per cell, one column per strategy."""
    if not sweep.cells:
        raise ConfigurationError("sweep produced no cells")
    strategies = list(sweep.strategies)
    headers = ["cell"] + strategies
    rows = []
    for cell in sweep.cells:
        speedups = cell.speedups(baseline)
        rows.append(
            [cell.config.cell_label()]
            + [f"{speedups[strategy]:.2f}x" for strategy in strategies]
        )
    title = f"Speedup over {baseline} across {len(sweep.cells)} cells"
    return f"{title}\n{format_table(headers, rows)}"


def format_best_cells(sweep: SweepResult) -> str:
    """Table of the fastest strategy (and its epoch time) in every cell."""
    rows = []
    for cell in sweep.cells:
        strategy = min(cell.results, key=lambda name: cell.results[name].epoch_time)
        rows.append(
            [cell.config.cell_label(), strategy, f"{cell.results[strategy].epoch_time:.2f}s"]
        )
    return format_table(["cell", "fastest strategy", "epoch time"], rows)
