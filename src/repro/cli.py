"""``python -m repro`` — command-line front door over the Session/cluster APIs.

Six subcommands mirror the levels of the system:

* ``run`` — one (config, strategy) cell on one simulated server,
* ``sweep`` — a grid over batch sizes / GPU counts / datasets / servers /
  tasks / strategies through :meth:`Session.sweep`,
* ``cluster`` — a multi-job workload gang-scheduled onto a fleet under one
  or all placement policies; ``--faults`` / ``--fault-trace`` inject a
  seeded failure scenario (crashes, preemptions, stragglers) and
  ``--elastic`` picks the recovery policy (restart / shrink / migrate),
* ``tune`` — autotune strategy x batch x GPU count x server (and placement
  policy, for throughput objectives) under a simulation budget, emitting a
  Pareto frontier,
* ``serve`` — expose plan/sweep/tune/cluster (plus ``/v1/precompute``
  store warming and health/stats probes) as a versioned HTTP JSON API,
  answering hot queries from the store with zero simulations,
* ``pregen`` — pregenerate the planning tables for a named grid into a
  store artifact (resumable, manifest-stamped, SQLite-indexed) that any
  later session or server boots from without simulating,
* ``cache`` — inspect (``stats``), prune (``gc``), dump (``export``) or
  index (``index``) a persistent experiment store,
* ``profile`` — run a fixed ``run``/``sweep``/``cluster``/``tune``
  workload under a span recorder and emit a per-span timing breakdown
  (plus an optional ``--trace-out`` chrome-trace file for
  ``chrome://tracing`` / Perfetto).

``run``/``sweep``/``cluster``/``tune`` accept ``--store PATH`` (default:
the ``REPRO_STORE`` environment variable) to hydrate results from and
write them through a persistent store, making repeated invocations — even
across processes — perform zero duplicate simulations; ``sweep`` also
accepts ``--backend {inline,thread,process}``.  Store-backed payloads
embed the session's warm/cold summary.

Every subcommand prints a JSON document to stdout (or ``--out FILE``), so
the CLI composes with ``jq``/notebooks the same way the benchmark JSON
artifacts do.  ``--version`` prints the library version and exits; the
global ``--log-level`` / ``--log-json`` flags configure structured
logging for every subcommand (see ``docs/OBSERVABILITY.md``).

Documented in ``docs/TUNING.md`` (tune), ``docs/CACHING.md`` (store and
backends) and the README (run/sweep/cluster).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.cluster_report import compare_policies
from repro.analysis.store_report import (
    format_session_stats,
    format_store_overview,
    store_overview,
    warm_cold_summary,
)
from repro.analysis.sweep import format_sweep_table
from repro.cluster.elastic import ELASTIC_POLICIES
from repro.cluster.faults import FAULT_PRESETS, FaultTrace, parse_fault_spec
from repro.cluster.scheduler import POLICIES
from repro.cluster.spec import cluster_from_shorthand, default_cluster
from repro.cluster.market import PRICE_CURVES, parse_price_curve
from repro.cluster.simulator import run_policy_comparison
from repro.cluster.workload import (
    DEFAULT_MIX,
    Workload,
    arrival_process,
    parse_tenant_shorthand,
    tenant_workload,
)
from repro.core.config import (
    ExperimentConfig,
    VALID_DATASETS,
    VALID_SERVERS,
    VALID_TASKS,
)
from repro.core.session import Session
from repro.errors import ReproError
from repro.obs.logs import configure_logging
from repro.obs.profiler import PROFILE_KINDS, format_breakdown, profile_workload
from repro.store import BACKENDS, ExperimentStore
from repro.version import __version__


def _int_list(text: str) -> List[int]:
    return [int(item) for item in text.split(",") if item]


def _str_list(text: str) -> List[str]:
    return [item for item in text.split(",") if item]


def _emit(payload: dict, out: Optional[str]) -> None:
    text = json.dumps(payload, indent=2)
    if out:
        try:
            Path(out).write_text(text)
        except OSError as error:
            raise ReproError(f"cannot write --out {out!r}: {error}") from error
        print(f"wrote {out}")
    else:
        print(text)


def _session(args: argparse.Namespace) -> Session:
    """A session bound to ``--store`` / ``$REPRO_STORE`` when given."""
    return Session(store=getattr(args, "store", None) or None)


def _store_payload(session: Session) -> dict:
    """Warm/cold summary every store-backed payload embeds.

    Uses the O(#shards) disk summary, not the full record parse — a
    4-second ``run`` against a long-lived store must not pay an
    O(whole-store) tail; ``cache stats`` is the full view.
    """
    payload = {
        "session_stats": session.stats.to_dict(),
        "warm_cold": warm_cold_summary(session),
    }
    if session.store is not None:
        payload["store"] = session.store.disk_summary()
    return payload


def _require_store(args: argparse.Namespace) -> ExperimentStore:
    if not args.store:
        raise ReproError(
            "cache commands need a store: pass --store PATH or set REPRO_STORE"
        )
    # Cache commands operate on an existing store; opening one would mkdir
    # and write meta.json, so a typo'd path would silently materialise an
    # empty store and report "0 records" instead of failing.
    if not (Path(args.store) / "meta.json").exists():
        raise ReproError(
            f"no experiment store at {args.store!r} (meta.json missing); "
            "check the path — stores are created by run/sweep/cluster/tune"
        )
    return ExperimentStore(args.store)


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        task=args.task,
        dataset=args.dataset,
        server=args.server,
        num_gpus=args.num_gpus,
        batch_size=args.batch_size,
        strategy=args.strategy,
        simulated_steps=args.steps,
    )
    session = _session(args)
    result = session.run(config)
    payload = {"config": config.to_dict(), "result": result.to_dict()}
    payload.update(_store_payload(session))
    _emit(payload, args.out)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = ExperimentConfig(
        task=args.task,
        dataset=args.dataset,
        server=args.server,
        num_gpus=args.num_gpus,
        batch_size=args.batch_size,
        simulated_steps=args.steps,
    )
    session = _session(args)
    sweep = session.sweep(
        base,
        batch_sizes=_int_list(args.batch_sizes) if args.batch_sizes else None,
        num_gpus=_int_list(args.gpu_counts) if args.gpu_counts else None,
        datasets=_str_list(args.datasets) if args.datasets else None,
        servers=_str_list(args.servers) if args.servers else None,
        tasks=_str_list(args.tasks) if args.tasks else None,
        strategies=_str_list(args.strategies) if args.strategies else None,
        parallel=args.parallel,
        backend=args.backend,
    )
    if args.table:
        # The default baseline (DP) may not be part of the swept strategy
        # set; fall back to the first swept strategy rather than failing
        # after the whole grid has been computed.
        baseline = (
            args.baseline if args.baseline in sweep.strategies else sweep.strategies[0]
        )
        print(format_sweep_table(sweep, baseline=baseline), file=sys.stderr)
        print(format_session_stats(session.stats), file=sys.stderr)
    payload = sweep.to_dict()
    payload.update(_store_payload(session))
    _emit(payload, args.out)
    return 0


def _load_trace(path: str, loader, what: str):
    """Load a JSON trace file, folding every failure mode into ReproError."""
    try:
        return loader(path)
    except ReproError:
        raise
    except OSError as error:
        raise ReproError(f"cannot read {what} {path!r}: {error}") from error
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(
            f"malformed {what} {path!r}: {error}; expected the JSON shape "
            "written by save()"
        ) from error


def _resolve_cli_faults(args: argparse.Namespace):
    """Coerce --faults / --fault-trace into a fault source (or None)."""
    if args.faults and args.fault_trace:
        raise ReproError(
            "--faults and --fault-trace are mutually exclusive; pass a "
            "generator spec or a concrete trace, not both"
        )
    if args.fault_trace:
        return _load_trace(args.fault_trace, FaultTrace.load, "fault trace")
    if args.faults:
        return parse_fault_spec(args.faults)
    return None


def _cmd_cluster(args: argparse.Namespace) -> int:
    cluster = (
        cluster_from_shorthand(args.nodes) if args.nodes else default_cluster()
    )
    if args.tenants and args.workload:
        raise ReproError(
            "--tenants and --workload are mutually exclusive; workload "
            "traces carry their own tenant roster"
        )
    price_curve = parse_price_curve(args.price_curve)
    if args.workload:
        workload = _load_trace(args.workload, Workload.load, "workload trace")
    elif args.tenants:
        workload = tenant_workload(
            parse_tenant_shorthand(args.tenants),
            args.num_jobs,
            rate=args.rate,
            seed=args.seed,
            deadline_slack=args.deadline_slack,
            diurnal=args.arrival == "diurnal",
        )
    else:
        workload = arrival_process(
            args.arrival,
            args.num_jobs,
            rate=args.rate,
            burst_size=args.burst_size,
            burst_gap=args.burst_gap,
            seed=args.seed,
            mix=DEFAULT_MIX,
        )
    if args.save_workload:
        try:
            workload.save(args.save_workload)
        except OSError as error:
            raise ReproError(
                f"cannot write --save-workload {args.save_workload!r}: {error}"
            ) from error
        print(f"wrote {args.save_workload}", file=sys.stderr)

    faults = _resolve_cli_faults(args)
    policies = tuple(POLICIES.names()) if args.policy == "all" else (args.policy,)
    session = _session(args)
    reports = run_policy_comparison(
        cluster,
        workload,
        policies=policies,
        session=session,
        faults=faults,
        elastic=args.elastic,
        fault_seed=args.fault_seed,
        price_curve=price_curve,
    )
    if args.table:
        print(compare_policies(reports), file=sys.stderr)
    payload = {
        "cluster": cluster.to_dict(),
        "workload": workload.name,
        "reports": {name: report.to_dict() for name, report in reports.items()},
    }
    if workload.tenants:
        payload["tenants"] = [spec.to_dict() for spec in workload.tenants]
    if price_curve is not None:
        payload["price_curve"] = price_curve.name
    if faults is not None:
        payload["faults"] = {
            "spec": (
                {"trace": faults.name}
                if isinstance(faults, FaultTrace)
                else faults.to_dict()
            ),
            "elastic": args.elastic,
            "seed": args.fault_seed,
        }
    payload.update(_store_payload(session))
    _emit(payload, args.out)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.analysis.pareto import format_frontier_table, format_tune_summary
    from repro.tune.objective import MinCostUnderDeadline
    from repro.tune.space import TuneSpace, default_space

    base = default_space()
    clusters = (cluster_from_shorthand(args.nodes),) if args.nodes else ()
    space = TuneSpace(
        strategies=tuple(_str_list(args.strategies)) if args.strategies else base.strategies,
        batch_sizes=tuple(_int_list(args.batch_sizes)) if args.batch_sizes else base.batch_sizes,
        gpu_counts=tuple(_int_list(args.gpu_counts)) if args.gpu_counts else base.gpu_counts,
        servers=tuple(_str_list(args.servers)) if args.servers else base.servers,
        tasks=tuple(_str_list(args.tasks)) if args.tasks else base.tasks,
        datasets=tuple(_str_list(args.datasets)) if args.datasets else base.datasets,
        policies=tuple(_str_list(args.policies)) if args.policies else (),
        clusters=clusters,
    )
    if args.deadline is not None and args.objective != "cost":
        raise ReproError(
            f"--deadline only applies to the 'cost' objective, not "
            f"{args.objective!r}; drop the flag or use --objective cost"
        )
    objective = (
        MinCostUnderDeadline(deadline=args.deadline)
        if args.deadline is not None
        else args.objective
    )
    session = _session(args)
    result = session.tune(
        space,
        objective=objective,
        driver=args.driver,
        budget=args.budget,
        seed=args.seed,
        simulated_steps=args.steps,
        faults=_resolve_cli_faults(args),
        elastic=args.elastic,
        fault_seed=args.fault_seed,
        tenants=args.tenants,
        price_curve=args.price_curve,
        slo_deadline_slack=args.deadline_slack,
    )
    if args.table:
        print(format_tune_summary(result), file=sys.stderr)
        print(format_frontier_table(result), file=sys.stderr)
    payload = result.to_dict()
    payload.update(_store_payload(session))
    _emit(payload, args.out)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.service import PlannerService

    if not (0 <= args.port <= 65535):
        raise ReproError(
            f"serve --port must be 0..65535 (0 picks a free port), got {args.port}"
        )
    if not args.host.strip():
        raise ReproError("serve --host must be a non-empty host name or address")
    service = PlannerService(store=args.store or None, backend=args.backend)

    def announce(frontend: str, port: int) -> None:
        # One machine-readable startup line, then the server blocks; CI and
        # the load harness poll /v1/healthz for readiness.
        print(
            json.dumps(
                {
                    "serving": {
                        "host": args.host,
                        "port": port,
                        "frontend": frontend,
                        "version": __version__,
                        "store": args.store or None,
                        "backend": args.backend,
                        "endpoints": list(service.paths()),
                    }
                }
            ),
            flush=True,
        )

    if args.http in ("auto", "uvicorn"):
        try:
            import uvicorn

            from repro.serve.app import create_app

            app = create_app(service=service)
        except (ImportError, ReproError) as error:
            if args.http == "uvicorn":
                raise ReproError(
                    f"--http uvicorn needs fastapi and uvicorn installed: {error}"
                ) from error
            print(
                f"note: uvicorn/FastAPI unavailable ({error}); "
                "falling back to the stdlib HTTP server",
                file=sys.stderr,
            )
        else:
            announce("uvicorn", args.port)
            try:
                uvicorn.run(app, host=args.host, port=args.port, log_level="warning")
            except OSError as error:
                raise ReproError(
                    f"cannot serve on {args.host}:{args.port}: {error}"
                ) from error
            return 0

    from repro.serve.http import start_server

    try:
        server = start_server(
            service, host=args.host, port=args.port, background=False
        )
    except OSError as error:
        raise ReproError(
            f"cannot bind {args.host}:{args.port}: {error}"
        ) from error
    announce("stdlib", server.bound_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _cmd_pregen(args: argparse.Namespace) -> int:
    from repro.store.pregen import run_pregen

    if not args.store:
        raise ReproError(
            "pregen writes an artifact: pass --store PATH or set REPRO_STORE"
        )
    # Unlike the cache commands, pregen is how an artifact is *born*, so a
    # missing directory is created rather than rejected.
    store = ExperimentStore(args.store)
    report = run_pregen(
        store,
        grid=args.grid,
        backend=args.backend,
        workers=args.workers,
        max_cells=args.max_cells,
        index=not args.no_index,
    )
    _emit(report.to_dict(), args.out)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _require_store(args)
    if args.cache_command == "index":
        from repro.store.index import build_index, drop_index, index_path

        if args.drop:
            drop_index(store)
            payload = {"index": {"dropped": True, "reader": store.reader_name}}
        else:
            rows = build_index(store)
            payload = {
                "index": {
                    "rows": rows,
                    "path": str(index_path(store)),
                    "reader": store.reader_name,
                }
            }
        payload.update(store.disk_summary())
        _emit(payload, args.out)
        return 0
    if args.cache_command == "stats":
        if args.table:
            print(format_store_overview(store), file=sys.stderr)
        _emit(store_overview(store), args.out)
        return 0
    if args.cache_command == "gc":
        if args.max_records is None and args.max_age_days is None:
            raise ReproError(
                "cache gc needs an eviction bound: --max-records and/or "
                "--max-age-days"
            )
        evicted = store.gc(
            max_records=args.max_records,
            max_age_seconds=(
                args.max_age_days * 86400.0 if args.max_age_days is not None else None
            ),
        )
        payload = {"evicted": evicted}
        payload.update(store_overview(store))
        _emit(payload, args.out)
        return 0
    # export (the parser restricts the choices, so this is the only branch left)
    _emit(store.export(), args.out)
    return 0


def _profile_workload_for(args: argparse.Namespace):
    """A zero-argument workload callable for one ``profile`` kind.

    Each workload is a small, fixed, deterministic exercise of the
    corresponding subsystem — big enough for the span breakdown to be
    representative, small enough to finish in seconds.  ``--store``
    applies exactly as for the real subcommands, so profiling against a
    warm store shows the hydration fast path instead of simulations.
    """
    session = _session(args)
    if args.kind == "run":
        config = ExperimentConfig(simulated_steps=args.steps)
        return lambda: session.run(config)
    if args.kind == "sweep":
        base = ExperimentConfig(simulated_steps=args.steps)
        return lambda: session.sweep(
            base,
            batch_sizes=[128, 256],
            num_gpus=[2, 4],
            strategies=["DP", "TR+DPU+AHD"],
        )
    if args.kind == "cluster":
        cluster = default_cluster()
        workload = arrival_process(
            "poisson", 32, rate=0.5, seed=0, mix=DEFAULT_MIX
        )
        return lambda: run_policy_comparison(
            cluster, workload, policies=("fifo",), session=session
        )
    # tune (the parser restricts the choices)
    from repro.tune.space import TuneSpace

    space = TuneSpace(
        strategies=("DP", "TR+DPU+AHD"),
        batch_sizes=(128, 256),
        gpu_counts=(2, 4),
    )
    return lambda: session.tune(
        space, budget=16, seed=0, simulated_steps=args.steps
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    report = profile_workload(args.kind, _profile_workload_for(args))
    if args.trace_out:
        try:
            Path(args.trace_out).write_text(
                json.dumps(report.chrome_trace, indent=2)
            )
        except OSError as error:
            raise ReproError(
                f"cannot write --trace-out {args.trace_out!r}: {error}"
            ) from error
        print(f"wrote {args.trace_out}", file=sys.stderr)
    print(format_breakdown(report), file=sys.stderr)
    _emit(report.to_dict(), args.out)
    return 0


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pipe-BD reproduction: run cells, sweep grids, simulate fleets.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the library version and exit",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="log threshold for the 'repro' logger tree (default: WARNING)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line (machine-readable)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_store_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=os.environ.get("REPRO_STORE"),
            help="persistent experiment store directory (default: $REPRO_STORE); "
            "repeated invocations hydrate from it and simulate nothing twice",
        )

    def add_fault_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--faults",
            help="inject faults: a preset "
            f"({', '.join(sorted(FAULT_PRESETS))}) or 'kind:rate[,...]' with "
            "kind in crash/preempt/straggler (rates in events/sec)",
        )
        sub.add_argument(
            "--fault-trace", help="replay a JSON fault trace instead of generating"
        )
        sub.add_argument(
            "--elastic",
            default="restart",
            help="elastic recovery policy for evicted gangs "
            f"({', '.join(ELASTIC_POLICIES.names())})",
        )
        sub.add_argument(
            "--fault-seed", type=int, default=0, help="seed for fault generation"
        )

    def add_tenant_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--tenants",
            help="tenant roster shorthand 'name:k=v,...;...' with k in "
            "priority/quota/budget/deadline/rate/slack, e.g. "
            "'batch:rate=0.4;prod:priority=2,deadline=strict,rate=0.1'",
        )
        sub.add_argument(
            "--price-curve",
            help="spot-market price curve: a preset "
            f"({', '.join(sorted(PRICE_CURVES))}) or 't:mult,...[@period]'",
        )
        sub.add_argument(
            "--deadline-slack",
            type=float,
            default=900.0,
            help="seconds past arrival that deadline tenants' jobs must "
            "finish by (default: 900)",
        )

    def add_cell_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--task", default="nas", choices=VALID_TASKS)
        sub.add_argument("--dataset", default="cifar10", choices=VALID_DATASETS)
        sub.add_argument("--server", default="a6000", choices=VALID_SERVERS)
        sub.add_argument("--num-gpus", type=int, default=4)
        sub.add_argument("--batch-size", type=int, default=256)
        sub.add_argument("--steps", type=int, default=10, help="simulated steps")
        sub.add_argument("--out", help="write JSON to this file instead of stdout")
        add_store_argument(sub)

    run_parser = subparsers.add_parser("run", help="run one experiment cell")
    add_cell_arguments(run_parser)
    run_parser.add_argument("--strategy", default="TR+DPU+AHD")
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser("sweep", help="sweep a grid of cells")
    add_cell_arguments(sweep_parser)
    sweep_parser.add_argument("--batch-sizes", help="comma list, e.g. 128,256")
    sweep_parser.add_argument("--gpu-counts", help="comma list, e.g. 2,4")
    sweep_parser.add_argument("--datasets", help="comma list")
    sweep_parser.add_argument("--servers", help="comma list")
    sweep_parser.add_argument("--tasks", help="comma list")
    sweep_parser.add_argument("--strategies", help="comma list, e.g. DP,TR+DPU+AHD")
    sweep_parser.add_argument("--baseline", default="DP")
    sweep_parser.add_argument(
        "--parallel", action="store_true", help="shorthand for --backend thread"
    )
    sweep_parser.add_argument(
        "--backend",
        choices=BACKENDS.names(),
        help="execution backend for sweep cells (default: inline)",
    )
    sweep_parser.add_argument(
        "--table", action="store_true", help="also print a speedup table to stderr"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    cluster_parser = subparsers.add_parser(
        "cluster", help="gang-schedule a multi-job workload onto a fleet"
    )
    cluster_parser.add_argument(
        "--nodes",
        help="cluster shorthand, e.g. a6000:4,a6000:4,2080ti:4 (default: 4-node fleet)",
    )
    cluster_parser.add_argument(
        "--policy",
        default="all",
        help=f"placement policy ({', '.join(POLICIES.names())}) or 'all'",
    )
    cluster_parser.add_argument("--num-jobs", type=int, default=200)
    cluster_parser.add_argument(
        "--arrival", default="poisson", choices=("poisson", "bursty", "diurnal")
    )
    cluster_parser.add_argument("--rate", type=float, default=0.5, help="jobs/sec (poisson)")
    cluster_parser.add_argument("--burst-size", type=int, default=8)
    cluster_parser.add_argument("--burst-gap", type=float, default=120.0)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--workload", help="replay a JSON workload trace")
    cluster_parser.add_argument("--save-workload", help="save the generated workload")
    add_tenant_arguments(cluster_parser)
    add_fault_arguments(cluster_parser)
    cluster_parser.add_argument(
        "--table", action="store_true", help="also print the comparison table to stderr"
    )
    cluster_parser.add_argument("--out", help="write JSON to this file instead of stdout")
    add_store_argument(cluster_parser)
    cluster_parser.set_defaults(handler=_cmd_cluster)

    from repro.tune.drivers import DRIVERS
    from repro.tune.objective import OBJECTIVES

    tune_parser = subparsers.add_parser(
        "tune", help="autotune strategy/batch/GPU/server under a simulation budget"
    )
    tune_parser.add_argument(
        "--objective",
        default="epoch_time",
        choices=OBJECTIVES.names(),
        help="what to optimise",
    )
    tune_parser.add_argument(
        "--driver",
        default="successive-halving",
        choices=DRIVERS.names(),
        help="search driver",
    )
    tune_parser.add_argument(
        "--budget", type=int, default=64, help="max discrete-event simulations"
    )
    tune_parser.add_argument("--seed", type=int, default=0)
    tune_parser.add_argument("--steps", type=int, default=10, help="full-fidelity steps")
    tune_parser.add_argument("--strategies", help="comma list, e.g. DP,TR+DPU+AHD")
    tune_parser.add_argument("--batch-sizes", help="comma list, e.g. 128,256,512")
    tune_parser.add_argument("--gpu-counts", help="comma list, e.g. 2,4")
    tune_parser.add_argument("--servers", help="comma list, e.g. a6000,2080ti")
    tune_parser.add_argument("--tasks", help="comma list")
    tune_parser.add_argument("--datasets", help="comma list")
    tune_parser.add_argument(
        "--policies",
        help="comma list of placement policies (required for jobs_per_hour)",
    )
    tune_parser.add_argument(
        "--nodes", help="cluster shorthand for throughput probes, e.g. a6000:4,2080ti:4"
    )
    tune_parser.add_argument(
        "--deadline",
        type=float,
        help="epoch-time deadline in seconds (cost objective only)",
    )
    add_tenant_arguments(tune_parser)
    add_fault_arguments(tune_parser)
    tune_parser.add_argument(
        "--table", action="store_true", help="also print the frontier table to stderr"
    )
    tune_parser.add_argument("--out", help="write JSON to this file instead of stdout")
    add_store_argument(tune_parser)
    tune_parser.set_defaults(handler=_cmd_tune)

    serve_parser = subparsers.add_parser(
        "serve", help="serve the planner as a versioned HTTP JSON API"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8023, help="bind port (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--backend",
        default="inline",
        choices=BACKENDS.names(),
        help="execution backend for sweep/precompute cells (default: inline)",
    )
    serve_parser.add_argument(
        "--http",
        default="auto",
        choices=("auto", "uvicorn", "stdlib"),
        help="HTTP frontend: uvicorn+FastAPI when installed, stdlib fallback "
        "otherwise (default: auto)",
    )
    add_store_argument(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    from repro.store.pregen import GRIDS

    pregen_parser = subparsers.add_parser(
        "pregen",
        help="pregenerate the planning tables for a named grid into a store "
        "artifact (resumable; stamps manifest.json and the SQLite index)",
    )
    pregen_parser.add_argument(
        "--grid",
        default="canonical",
        choices=sorted(GRIDS),
        help="named grid to sweep (default: canonical)",
    )
    pregen_parser.add_argument(
        "--backend",
        default="inline",
        choices=BACKENDS.names(),
        help="execution backend for grid cells (default: inline)",
    )
    pregen_parser.add_argument(
        "--workers", type=int, help="pool size for the thread/process backends"
    )
    pregen_parser.add_argument(
        "--max-cells",
        type=int,
        help="simulate at most this many missing cells (partial artifact; "
        "a later run resumes the remainder)",
    )
    pregen_parser.add_argument(
        "--no-index",
        action="store_true",
        help="skip building the SQLite read index after the sweep",
    )
    pregen_parser.add_argument(
        "--out", help="write the report JSON to this file instead of stdout"
    )
    add_store_argument(pregen_parser)
    pregen_parser.set_defaults(handler=_cmd_pregen)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, prune or dump a persistent experiment store"
    )
    cache_subparsers = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    stats_parser = cache_subparsers.add_parser(
        "stats", help="record counts, disk usage and warm/cold hit rates"
    )
    stats_parser.add_argument(
        "--table", action="store_true", help="also print a summary table to stderr"
    )
    gc_parser = cache_subparsers.add_parser(
        "gc", help="evict old / excess records and purge quarantined lines"
    )
    gc_parser.add_argument(
        "--max-records", type=int, help="keep at most this many newest records"
    )
    gc_parser.add_argument(
        "--max-age-days", type=float, help="drop records older than this many days"
    )
    export_parser = cache_subparsers.add_parser(
        "export", help="dump every record as one JSON document"
    )
    index_parser = cache_subparsers.add_parser(
        "index", help="(re)build or drop the SQLite read index"
    )
    index_parser.add_argument(
        "--drop", action="store_true", help="delete the index instead of building"
    )
    for sub in (stats_parser, gc_parser, export_parser, index_parser):
        add_store_argument(sub)
        sub.add_argument("--out", help="write JSON to this file instead of stdout")
    cache_parser.set_defaults(handler=_cmd_cache)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile a fixed workload and print a per-span timing breakdown",
    )
    profile_parser.add_argument(
        "kind",
        choices=PROFILE_KINDS,
        help="which subsystem workload to profile",
    )
    profile_parser.add_argument(
        "--steps", type=int, default=10, help="simulated steps per cell"
    )
    profile_parser.add_argument(
        "--trace-out",
        help="also write a chrome-trace JSON file (chrome://tracing, Perfetto)",
    )
    profile_parser.add_argument(
        "--out", help="write the report JSON to this file instead of stdout"
    )
    add_store_argument(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level, json_format=args.log_json)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (head, jq -e, ...) closed the pipe early; the
        # run itself succeeded.  Detach stdout so the interpreter does not
        # print a second BrokenPipeError while flushing at shutdown.
        devnull = open(os.devnull, "w")
        os.dup2(devnull.fileno(), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
