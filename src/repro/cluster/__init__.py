"""Cluster layer: multi-job workloads gang-scheduled onto a simulated fleet.

Pipe-BD schedules blocks *within* one job on one server; this package adds
the queueing layer above it — heterogeneous fleets (:mod:`~repro.cluster.spec`),
deterministic multi-job workload generation and trace replay
(:mod:`~repro.cluster.workload`), pluggable gang-placement policies
(:mod:`~repro.cluster.scheduler`) and the event-driven fleet simulator
(:mod:`~repro.cluster.simulator`).  Faults and elasticity ride on top:
seeded fault models, JSON fault-trace replay and the checkpoint/restart
cost model (:mod:`~repro.cluster.faults`) plus pluggable elastic
rescheduling policies (:mod:`~repro.cluster.elastic`).  Multi-tenancy
adds tenant specs with quotas/priorities/deadline policies and tenant
workload generators (:mod:`~repro.cluster.workload`), tenant-aware
placement policies with voluntary preemption
(:mod:`~repro.cluster.scheduler`) and spot-market pricing
(:mod:`~repro.cluster.market`).  Fleet-level analytics live in
:mod:`repro.analysis.cluster_report`.

Documented in ``docs/API.md`` (cluster layer), ``docs/ARCHITECTURE.md``,
``docs/FAULTS.md`` and ``docs/TENANTS.md``.
"""

from repro.cluster.elastic import (
    ELASTIC_POLICIES,
    ElasticDecision,
    ReschedulePolicy,
    register_elastic_policy,
)
from repro.cluster.faults import (
    FAULT_PRESETS,
    FaultEvent,
    FaultModel,
    FaultTrace,
    RecoveryModel,
    parse_fault_spec,
    recovery_fraction,
    strategy_is_decoupled,
)
from repro.cluster.spec import (
    ClusterSpec,
    NodeSpec,
    cluster_from_shorthand,
    default_cluster,
)
from repro.cluster.market import (
    GPU_HOURLY_RATES,
    PRICE_CURVES,
    PriceCurve,
    gpu_cost,
    parse_price_curve,
)
from repro.cluster.workload import (
    DEFAULT_MIX,
    JobMix,
    JobSpec,
    TenantSpec,
    Workload,
    arrival_process,
    bursty_workload,
    diurnal_workload,
    parse_tenant_shorthand,
    poisson_workload,
    replay_workload,
    tenant_workload,
)
from repro.cluster.scheduler import (
    POLICIES,
    Placement,
    PlacementPolicy,
    PolicyRegistry,
    SchedulingContext,
    register_policy,
)
from repro.cluster.simulator import ClusterSimulator, run_policy_comparison

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "cluster_from_shorthand",
    "default_cluster",
    "DEFAULT_MIX",
    "JobMix",
    "JobSpec",
    "TenantSpec",
    "Workload",
    "arrival_process",
    "bursty_workload",
    "diurnal_workload",
    "parse_tenant_shorthand",
    "poisson_workload",
    "replay_workload",
    "tenant_workload",
    "GPU_HOURLY_RATES",
    "PRICE_CURVES",
    "PriceCurve",
    "gpu_cost",
    "parse_price_curve",
    "POLICIES",
    "Placement",
    "PlacementPolicy",
    "PolicyRegistry",
    "SchedulingContext",
    "register_policy",
    "ClusterSimulator",
    "run_policy_comparison",
    "ELASTIC_POLICIES",
    "ElasticDecision",
    "ReschedulePolicy",
    "register_elastic_policy",
    "FAULT_PRESETS",
    "FaultEvent",
    "FaultModel",
    "FaultTrace",
    "RecoveryModel",
    "parse_fault_spec",
    "recovery_fraction",
    "strategy_is_decoupled",
]
