"""Elastic rescheduling policies: what happens to a gang a fault evicts.

When a fault interrupts a running job the simulator asks an *elastic
policy* where that job's remaining work should go.  Policies are pluggable
through :data:`ELASTIC_POLICIES`, a registry mirroring the placement and
strategy registries — register a custom policy with
:func:`register_elastic_policy` and every simulator, objective and CLI
entry point can use it by name.  Three built-ins cover the classic
recovery trade-offs:

* ``"restart"`` — requeue the full gang; it competes for placement like a
  fresh arrival and pays the restart overhead when it lands.  Simple,
  but a burst of evictions stampedes the queue.
* ``"shrink"`` — continue *immediately* on the evicted node's surviving
  GPUs with a re-partitioned (smaller) gang, paying only the
  re-partition overhead.  The paper's block-partitioned strategies make
  this natural: a pipeline over N devices re-cuts to N' < N surviving
  devices without restarting training.
* ``"migrate"`` — move the full gang to the tightest-fitting *other* node
  right away, paying the migration overhead; fall back to the queue when
  no node fits.

A policy returns an :class:`ElasticDecision`; decisions that cannot be
honoured (e.g. continuing on a node with no free GPUs) are invalid and the
simulator rejects them loudly, exactly as it rejects overcommitting
placement policies.

Documented in ``docs/FAULTS.md`` and ``docs/API.md`` (cluster layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Protocol, runtime_checkable

from repro.cluster.spec import ClusterSpec
from repro.cluster.workload import JobSpec
from repro.errors import ConfigurationError
from repro.registry import NamedRegistry, make_register


@dataclass(frozen=True)
class ElasticDecision:
    """One recovery decision for one evicted gang.

    ``action`` is ``"queue"`` (rejoin the pending queue, full gang) or
    ``"continue"`` (resume immediately on ``node`` with ``gpus`` devices).

    Example:
        >>> from repro.cluster.elastic import ElasticDecision
        >>> ElasticDecision(action="continue", node="a6000-0", gpus=2).gpus
        2
    """

    action: str
    node: Optional[str] = None
    gpus: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("queue", "continue"):
            raise ConfigurationError(
                f"elastic decision action must be 'queue' or 'continue', "
                f"got {self.action!r}"
            )
        if self.action == "continue":
            if not self.node:
                raise ConfigurationError("'continue' decisions must name a node")
            if self.gpus is None or self.gpus < 1:
                raise ConfigurationError(
                    f"'continue' decisions need gpus >= 1, got {self.gpus}"
                )


@runtime_checkable
class ReschedulePolicy(Protocol):
    """A pluggable elastic-recovery policy.

    ``reschedule`` receives the evicted job, the node it was running on,
    the *current* free-GPU map (post-fault, in cluster order) and the
    cluster spec; it returns where the job's remaining work goes.
    """

    name: str

    def reschedule(
        self,
        job: JobSpec,
        lost_node: str,
        free_gpus: Mapping[str, int],
        cluster: ClusterSpec,
    ) -> ElasticDecision:
        """Decide how one evicted gang recovers."""
        ...


class ElasticRegistry(NamedRegistry[ReschedulePolicy]):
    """Ordered name -> :class:`ReschedulePolicy` mapping with validation."""

    kind = "elastic policy"
    kind_plural = "elastic policies"

    def validate(self, name: str, policy: ReschedulePolicy) -> None:
        if not callable(getattr(policy, "reschedule", None)):
            raise ConfigurationError(
                f"elastic policy {name!r} must expose a callable 'reschedule'"
            )


#: The process-wide elastic-policy registry.
ELASTIC_POLICIES = ElasticRegistry()

#: Register an elastic policy class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_elastic_policy = make_register(ELASTIC_POLICIES)


def resolve_elastic(policy) -> ReschedulePolicy:
    """Accept an elastic policy by registry name or as a duck-typed instance."""
    if isinstance(policy, str):
        return ELASTIC_POLICIES.get(policy)
    ELASTIC_POLICIES.validate(getattr(policy, "name", "<anonymous>"), policy)
    return policy


# ---------------------------------------------------------------------- #
# Built-in policies
# ---------------------------------------------------------------------- #
@register_elastic_policy
class RestartPolicy:
    """Requeue the full gang; it is placed again like a fresh arrival."""

    name = "restart"

    def reschedule(self, job, lost_node, free_gpus, cluster) -> ElasticDecision:
        return ElasticDecision(action="queue")


@register_elastic_policy
class ShrinkPolicy:
    """Continue on the evicted node's surviving GPUs via re-partition.

    The gang shrinks to ``min(job.gpus, free GPUs on the node)``; when the
    node has no survivors (a whole-node outage) the job falls back to the
    queue with its full gang, exactly as ``restart`` would.
    """

    name = "shrink"

    def reschedule(self, job, lost_node, free_gpus, cluster) -> ElasticDecision:
        survivors = free_gpus.get(lost_node, 0)
        if survivors < 1:
            return ElasticDecision(action="queue")
        return ElasticDecision(
            action="continue", node=lost_node, gpus=min(job.gpus, survivors)
        )


@register_elastic_policy
class MigratePolicy:
    """Move the full gang to the tightest-fitting other node immediately."""

    name = "migrate"

    def reschedule(self, job, lost_node, free_gpus, cluster) -> ElasticDecision:
        best: Optional[str] = None
        best_leftover: Optional[int] = None
        for node, free in free_gpus.items():
            if node == lost_node or free < job.gpus:
                continue
            leftover = free - job.gpus
            if best_leftover is None or leftover < best_leftover:
                best, best_leftover = node, leftover
        if best is None:
            return ElasticDecision(action="queue")
        return ElasticDecision(action="continue", node=best, gpus=job.gpus)
