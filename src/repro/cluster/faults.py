"""Fault models: seeded failure injection and recovery-cost accounting.

Real fleets serving heavy traffic are never perfectly reliable — nodes
crash, cloud schedulers preempt spot capacity, and stragglers silently run
hot paths at half speed.  This module gives the cluster simulator a
first-class, *deterministic* vocabulary for all three:

* :class:`FaultEvent` — one concrete incident (``crash`` / ``preempt`` /
  ``straggler``) pinned to a node and a simulated time;
* :class:`FaultTrace` — an ordered, JSON-serialisable sequence of events,
  so real or hand-crafted incident logs replay through the exact same
  simulator path as generated ones (mirroring
  :meth:`~repro.cluster.workload.Workload.load`);
* :class:`FaultModel` — a seeded generator drawing fault arrivals from a
  Poisson (memoryless) or Weibull (bursty, ``shape < 1``) process and
  materialising them into a concrete trace;
* :class:`RecoveryModel` — the checkpoint/restart cost model, parameterised
  per strategy: *decoupled* strategies (DPU/LS-style independent
  sub-pipelines) lose only the failed rank's progress since its own
  checkpoint, while synchronous strategies must replay the whole gang's
  critical path since the last global checkpoint.

Everything here is pure data + seeded ``random.Random`` — the same model,
cluster and seed always produce a byte-identical trace, which is what the
golden regression tests under ``tests/cluster/traces/`` pin.

Documented in ``docs/FAULTS.md``.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.parallel.registry import REGISTRY

#: The fault kinds the simulator understands.
FAULT_KINDS: Tuple[str, ...] = ("crash", "preempt", "straggler")

#: Strategies whose sub-pipelines recover independently when the registry
#: member predates the ``decoupled_recovery`` attribute (fallback only).
_DECOUPLED_FALLBACK = frozenset({"LS", "TR+DPU", "TR+IR", "TR+DPU+AHD"})


def strategy_is_decoupled(strategy: str) -> bool:
    """Whether a strategy's sub-pipelines checkpoint and recover independently.

    Consults the registered strategy's ``decoupled_recovery`` attribute
    (all built-ins declare it); strategies registered without one fall back
    to a conservative name-based table, defaulting to coupled.

    Example:
        >>> from repro.cluster.faults import strategy_is_decoupled
        >>> strategy_is_decoupled("TR+DPU+AHD"), strategy_is_decoupled("DP")
        (True, False)
    """
    member = REGISTRY.get(strategy)
    declared = getattr(member, "decoupled_recovery", None)
    if isinstance(declared, bool):
        return declared
    return strategy in _DECOUPLED_FALLBACK


def recovery_fraction(strategy: str, gpus: int) -> float:
    """Fraction of since-checkpoint progress a fault destroys.

    A synchronous gang (DP, plain TR) replays its whole critical path from
    the last global checkpoint, so the fraction is ``1.0``.  A decoupled
    gang (DPU, LS, IR) re-runs only the failed rank's sub-pipeline — its
    peers resume from their own checkpoints — so the fraction shrinks with
    the gang size.

    Example:
        >>> from repro.cluster.faults import recovery_fraction
        >>> recovery_fraction("DP", 4), recovery_fraction("TR+DPU+AHD", 4)
        (1.0, 0.25)
    """
    if gpus < 1:
        raise ConfigurationError(f"recovery fraction needs gpus >= 1, got {gpus}")
    if strategy_is_decoupled(strategy):
        return 1.0 / gpus
    return 1.0


@dataclass(frozen=True)
class FaultEvent:
    """One concrete incident on one node at one simulated instant.

    ``gpus`` is the number of GPUs affected (``None`` = the whole node);
    ``duration`` is the outage length for ``preempt`` and the slowdown
    window for ``straggler``; ``factor`` is the straggler's slowdown
    multiplier (``2.0`` = half speed).

    Example:
        >>> from repro.cluster.faults import FaultEvent
        >>> FaultEvent(time=30.0, kind="preempt", node="a6000-0",
        ...            gpus=2, duration=120.0).kind
        'preempt'
    """

    time: float
    kind: str
    node: str
    gpus: Optional[int] = None
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: {FAULT_KINDS}"
            )
        if not self.node:
            raise ConfigurationError("fault node must be non-empty")
        if self.gpus is not None and self.gpus < 1:
            raise ConfigurationError(
                f"fault gpus must be >= 1 (or None for the whole node), "
                f"got {self.gpus}"
            )
        if self.kind in ("preempt", "straggler") and self.duration <= 0:
            raise ConfigurationError(
                f"{self.kind} faults need a duration > 0, got {self.duration}"
            )
        if self.kind == "straggler" and self.factor <= 1.0:
            raise ConfigurationError(
                f"straggler factor must be > 1.0 (a slowdown), got {self.factor}"
            )

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "gpus": self.gpus,
            "duration": self.duration,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(
            time=float(payload["time"]),
            kind=payload["kind"],
            node=payload["node"],
            gpus=(int(payload["gpus"]) if payload.get("gpus") is not None else None),
            duration=float(payload.get("duration", 0.0)),
            factor=float(payload.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultTrace:
    """A time-ordered incident log the simulator replays deterministically.

    Example:
        >>> from repro.cluster.faults import FaultEvent, FaultTrace
        >>> trace = FaultTrace(name="demo", events=(
        ...     FaultEvent(time=10.0, kind="crash", node="a6000-0", gpus=2),))
        >>> FaultTrace.from_json(trace.to_json()) == trace
        True
    """

    name: str
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if times != sorted(times):
            raise ConfigurationError(
                f"fault trace {self.name!r} events must be sorted by time"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def describe(self) -> str:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(counts.items()))
        return f"{self.name}: {len(self.events)} events ({parts or 'none'})"

    # ------------------------------------------------------------------ #
    # JSON replay (mirrors Workload.save/load)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {"name": self.name, "events": [event.to_dict() for event in self.events]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultTrace":
        events = sorted(
            (FaultEvent.from_dict(event) for event in payload["events"]),
            key=lambda event: event.time,
        )
        return cls(name=payload.get("name", "trace"), events=tuple(events))

    @classmethod
    def from_json(cls, text: str) -> "FaultTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "FaultTrace":
        return cls.from_json(Path(path).read_text())


@dataclass(frozen=True)
class FaultModel:
    """A seeded fault-arrival generator over a cluster.

    Rates are fleet-wide events per simulated second; each kind with a
    positive rate draws its own arrival process (``arrival="poisson"`` for
    memoryless exponential gaps, ``"weibull"`` for bursty clustered
    arrivals when ``weibull_shape < 1``) and lands each event on a node
    drawn uniformly from the fleet.  The same model, cluster, horizon and
    seed always produce the same trace.

    Example:
        >>> from repro.cluster.faults import FaultModel
        >>> from repro.cluster.spec import default_cluster
        >>> model = FaultModel(preempt_rate=0.01)
        >>> first = model.trace(default_cluster(), horizon=500.0, seed=7)
        >>> second = model.trace(default_cluster(), horizon=500.0, seed=7)
        >>> first == second
        True
    """

    name: str = "custom"
    crash_rate: float = 0.0
    preempt_rate: float = 0.0
    straggler_rate: float = 0.0
    crash_gpus: Optional[int] = None
    preempt_gpus: Optional[int] = None
    preempt_duration: float = 120.0
    straggler_factor: float = 2.0
    straggler_duration: float = 180.0
    arrival: str = "poisson"
    weibull_shape: float = 0.7
    #: Seconds past the last workload arrival the generated trace covers
    #: (service tails keep the fleet busy after arrivals stop).
    horizon_slack: float = 3600.0

    def __post_init__(self) -> None:
        for rate_name in ("crash_rate", "preempt_rate", "straggler_rate"):
            if getattr(self, rate_name) < 0:
                raise ConfigurationError(f"{rate_name} must be >= 0")
        if self.arrival not in ("poisson", "weibull"):
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                "known: 'poisson', 'weibull'"
            )
        if self.weibull_shape <= 0:
            raise ConfigurationError("weibull_shape must be > 0")
        if self.preempt_duration <= 0 or self.straggler_duration <= 0:
            raise ConfigurationError("fault durations must be > 0")
        if self.straggler_factor <= 1.0:
            raise ConfigurationError("straggler_factor must be > 1.0")
        if self.horizon_slack < 0:
            raise ConfigurationError("horizon_slack must be >= 0")

    @property
    def total_rate(self) -> float:
        return self.crash_rate + self.preempt_rate + self.straggler_rate

    def _gaps(self, rng: random.Random, rate: float) -> Iterator[float]:
        """Inter-arrival gaps at ``rate`` events/sec for this model's process."""
        if self.arrival == "poisson":
            while True:
                yield rng.expovariate(rate)
        else:
            # Weibull gaps with the same mean as the exponential at `rate`:
            # scale = mean / Gamma(1 + 1/shape); shape < 1 clusters events.
            scale = (1.0 / rate) / math.gamma(1.0 + 1.0 / self.weibull_shape)
            while True:
                yield rng.weibullvariate(scale, self.weibull_shape)

    def trace(self, cluster, horizon: float, seed: int = 0) -> FaultTrace:
        """Materialise a concrete trace over ``[0, horizon)`` seconds.

        ``cluster`` is a :class:`~repro.cluster.spec.ClusterSpec`; events
        land on its nodes uniformly at random (seeded).  Kinds are
        generated in a fixed order and merge-sorted by time with a stable
        tie-break, so the trace is deterministic.
        """
        if horizon <= 0:
            raise ConfigurationError(f"fault horizon must be > 0, got {horizon}")
        node_names = [node.name for node in cluster.nodes]
        events = []
        kinds = (
            ("crash", self.crash_rate),
            ("preempt", self.preempt_rate),
            ("straggler", self.straggler_rate),
        )
        for kind, rate in kinds:
            if rate <= 0:
                continue
            # String seeds hash deterministically (sha512) across processes;
            # tuple seeds would fall back to PYTHONHASHSEED-salted hash().
            rng = random.Random(f"{seed}:{kind}:{self.name}")
            now = 0.0
            for gap in self._gaps(rng, rate):
                now += gap
                if now >= horizon:
                    break
                node = rng.choice(node_names)
                if kind == "crash":
                    events.append(
                        FaultEvent(time=now, kind=kind, node=node, gpus=self.crash_gpus)
                    )
                elif kind == "preempt":
                    events.append(
                        FaultEvent(
                            time=now,
                            kind=kind,
                            node=node,
                            gpus=self.preempt_gpus,
                            duration=self.preempt_duration,
                        )
                    )
                else:
                    events.append(
                        FaultEvent(
                            time=now,
                            kind=kind,
                            node=node,
                            duration=self.straggler_duration,
                            factor=self.straggler_factor,
                        )
                    )
        events.sort(key=lambda event: (event.time, event.kind, event.node))
        return FaultTrace(
            name=f"{self.name}(seed={seed}, horizon={horizon:g})",
            events=tuple(events),
        )

    def to_dict(self) -> dict:
        """JSON view of every generation parameter (store keys embed this)."""
        return {
            "name": self.name,
            "crash_rate": self.crash_rate,
            "preempt_rate": self.preempt_rate,
            "straggler_rate": self.straggler_rate,
            "crash_gpus": self.crash_gpus,
            "preempt_gpus": self.preempt_gpus,
            "preempt_duration": self.preempt_duration,
            "straggler_factor": self.straggler_factor,
            "straggler_duration": self.straggler_duration,
            "arrival": self.arrival,
            "weibull_shape": self.weibull_shape,
            "horizon_slack": self.horizon_slack,
        }


#: Named fault scenarios usable anywhere a model is accepted (CLI ``--faults``).
FAULT_PRESETS: Dict[str, FaultModel] = {
    # Clustered partial-node spot reclaims: the scenario where elastic
    # `shrink` shines, because half the node always survives the reclaim.
    # Rates are deliberately aggressive (one reclaim per ~50 fleet-seconds)
    # so the scenario bites even on short simulated makespans.
    "bursty-preemption": FaultModel(
        name="bursty-preemption",
        preempt_rate=0.02,
        preempt_gpus=2,
        preempt_duration=300.0,
        arrival="weibull",
        weibull_shape=0.6,
    ),
    # Rare but permanent whole-node losses plus occasional slow nodes.
    "flaky-fleet": FaultModel(
        name="flaky-fleet",
        crash_rate=0.0005,
        straggler_rate=0.002,
        straggler_factor=2.0,
        straggler_duration=300.0,
    ),
}


def parse_fault_spec(spec: str) -> FaultModel:
    """Parse a CLI fault spec: a preset name or ``kind:rate[,kind:rate...]``.

    Example:
        >>> from repro.cluster.faults import parse_fault_spec
        >>> parse_fault_spec("bursty-preemption").preempt_gpus
        2
        >>> parse_fault_spec("crash:0.01,straggler:0.002").crash_rate
        0.01
    """
    spec = spec.strip()
    if not spec:
        raise ConfigurationError("empty fault spec")
    if spec in FAULT_PRESETS:
        return FAULT_PRESETS[spec]
    rates: Dict[str, float] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        kind, sep, rate_text = entry.partition(":")
        if not sep or kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"bad fault spec entry {entry!r}; use a preset "
                f"({sorted(FAULT_PRESETS)}) or '<kind>:<rate>' with kind in "
                f"{FAULT_KINDS}"
            )
        try:
            rate = float(rate_text)
        except ValueError:
            raise ConfigurationError(
                f"bad fault rate in spec entry {entry!r}"
            ) from None
        if rate <= 0:
            raise ConfigurationError(f"fault rate must be > 0 in entry {entry!r}")
        if kind in rates:
            raise ConfigurationError(f"duplicate fault kind {kind!r} in spec")
        rates[kind] = rate
    if not rates:
        raise ConfigurationError(f"fault spec {spec!r} names no kinds")
    return FaultModel(
        name=spec,
        crash_rate=rates.get("crash", 0.0),
        preempt_rate=rates.get("preempt", 0.0),
        straggler_rate=rates.get("straggler", 0.0),
    )


@dataclass(frozen=True)
class RecoveryModel:
    """Checkpoint/restart costs the simulator charges on every interruption.

    ``checkpoint_interval`` is the cadence (in nominal service seconds) at
    which a running gang persists progress; on a fault the work since the
    last checkpoint is destroyed, scaled by :func:`recovery_fraction` —
    decoupled strategies lose only the failed rank's slice.  The three
    overheads are the fixed setup costs of each elastic action, charged as
    extra service time on the recovering attempt.

    Example:
        >>> from repro.cluster.faults import RecoveryModel
        >>> model = RecoveryModel(checkpoint_interval=100.0)
        >>> model.lost_seconds("DP", gpus=4, progressed=250.0)
        50.0
        >>> model.lost_seconds("TR+DPU+AHD", gpus=4, progressed=250.0)
        12.5
    """

    checkpoint_interval: float = 300.0
    restart_overhead: float = 30.0
    repartition_overhead: float = 10.0
    migration_overhead: float = 20.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be > 0")
        for name in ("restart_overhead", "repartition_overhead", "migration_overhead"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def lost_seconds(self, strategy: str, gpus: int, progressed: float) -> float:
        """Nominal service seconds destroyed by a fault after ``progressed``."""
        if progressed <= 0:
            return 0.0
        since_checkpoint = progressed % self.checkpoint_interval
        return recovery_fraction(strategy, gpus) * since_checkpoint

    def overhead(self, action: str) -> float:
        """Fixed recovery overhead (nominal seconds) of one elastic action."""
        overheads = {
            "restart": self.restart_overhead,
            "shrink": self.repartition_overhead,
            "migrate": self.migration_overhead,
        }
        if action not in overheads:
            raise ConfigurationError(
                f"unknown recovery action {action!r}; known: {sorted(overheads)}"
            )
        return overheads[action]

    def to_dict(self) -> dict:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "restart_overhead": self.restart_overhead,
            "repartition_overhead": self.repartition_overhead,
            "migration_overhead": self.migration_overhead,
        }


def resolve_faults(
    faults, cluster, workload, seed: int = 0
) -> Optional[FaultTrace]:
    """Coerce a fault argument (trace, model, spec string or None) to a trace.

    Models materialise over a horizon of the workload's arrival span plus
    the model's ``horizon_slack``, so the injection window deterministically
    covers the service tail.
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        faults = parse_fault_spec(faults)
    if isinstance(faults, FaultModel):
        horizon = workload.duration + faults.horizon_slack
        return faults.trace(cluster, horizon=horizon, seed=seed)
    if isinstance(faults, FaultTrace):
        return faults
    raise ConfigurationError(
        f"faults must be a FaultTrace, FaultModel, spec string or None, "
        f"got {type(faults).__name__}"
    )
