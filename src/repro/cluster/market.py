"""Spot-market pricing for simulated fleets.

Production GPU fleets rarely pay a flat rate: spot markets reprice
capacity hour by hour, and cost-aware planners exploit the troughs.
This module models that with :class:`PriceCurve` — a deterministic step
function mapping simulation time to a $/GPU-hour *multiplier* over the
per-server base rates in :data:`GPU_HOURLY_RATES`.  The cluster
simulator integrates the curve over every attempt's wall-clock span to
charge each job its exact spot cost, which feeds the ``cost_per_job``
SLO analytics and tune objectives.

Curves are pure data (tuples of ``(start_second, multiplier)`` break
points), so they hash into store keys and replay byte-identically.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import ConfigurationError

#: Cloud-style hourly rates per server class (USD per GPU-hour) at a 1.0
#: multiplier.  Shared with the tune cost objectives.
GPU_HOURLY_RATES: Dict[str, float] = {
    "a6000": 1.10,
    "2080ti": 0.35,
}


@dataclass(frozen=True)
class PriceCurve:
    """A right-continuous step function of price multipliers over time.

    ``points`` holds ``(start_second, multiplier)`` break points; the
    first must start at 0 and times must strictly increase.  With a
    ``period`` the curve repeats (spot markets cycle daily); without
    one the final multiplier holds forever.
    """

    name: str
    points: Tuple[Tuple[float, float], ...]
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("price curve name must be non-empty")
        if not self.points:
            raise ConfigurationError("price curve needs at least one point")
        times = [float(t) for t, _ in self.points]
        if times[0] != 0.0:
            raise ConfigurationError(
                f"price curve {self.name!r} must start at t=0, got t={times[0]}"
            )
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                f"price curve {self.name!r} break points must strictly increase"
            )
        if any(float(m) <= 0.0 for _, m in self.points):
            raise ConfigurationError(
                f"price curve {self.name!r} multipliers must be positive"
            )
        if self.period is not None and float(self.period) <= times[-1]:
            raise ConfigurationError(
                f"price curve {self.name!r} period must exceed its last break point"
            )

    @property
    def _times(self) -> Tuple[float, ...]:
        return tuple(float(t) for t, _ in self.points)

    def multiplier_at(self, t: float) -> float:
        """The multiplier in effect at simulation time ``t`` (>= 0)."""
        if t < 0.0:
            raise ConfigurationError(f"price lookup at negative time {t}")
        if self.period is not None:
            t = t % self.period
        index = bisect_right(self._times, t) - 1
        return float(self.points[max(index, 0)][1])

    def _span_integral(self, start: float, end: float) -> float:
        """Integrate one non-repeating span (``start <= end``, no wrap)."""
        times = self._times
        total = 0.0
        for index, (_, multiplier) in enumerate(self.points):
            seg_start = times[index]
            seg_end = times[index + 1] if index + 1 < len(times) else float("inf")
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            if hi > lo:
                total += float(multiplier) * (hi - lo)
        return total

    def integral(self, start: float, end: float) -> float:
        """``∫ multiplier(t) dt`` over ``[start, end]`` in seconds."""
        if end <= start:
            return 0.0
        if start < 0.0:
            raise ConfigurationError(f"price integral from negative time {start}")
        if self.period is None:
            return self._span_integral(start, end)

        def cumulative(t: float) -> float:
            cycles, offset = divmod(t, self.period)
            return cycles * self._span_integral(0.0, self.period) + self._span_integral(
                0.0, offset
            )

        return cumulative(end) - cumulative(start)

    def mean_multiplier(self, start: float, end: float) -> float:
        """Average multiplier over ``[start, end]`` (1.0 for empty spans)."""
        if end <= start:
            return 1.0
        return self.integral(start, end) / (end - start)

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "points": [[float(t), float(m)] for t, m in self.points],
        }
        if self.period is not None:
            payload["period"] = float(self.period)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PriceCurve":
        return cls(
            name=str(payload["name"]),
            points=tuple((float(t), float(m)) for t, m in payload["points"]),
            period=float(payload["period"]) if payload.get("period") is not None else None,
        )


def gpu_cost(
    server: str,
    gpus: int,
    start: float,
    end: float,
    curve: Optional[PriceCurve] = None,
) -> float:
    """USD charged for ``gpus`` GPUs of ``server`` held over ``[start, end]``.

    Without a curve the flat :data:`GPU_HOURLY_RATES` rate applies; with
    one, the spot multiplier is integrated over the span so jobs that
    straddle a price spike pay for it.
    """
    if server not in GPU_HOURLY_RATES:
        raise ConfigurationError(
            f"no hourly rate for server {server!r}; known: {sorted(GPU_HOURLY_RATES)}"
        )
    if end <= start:
        return 0.0
    seconds = curve.integral(start, end) if curve is not None else end - start
    return GPU_HOURLY_RATES[server] / 3600.0 * gpus * seconds


#: Named presets.  Periods are compressed to simulation timescales (fleet
#: runs span minutes-to-hours of simulated time, not wall-clock days).
PRICE_CURVES: Dict[str, PriceCurve] = {
    "flat": PriceCurve("flat", ((0.0, 1.0),)),
    "diurnal": PriceCurve(
        "diurnal",
        ((0.0, 0.7), (1800.0, 1.0), (3600.0, 1.4), (5400.0, 1.0)),
        period=7200.0,
    ),
    "spot": PriceCurve(
        "spot",
        ((0.0, 0.6), (900.0, 1.5), (1800.0, 0.9), (2700.0, 1.8)),
        period=3600.0,
    ),
}


def parse_price_curve(spec: Optional[str]) -> Optional[PriceCurve]:
    """Resolve a CLI/API price-curve spec.

    Accepts ``None`` (no pricing), a preset name from
    :data:`PRICE_CURVES`, or a custom shorthand of comma-separated
    ``time:multiplier`` break points with an optional trailing
    ``@period``, e.g. ``"0:0.8,600:1.5,1200:1.0@3600"``.
    """
    if spec is None or not spec.strip():
        return None
    text = spec.strip()
    if text in PRICE_CURVES:
        return PRICE_CURVES[text]
    body, _, period_text = text.partition("@")
    try:
        points = []
        for chunk in body.split(","):
            time_text, _, mult_text = chunk.strip().partition(":")
            points.append((float(time_text), float(mult_text)))
        period = float(period_text) if period_text else None
    except ValueError as error:
        raise ConfigurationError(
            f"bad price curve {spec!r} (expected preset "
            f"{sorted(PRICE_CURVES)} or 't:mult,...[@period]'): {error}"
        ) from None
    return PriceCurve(name=text, points=tuple(points), period=period)
