"""Gang-scheduling placement policies and their registry.

A placement policy answers one question, repeatedly: *given the queue and
the free GPUs per node, which job starts next, and where?*  Jobs are gangs —
all ``job.gpus`` GPUs must come from a single node (the strategies being
scheduled are single-server pipelines), so a policy returns at most one
``(job, node)`` pair per call and the simulator re-asks until the answer is
``None``.

Policies are pluggable through :data:`POLICIES`, a registry mirroring
:data:`repro.parallel.registry.REGISTRY` — register a custom policy with
:func:`register_policy` and every simulator, benchmark and CLI entry point
can use it by name.  Three built-ins cover the classic trade-offs:

* ``"fifo"`` — strict FIFO with first-fit placement; the head of the queue
  blocks everything behind it (no backfill), the fairness baseline.
* ``"best-fit"`` — earliest *placeable* job on the node that leaves the
  fewest GPUs stranded; trades head-of-line fairness for packing.
* ``"sjf"`` — shortest job first by profile-estimated service time, placed
  first-fit; minimises mean wait at the cost of starving long jobs.

Documented in ``docs/API.md`` (cluster layer) and ``docs/ARCHITECTURE.md``
(the registries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.cluster.workload import JobSpec
from repro.errors import ConfigurationError
from repro.registry import NamedRegistry, make_register


@dataclass(frozen=True)
class Placement:
    """One placement decision: start ``job_id``'s gang on ``node`` now.

    Example:
        >>> from repro.cluster.scheduler import Placement
        >>> Placement(job_id="job-0001", node="a6000-0").node
        'a6000-0'
    """

    job_id: str
    node: str


#: Estimator handed to policies: seconds of service time for a queued job.
ServiceEstimator = Callable[[JobSpec], float]


@runtime_checkable
class PlacementPolicy(Protocol):
    """A pluggable gang-placement policy.

    ``place`` receives the pending queue in arrival order, the free GPU
    count per node (in cluster order), and a service-time estimator; it
    returns the next placement or ``None`` when nothing may start.
    """

    name: str

    def place(
        self,
        pending: Sequence[JobSpec],
        free_gpus: Mapping[str, int],
        estimate: ServiceEstimator,
    ) -> Optional[Placement]:
        """Pick the next job to start, or ``None`` to wait for an event."""
        ...


class PolicyRegistry(NamedRegistry[PlacementPolicy]):
    """Ordered name -> :class:`PlacementPolicy` mapping with validation."""

    kind = "placement policy"
    kind_plural = "policies"

    def validate(self, name: str, policy: PlacementPolicy) -> None:
        if not callable(getattr(policy, "place", None)):
            raise ConfigurationError(f"policy {name!r} must expose a callable 'place'")


#: The process-wide placement-policy registry.
POLICIES = PolicyRegistry()


#: Register a policy class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_policy = make_register(POLICIES)


# ---------------------------------------------------------------------- #
# Placement helpers
# ---------------------------------------------------------------------- #
def first_fit_node(job: JobSpec, free_gpus: Mapping[str, int]) -> Optional[str]:
    """First node (cluster order) with enough free GPUs for the gang.

    Example:
        >>> from repro.cluster.scheduler import first_fit_node
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=4,
        ...               simulated_steps=4)
        >>> first_fit_node(job, {"small": 2, "big": 4})
        'big'
    """
    for node, free in free_gpus.items():
        if free >= job.gpus:
            return node
    return None


def best_fit_node(job: JobSpec, free_gpus: Mapping[str, int]) -> Optional[str]:
    """Fitting node leaving the fewest GPUs stranded (ties: cluster order).

    Example:
        >>> from repro.cluster.scheduler import best_fit_node
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=2,
        ...               simulated_steps=4)
        >>> best_fit_node(job, {"roomy": 4, "snug": 2})
        'snug'
    """
    best: Optional[str] = None
    best_leftover: Optional[int] = None
    for node, free in free_gpus.items():
        if free < job.gpus:
            continue
        leftover = free - job.gpus
        if best_leftover is None or leftover < best_leftover:
            best, best_leftover = node, leftover
    return best


# ---------------------------------------------------------------------- #
# Built-in policies
# ---------------------------------------------------------------------- #
@register_policy
class FIFOFirstFit:
    """Strict FIFO, first-fit placement, no backfill."""

    name = "fifo"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        if not pending:
            return None
        head = pending[0]
        node = first_fit_node(head, free_gpus)
        if node is None:
            return None
        return Placement(job_id=head.job_id, node=node)


@register_policy
class BestFitPacking:
    """Earliest placeable job on the tightest-fitting node (skips blockers)."""

    name = "best-fit"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        for job in pending:
            node = best_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None


@register_policy
class ShortestJobFirst:
    """Shortest estimated service time first, first-fit placement.

    Estimates come from the simulator's profile-backed service-time model,
    so the ordering reflects real (simulated) epoch times, not job metadata.
    Ties break on arrival order, then job id, keeping runs deterministic.
    """

    name = "sjf"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        ranked = sorted(
            pending, key=lambda job: (estimate(job), job.arrival_time, job.job_id)
        )
        for job in ranked:
            node = first_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None
