"""Gang-scheduling placement policies and their registry.

A placement policy answers one question, repeatedly: *given the queue and
the free GPUs per node, which job starts next, and where?*  Jobs are gangs —
all ``job.gpus`` GPUs must come from a single node (the strategies being
scheduled are single-server pipelines), so a policy returns at most one
``(job, node)`` pair per call and the simulator re-asks until the answer is
``None``.

Policies are pluggable through :data:`POLICIES`, a registry mirroring
:data:`repro.parallel.registry.REGISTRY` — register a custom policy with
:func:`register_policy` and every simulator, benchmark and CLI entry point
can use it by name.  Three built-ins cover the classic trade-offs:

* ``"fifo"`` — strict FIFO with first-fit placement; the head of the queue
  blocks everything behind it (no backfill), the fairness baseline.
* ``"best-fit"`` — earliest *placeable* job on the node that leaves the
  fewest GPUs stranded; trades head-of-line fairness for packing.
* ``"sjf"`` — shortest job first by profile-estimated service time, placed
  first-fit; minimises mean wait at the cost of starving long jobs.

Three more are *tenant-aware* (``tenant_aware = True``): they accept an
optional :class:`SchedulingContext` carrying tenant specs, live GPU usage
and fair-share deficits, and all three (``preempts = True``) rank jobs
by :meth:`urgency` so the simulator can evict strictly-less-urgent gangs
on their behalf:

* ``"priority"`` — highest tenant priority first (ties: arrival), with
  backfill; may preempt lower-priority gangs.
* ``"fair-share"`` — deficit-weighted round robin: the tenant furthest
  below its entitled GPU share places first; work-conserving, but may
  evict gangs of strictly less-owed tenants when backfill starves it.
* ``"deadline-aware"`` — earliest deadline first (deadline-free jobs
  last), with backfill; may preempt gangs with later deadlines.

Documented in ``docs/API.md`` (cluster layer), ``docs/ARCHITECTURE.md``
(the registries) and ``docs/TENANTS.md`` (multi-tenancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.cluster.workload import JobSpec, TenantSpec
from repro.errors import ConfigurationError
from repro.registry import NamedRegistry, make_register


@dataclass(frozen=True)
class Placement:
    """One placement decision: start ``job_id``'s gang on ``node`` now.

    Example:
        >>> from repro.cluster.scheduler import Placement
        >>> Placement(job_id="job-0001", node="a6000-0").node
        'a6000-0'
    """

    job_id: str
    node: str


#: Estimator handed to policies: seconds of service time for a queued job.
ServiceEstimator = Callable[[JobSpec], float]


@dataclass(frozen=True)
class SchedulingContext:
    """Fleet state handed to tenant-aware policies at each drain instant.

    ``tenants`` maps declared tenant names to their specs, ``usage_gpus``
    is each tenant's currently-held GPU count, and ``deficits`` is the
    fair-share ledger: entitled GPU-seconds so far minus consumed (a
    positive deficit means the tenant is owed capacity).

    Example:
        >>> from repro.cluster.scheduler import SchedulingContext
        >>> from repro.cluster.workload import JobSpec, TenantSpec
        >>> context = SchedulingContext(
        ...     now=5.0, tenants={"prod": TenantSpec("prod", priority=2)})
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=1, tenant="prod")
        >>> context.priority(job)
        2
    """

    now: float = 0.0
    tenants: Mapping[str, TenantSpec] = field(default_factory=dict)
    usage_gpus: Mapping[str, int] = field(default_factory=dict)
    deficits: Mapping[str, float] = field(default_factory=dict)

    def priority(self, job: JobSpec) -> int:
        """The job's tenant priority (0 for undeclared tenants)."""
        spec = self.tenants.get(job.tenant)
        return spec.priority if spec is not None else 0

    def deficit(self, tenant: str) -> float:
        """How many GPU-seconds the tenant is owed (0.0 when untracked)."""
        return self.deficits.get(tenant, 0.0)


@runtime_checkable
class PlacementPolicy(Protocol):
    """A pluggable gang-placement policy.

    ``place`` receives the pending queue in arrival order, the free GPU
    count per node (in cluster order), and a service-time estimator; it
    returns the next placement or ``None`` when nothing may start.
    """

    name: str

    def place(
        self,
        pending: Sequence[JobSpec],
        free_gpus: Mapping[str, int],
        estimate: ServiceEstimator,
    ) -> Optional[Placement]:
        """Pick the next job to start, or ``None`` to wait for an event."""
        ...


class PolicyRegistry(NamedRegistry[PlacementPolicy]):
    """Ordered name -> :class:`PlacementPolicy` mapping with validation."""

    kind = "placement policy"
    kind_plural = "policies"

    def validate(self, name: str, policy: PlacementPolicy) -> None:
        if not callable(getattr(policy, "place", None)):
            raise ConfigurationError(f"policy {name!r} must expose a callable 'place'")


#: The process-wide placement-policy registry.
POLICIES = PolicyRegistry()


#: Register a policy class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_policy = make_register(POLICIES)


# ---------------------------------------------------------------------- #
# Placement helpers
# ---------------------------------------------------------------------- #
def first_fit_node(job: JobSpec, free_gpus: Mapping[str, int]) -> Optional[str]:
    """First node (cluster order) with enough free GPUs for the gang.

    Example:
        >>> from repro.cluster.scheduler import first_fit_node
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=4,
        ...               simulated_steps=4)
        >>> first_fit_node(job, {"small": 2, "big": 4})
        'big'
    """
    for node, free in free_gpus.items():
        if free >= job.gpus:
            return node
    return None


def best_fit_node(job: JobSpec, free_gpus: Mapping[str, int]) -> Optional[str]:
    """Fitting node leaving the fewest GPUs stranded (ties: cluster order).

    Example:
        >>> from repro.cluster.scheduler import best_fit_node
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=2,
        ...               simulated_steps=4)
        >>> best_fit_node(job, {"roomy": 4, "snug": 2})
        'snug'
    """
    best: Optional[str] = None
    best_leftover: Optional[int] = None
    for node, free in free_gpus.items():
        if free < job.gpus:
            continue
        leftover = free - job.gpus
        if best_leftover is None or leftover < best_leftover:
            best, best_leftover = node, leftover
    return best


# ---------------------------------------------------------------------- #
# Built-in policies
# ---------------------------------------------------------------------- #
@register_policy
class FIFOFirstFit:
    """Strict FIFO, first-fit placement, no backfill."""

    name = "fifo"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        if not pending:
            return None
        head = pending[0]
        node = first_fit_node(head, free_gpus)
        if node is None:
            return None
        return Placement(job_id=head.job_id, node=node)


@register_policy
class BestFitPacking:
    """Earliest placeable job on the tightest-fitting node (skips blockers)."""

    name = "best-fit"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        for job in pending:
            node = best_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None


@register_policy
class ShortestJobFirst:
    """Shortest estimated service time first, first-fit placement.

    Estimates come from the simulator's profile-backed service-time model,
    so the ordering reflects real (simulated) epoch times, not job metadata.
    Ties break on arrival order, then job id, keeping runs deterministic.
    """

    name = "sjf"

    def place(self, pending, free_gpus, estimate) -> Optional[Placement]:
        ranked = sorted(
            pending, key=lambda job: (estimate(job), job.arrival_time, job.job_id)
        )
        for job in ranked:
            node = first_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None


# ---------------------------------------------------------------------- #
# Tenant-aware policies (multi-tenancy; see docs/TENANTS.md)
# ---------------------------------------------------------------------- #
@register_policy
class PriorityFirstFit:
    """Highest tenant priority first, first-fit, with backfill.

    ``urgency`` is the tenant priority, so the simulator may evict gangs
    of strictly lower-priority tenants to start a starved high-priority
    job.  Ties break on arrival order then job id.
    """

    name = "priority"
    tenant_aware = True
    preempts = True

    def urgency(self, job, context: Optional[SchedulingContext]) -> float:
        return float(context.priority(job)) if context is not None else 0.0

    def place(
        self, pending, free_gpus, estimate, context: Optional[SchedulingContext] = None
    ) -> Optional[Placement]:
        ranked = sorted(
            pending,
            key=lambda job: (-self.urgency(job, context), job.arrival_time, job.job_id),
        )
        for job in ranked:
            node = first_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None


@register_policy
class DeficitFairShare:
    """Deficit-weighted fair share across tenants, work-conserving.

    Tenants are ranked by fair-share deficit (entitled minus consumed
    GPU-seconds, largest owed first; ties break on name), and the
    front-ranked tenant's earliest placeable job starts.  If nothing of
    that tenant's fits, the next tenant is tried — the policy never
    idles GPUs to enforce fairness, it only re-orders access.

    ``urgency`` is the tenant's deficit, so when backfill fragments the
    fleet and starves a tenant that is owed capacity, the simulator may
    evict gangs of strictly less-owed tenants.  Deficits are evaluated
    once per drain instant, so eviction cannot flip the ordering
    mid-drain.
    """

    name = "fair-share"
    tenant_aware = True
    preempts = True

    def urgency(self, job, context: Optional[SchedulingContext]) -> float:
        return context.deficit(job.tenant) if context is not None else 0.0

    def place(
        self, pending, free_gpus, estimate, context: Optional[SchedulingContext] = None
    ) -> Optional[Placement]:
        if not pending:
            return None
        deficit = context.deficit if context is not None else (lambda tenant: 0.0)
        tenants = sorted(
            {job.tenant for job in pending},
            key=lambda tenant: (-deficit(tenant), tenant),
        )
        for tenant in tenants:
            for job in pending:
                if job.tenant != tenant:
                    continue
                node = first_fit_node(job, free_gpus)
                if node is not None:
                    return Placement(job_id=job.job_id, node=node)
        return None


@register_policy
class DeadlineAware:
    """Earliest deadline first (EDF), first-fit, with backfill.

    Jobs without deadlines sort last (after every deadline-carrying
    job).  ``urgency`` is the negated deadline, so the simulator may
    evict a gang with a later deadline — or none — to start a job whose
    deadline is closing.
    """

    name = "deadline-aware"
    tenant_aware = True
    preempts = True

    def urgency(self, job, context: Optional[SchedulingContext]) -> float:
        return -job.deadline if job.deadline is not None else -math.inf

    def place(
        self, pending, free_gpus, estimate, context: Optional[SchedulingContext] = None
    ) -> Optional[Placement]:
        ranked = sorted(
            pending,
            key=lambda job: (
                job.deadline if job.deadline is not None else math.inf,
                job.arrival_time,
                job.job_id,
            ),
        )
        for job in ranked:
            node = first_fit_node(job, free_gpus)
            if node is not None:
                return Placement(job_id=job.job_id, node=node)
        return None
