"""The cluster event loop: admit, place and complete distillation jobs.

:class:`ClusterSimulator` advances virtual time from event to event (job
arrivals and gang completions), keeping a per-node free-GPU ledger and
re-consulting the placement policy after every event.  Two levels of reuse
make thousand-job fleets cheap:

* a shared :class:`~repro.core.session.Session` memoises pairs, server
  specs, datasets, executors and — crucially — profile tables across jobs,
  so the paper's one-off profiling pass is paid once per *cell*, not once
  per job;
* the simulator memoises *epoch times* by ``(cell, strategy, steps)``: two
  jobs landing the same experiment cell on the same node type trigger one
  discrete-event simulation, however many epochs each trains;
* when the session carries a persistent
  :class:`~repro.store.store.ExperimentStore`, the epoch-time memo fills
  from and writes through it (via ``Session.run``'s store path), so a
  restarted fleet replay performs zero discrete-event simulations — check
  ``session.stats.runs`` / ``session.stats.store_hits``.

Determinism: workloads are seeded, the event loop breaks ties by insertion
order, and policies see nodes in cluster order — the same workload under the
same policy always produces a bit-identical :class:`ClusterReport`.

Documented in ``docs/API.md`` (cluster layer) and ``docs/ARCHITECTURE.md``
(data flow).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.cluster_report import ClusterReport, JobRecord
from repro.cluster.scheduler import POLICIES, Placement, PlacementPolicy
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.cluster.workload import JobSpec, Workload
from repro.core.session import Session
from repro.errors import ClusterError

#: Epoch-time memo key: experiment cell + strategy + simulated step count.
EpochKey = Tuple[Tuple[str, str, str, int, int], str, int]


class ClusterSimulator:
    """Event-driven gang scheduler over a fleet of simulated servers.

    Example:
        >>> from repro.cluster.simulator import ClusterSimulator
        >>> from repro.cluster.spec import default_cluster
        >>> from repro.cluster.workload import poisson_workload
        >>> simulator = ClusterSimulator(default_cluster(), policy="fifo")
        >>> report = simulator.run(poisson_workload(num_jobs=6, rate=0.5))
        >>> (report.num_jobs, report.makespan > 0)
        (6, True)
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: Union[str, PlacementPolicy] = "fifo",
        session: Optional[Session] = None,
        epoch_time_cache: Optional[Dict[EpochKey, float]] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = POLICIES.get(policy) if isinstance(policy, str) else policy
        self.session = session if session is not None else Session()
        # Pass one dict to several simulators (as run_policy_comparison does)
        # and the epoch-time memo is shared too: later simulators replay the
        # fleet without re-running any discrete-event simulation.
        self._epoch_times: Dict[EpochKey, float] = (
            epoch_time_cache if epoch_time_cache is not None else {}
        )

    # ------------------------------------------------------------------ #
    # Service-time model (Session-backed, memoised per cell)
    # ------------------------------------------------------------------ #
    def epoch_time(self, job: JobSpec, node: NodeSpec) -> float:
        """Simulated seconds per epoch for ``job``'s gang on ``node``."""
        config = job.experiment_config(node.server)
        key: EpochKey = (config.cell_key(), job.strategy, job.simulated_steps)
        if key not in self._epoch_times:
            self._epoch_times[key] = self.session.run(config).epoch_time
        return self._epoch_times[key]

    def service_time(self, job: JobSpec, node: NodeSpec) -> float:
        """Full service time: per-epoch time scaled by the job's epoch count."""
        return self.epoch_time(job, node) * job.epochs

    def estimate_service_time(self, job: JobSpec) -> float:
        """Node-independent estimate used by ordering policies (e.g. SJF).

        Uses the first node (in cluster order) whose inventory can hold the
        gang, so the estimate is deterministic and placement-independent.
        """
        for node in self.cluster.nodes:
            if node.num_gpus >= job.gpus:
                return self.service_time(job, node)
        raise ClusterError(
            f"job {job.job_id!r} needs {job.gpus} GPUs but the largest node has "
            f"{self.cluster.max_gpus_per_node}"
        )

    @property
    def simulations_run(self) -> int:
        """Distinct (cell, strategy, steps) epoch times resolved so far.

        With a store-backed session some of these were hydrated from disk
        rather than simulated; ``session.stats.runs`` counts true
        simulations.
        """
        return len(self._epoch_times)

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> ClusterReport:
        """Serve the whole workload and return the fleet-level report."""
        for job in workload:
            if job.gpus > self.cluster.max_gpus_per_node:
                raise ClusterError(
                    f"job {job.job_id!r} needs a {job.gpus}-GPU gang but the "
                    f"largest node of {self.cluster.name!r} has "
                    f"{self.cluster.max_gpus_per_node} GPUs"
                )

        free: Dict[str, int] = self.cluster.node_gpus()
        arrivals: List[JobSpec] = list(workload.jobs)
        next_arrival = 0
        # Completion heap entries: (finish_time, tie-break seq, job, node name).
        running: List[Tuple[float, int, JobSpec, str]] = []
        sequence = itertools.count()
        queue: List[JobSpec] = []
        records: List[JobRecord] = []
        now = 0.0

        while next_arrival < len(arrivals) or queue or running:
            event_times = []
            if next_arrival < len(arrivals):
                event_times.append(arrivals[next_arrival].arrival_time)
            if running:
                event_times.append(running[0][0])
            if not event_times:
                # Queued jobs, nothing running, nothing arriving: the policy
                # refused to place jobs that fit an empty fleet.
                stuck = [job.job_id for job in queue]
                raise ClusterError(
                    f"policy {self.policy.name!r} made no progress with an idle "
                    f"fleet; stuck jobs: {stuck}"
                )
            now = min(event_times)

            # Completions first, so freed gangs are placeable this instant.
            while running and running[0][0] <= now:
                _, _, job, node_name = heapq.heappop(running)
                free[node_name] += job.gpus
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].arrival_time <= now
            ):
                queue.append(arrivals[next_arrival])
                next_arrival += 1

            # Drain the queue as far as the policy allows at this instant.
            while queue:
                placement = self.policy.place(
                    tuple(queue), dict(free), self.estimate_service_time
                )
                if placement is None:
                    break
                job, node = self._resolve(placement, queue, free)
                service = self.service_time(job, node)
                finish = now + service
                free[node.name] -= job.gpus
                queue.remove(job)
                heapq.heappush(running, (finish, next(sequence), job, node.name))
                records.append(
                    JobRecord(
                        job_id=job.job_id,
                        node=node.name,
                        gpus=job.gpus,
                        strategy=job.strategy,
                        cell=job.experiment_config(node.server).cell_label(),
                        arrival_time=job.arrival_time,
                        start_time=now,
                        finish_time=finish,
                    )
                )

        return ClusterReport(
            policy=self.policy.name,
            cluster_name=self.cluster.name,
            workload_name=workload.name,
            node_gpus=self.cluster.node_gpus(),
            records=tuple(records),
        )

    # ------------------------------------------------------------------ #
    def _resolve(
        self, placement: Placement, queue: List[JobSpec], free: Dict[str, int]
    ) -> Tuple[JobSpec, NodeSpec]:
        """Validate a policy's decision against the queue and the ledger."""
        matches = [job for job in queue if job.job_id == placement.job_id]
        if not matches:
            raise ClusterError(
                f"policy {self.policy.name!r} placed unknown job "
                f"{placement.job_id!r} (not in queue)"
            )
        job = matches[0]
        node = self.cluster.node(placement.node)
        if free[node.name] < job.gpus:
            raise ClusterError(
                f"policy {self.policy.name!r} placed job {job.job_id!r} "
                f"({job.gpus} GPUs) on node {node.name!r} with only "
                f"{free[node.name]} free"
            )
        return job, node


def run_policy_comparison(
    cluster: ClusterSpec,
    workload: Workload,
    policies: Tuple[str, ...] = ("fifo", "best-fit", "sjf"),
    session: Optional[Session] = None,
) -> Dict[str, ClusterReport]:
    """Serve one workload under several policies, sharing one session.

    The session *and* the per-cell epoch-time memo are shared across the
    per-policy simulators, so the second and third policies replay the
    fleet with zero additional profile builds and zero additional
    discrete-event simulations.

    Example:
        >>> from repro.cluster.simulator import run_policy_comparison
        >>> from repro.cluster.spec import default_cluster
        >>> from repro.cluster.workload import poisson_workload
        >>> workload = poisson_workload(num_jobs=6, rate=0.5)
        >>> reports = run_policy_comparison(default_cluster(), workload)
        >>> sorted(reports)
        ['best-fit', 'fifo', 'sjf']
    """
    shared = session if session is not None else Session()
    epoch_times: Dict[EpochKey, float] = {}
    reports: Dict[str, ClusterReport] = {}
    for name in policies:
        simulator = ClusterSimulator(
            cluster, policy=name, session=shared, epoch_time_cache=epoch_times
        )
        reports[name] = simulator.run(workload)
    return reports
