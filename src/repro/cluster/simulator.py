"""The cluster event loop: admit, place, complete — and now survive — jobs.

:class:`ClusterSimulator` advances virtual time from event to event (job
arrivals, gang completions and, when a fault source is attached, crash /
preemption / straggler incidents), keeping a per-node free-GPU ledger and
re-consulting the placement policy after every event.  Two levels of reuse
make thousand-job fleets cheap:

* a shared :class:`~repro.core.session.Session` memoises pairs, server
  specs, datasets, executors and — crucially — profile tables across jobs,
  so the paper's one-off profiling pass is paid once per *cell*, not once
  per job;
* the simulator memoises *epoch times* by ``(cell, strategy, steps)``: two
  jobs landing the same experiment cell on the same node type trigger one
  discrete-event simulation, however many epochs each trains;
* when the session carries a persistent
  :class:`~repro.store.store.ExperimentStore`, the epoch-time memo fills
  from and writes through it (via ``Session.run``'s store path), so a
  restarted fleet replay performs zero discrete-event simulations — check
  ``session.stats.runs`` / ``session.stats.store_hits``.

Fault injection (``faults=``) replays a :class:`~repro.cluster.faults.FaultTrace`
— or materialises one from a seeded :class:`~repro.cluster.faults.FaultModel`
— as first-class events: crashes permanently remove GPUs, preemptions take
them away for a window, stragglers stretch a node's service times.  Evicted
gangs recover through a pluggable elastic policy
(:data:`~repro.cluster.elastic.ELASTIC_POLICIES`: ``restart`` / ``shrink`` /
``migrate``) and pay checkpoint/restart costs from a
:class:`~repro.cluster.faults.RecoveryModel` that knows decoupled
sub-pipelines (DPU/LS) lose less progress than synchronous gangs.

Multi-tenancy (PR 10) rides the same attempt-based loop: workloads that
declare :class:`~repro.cluster.workload.TenantSpec` tenants (or carry job
deadlines, or attach a :class:`~repro.cluster.market.PriceCurve`) are
routed through it even without faults, adding per-tenant GPU quotas,
fair-share deficit tracking, *voluntary* preemption on behalf of
``preempts = True`` policies (reusing the fault-eviction machinery:
interrupted gangs pay the same checkpoint losses and restart costs), and
spot-priced cost accounting per attempt.  Single-tenant, deadline-free,
unpriced workloads keep the original reliable fast path byte-identical.

Determinism: workloads, fault models and the event loop are all seeded and
tie-broken by insertion order, so the same (workload, trace, policy) always
produces a bit-identical :class:`ClusterReport` — fault runs included.

Epoch-time memo audit (PR 5): the memo key deliberately carries *no*
placement-policy or fault context.  An epoch time is a property of the
experiment cell alone — ``cell_key()`` pins task/dataset/server/gpus/batch,
plus strategy and step count — and is invariant under which policy chose
the node or which faults later hit it: straggler slowdowns scale *wall*
time at the event level (never the memoised nominal time), and elastic
``shrink`` re-partitions land in the memo under their actual smaller gang
(``num_gpus`` is part of the cell).  ``tests/cluster/test_simulator.py``
pins this with SessionStats: replaying a workload under every policy, and
under fault injection, adds zero discrete-event simulations.

Documented in ``docs/API.md`` (cluster layer), ``docs/ARCHITECTURE.md``
(data flow) and ``docs/FAULTS.md`` (failure semantics).
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.cluster_report import ClusterReport, JobRecord
from repro.cluster.elastic import ELASTIC_POLICIES, ReschedulePolicy, resolve_elastic
from repro.cluster.faults import (
    FaultModel,
    FaultTrace,
    RecoveryModel,
    resolve_faults,
)
from repro.cluster.market import PriceCurve, gpu_cost
from repro.cluster.scheduler import (
    POLICIES,
    Placement,
    PlacementPolicy,
    SchedulingContext,
)
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.cluster.workload import JobSpec, Workload
from repro.core.session import Session
from repro.errors import ClusterError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span

#: Epoch-time memo key: experiment cell + strategy + simulated step count.
#: Complete by construction — epoch time depends on nothing else (in
#: particular not on the placement policy, the elastic policy or the fault
#: trace), so the memo is safely shared across policy comparisons and
#: fault-injected replays.
EpochKey = Tuple[Tuple[str, str, str, int, int], str, int]


@dataclass
class _Attempt:
    """One running execution attempt of a job's gang on a node."""

    seq: int
    job: JobSpec
    node: NodeSpec
    gpus: int
    overhead: float  # nominal seconds of recovery setup folded into the attempt
    attempt_full: float  # nominal full-job service at this (node, gang) sizing
    nominal_total: float  # overhead + remaining work, in nominal seconds
    nominal_remaining: float
    last_settle: float  # wall instant the nominal_remaining was last updated
    start: float
    finish: float


@dataclass
class _Progress:
    """Cross-attempt bookkeeping for one job."""

    done: float = 0.0  # fraction of the whole job preserved so far
    attempts: int = 0
    first_start: Optional[float] = None
    preemptions: int = 0
    gpu_seconds: float = 0.0
    wasted_gpu_seconds: float = 0.0
    recoveries: List[float] = field(default_factory=list)
    interrupted_at: Optional[float] = None
    cost_usd: float = 0.0


class ClusterSimulator:
    """Event-driven gang scheduler over a fleet of simulated servers.

    Example:
        >>> from repro.cluster.simulator import ClusterSimulator
        >>> from repro.cluster.spec import default_cluster
        >>> from repro.cluster.workload import poisson_workload
        >>> simulator = ClusterSimulator(default_cluster(), policy="fifo")
        >>> report = simulator.run(poisson_workload(num_jobs=6, rate=0.5))
        >>> (report.num_jobs, report.makespan > 0)
        (6, True)

    With a fault source attached the same loop injects incidents and
    recovers gangs through an elastic policy:

        >>> from repro.cluster.faults import FaultModel
        >>> faulty = ClusterSimulator(default_cluster(), policy="fifo",
        ...                           faults=FaultModel(preempt_rate=0.002),
        ...                           elastic="shrink")
        >>> report = faulty.run(poisson_workload(num_jobs=6, rate=0.5))
        >>> report.faults_injected >= 0
        True
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: Union[str, PlacementPolicy] = "fifo",
        session: Optional[Session] = None,
        epoch_time_cache: Optional[Dict[EpochKey, float]] = None,
        faults: Union[FaultTrace, FaultModel, str, None] = None,
        elastic: Union[str, ReschedulePolicy] = "restart",
        recovery: Optional[RecoveryModel] = None,
        fault_seed: int = 0,
        price_curve: Optional[PriceCurve] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = POLICIES.get(policy) if isinstance(policy, str) else policy
        self.session = session if session is not None else Session()
        self.faults = faults
        self.elastic = resolve_elastic(elastic)
        self.recovery = recovery if recovery is not None else RecoveryModel()
        self.fault_seed = fault_seed
        self.price_curve = price_curve
        # Pass one dict to several simulators (as run_policy_comparison does)
        # and the epoch-time memo is shared too: later simulators replay the
        # fleet without re-running any discrete-event simulation.
        self._epoch_times: Dict[EpochKey, float] = (
            epoch_time_cache if epoch_time_cache is not None else {}
        )
        # Per-run aggregates the event loops fill with plain local ints and
        # _flush_metrics pushes to the registry once per run().
        self._last_events = 0
        self._last_peak_heap = 0

    # ------------------------------------------------------------------ #
    # Service-time model (Session-backed, memoised per cell)
    # ------------------------------------------------------------------ #
    def epoch_time(self, job: JobSpec, node: NodeSpec) -> float:
        """Simulated seconds per epoch for ``job``'s gang on ``node``.

        The memo key is the cell (which includes the node's server type and
        the gang size), the strategy and the step count — nothing about the
        placement policy or fault state, which cannot affect a nominal
        epoch time.  Elastic re-partitions therefore memoise under their
        actual (smaller) gang size, never alias the original one.
        """
        config = job.experiment_config(node.server)
        key: EpochKey = (config.cell_key(), job.strategy, job.simulated_steps)
        if key not in self._epoch_times:
            self._epoch_times[key] = self.session.run(config).epoch_time
        return self._epoch_times[key]

    def service_time(self, job: JobSpec, node: NodeSpec) -> float:
        """Full service time: per-epoch time scaled by the job's epoch count."""
        return self.epoch_time(job, node) * job.epochs

    def _fill_epoch_times(self, placements) -> None:
        """Batch-fill the epoch-time memo for freshly decided placements.

        Both event loops collect every placement made at one event instant
        and resolve the missing ``EpochKey`` cells here in one fan-out,
        under a *single* ``cluster.memo_fill`` span and one counter bump —
        instead of a per-event ``Session.run`` span per cell — so profile
        reports stay readable at fleet scale.  Only keys the drained
        placements actually need are filled: the memo contents (and with
        them ``simulations_run`` and the store audit counters) are
        identical to the per-event fills this replaces.
        """
        missing = []
        seen = set()
        for job, node in placements:
            config = job.experiment_config(node.server)
            key: EpochKey = (config.cell_key(), job.strategy, job.simulated_steps)
            if key not in self._epoch_times and key not in seen:
                seen.add(key)
                missing.append((key, config))
        if not missing:
            return
        with span("cluster.memo_fill", cells=len(missing), policy=self.policy.name):
            for key, config in missing:
                self._epoch_times[key] = self.session.run(config).epoch_time
        get_registry().counter(
            "repro_cluster_memo_fill_cells_total",
            "epoch-time memo cells filled, batched per drain instant",
        ).inc(len(missing), policy=self.policy.name)

    def estimate_service_time(self, job: JobSpec) -> float:
        """Node-independent estimate used by ordering policies (e.g. SJF).

        Uses the first node (in cluster order) whose inventory can hold the
        gang, so the estimate is deterministic and placement-independent.
        """
        for node in self.cluster.nodes:
            if node.num_gpus >= job.gpus:
                return self.service_time(job, node)
        raise ClusterError(
            f"job {job.job_id!r} needs {job.gpus} GPUs but the largest node has "
            f"{self.cluster.max_gpus_per_node}"
        )

    @property
    def simulations_run(self) -> int:
        """Distinct (cell, strategy, steps) epoch times resolved so far.

        With a store-backed session some of these were hydrated from disk
        rather than simulated; ``session.stats.runs`` counts true
        simulations.
        """
        return len(self._epoch_times)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> ClusterReport:
        """Serve the whole workload and return the fleet-level report."""
        for job in workload:
            if job.gpus > self.cluster.max_gpus_per_node:
                raise ClusterError(
                    f"job {job.job_id!r} needs a {job.gpus}-GPU gang but the "
                    f"largest node of {self.cluster.name!r} has "
                    f"{self.cluster.max_gpus_per_node} GPUs"
                )
        trace = resolve_faults(self.faults, self.cluster, workload, seed=self.fault_seed)
        # Declared tenants, job deadlines or spot pricing all need the
        # attempt-based loop (quotas, preemption, per-attempt cost); plain
        # workloads keep the original reliable fast path bit-for-bit.
        slo_mode = bool(workload.tenants) or any(
            job.deadline is not None for job in workload.jobs
        )
        started = time.perf_counter()
        with span(
            "cluster.run",
            policy=self.policy.name,
            jobs=len(workload.jobs),
            faulted=trace is not None,
        ):
            if trace is None and not slo_mode and self.price_curve is None:
                report = self._run_reliable(workload)
            else:
                report = self._run_with_faults(workload, trace)
        self._flush_metrics(report, time.perf_counter() - started)
        return report

    def _flush_metrics(self, report: ClusterReport, duration_s: float) -> None:
        """Push one run's aggregate counters to the metrics registry.

        The event loop itself only bumps plain local integers (see
        ``_run_reliable`` / ``_run_with_faults``); everything crosses into
        the registry exactly once per run, keeping the instrumented loop
        within the ≤5% overhead budget of ``bench_cluster_throughput``.
        """
        registry = get_registry()
        policy = self.policy.name
        registry.counter(
            "repro_cluster_runs_total", "completed fleet simulations"
        ).inc(policy=policy)
        registry.counter(
            "repro_cluster_events_total",
            "event-loop events processed (completions, arrivals, "
            "placements, fault-timeline actions)",
        ).inc(self._last_events, policy=policy)
        registry.counter(
            "repro_cluster_faults_total", "fault events injected"
        ).inc(len(report.fault_events), policy=policy)
        registry.gauge(
            "repro_cluster_heap_depth_peak",
            "peak completion-heap depth (gangs in flight) of the last run",
        ).set(self._last_peak_heap, policy=policy)
        registry.histogram(
            "repro_cluster_run_seconds", "wall time of one fleet simulation"
        ).observe(duration_s)

    # ------------------------------------------------------------------ #
    # Reliable event loop (no faults attached — the original fast path)
    # ------------------------------------------------------------------ #
    def _run_reliable(self, workload: Workload) -> ClusterReport:
        free: Dict[str, int] = self.cluster.node_gpus()
        arrivals: List[JobSpec] = list(workload.jobs)
        next_arrival = 0
        # Completion heap entries: (finish_time, tie-break seq, job, node name).
        running: List[Tuple[float, int, JobSpec, str]] = []
        sequence = itertools.count()
        queue: List[JobSpec] = []
        records: List[JobRecord] = []
        now = 0.0
        events = 0
        peak_heap = 0

        while next_arrival < len(arrivals) or queue or running:
            event_times = []
            if next_arrival < len(arrivals):
                event_times.append(arrivals[next_arrival].arrival_time)
            if running:
                event_times.append(running[0][0])
            if not event_times:
                # Queued jobs, nothing running, nothing arriving: the policy
                # refused to place jobs that fit an empty fleet.
                stuck = [job.job_id for job in queue]
                raise ClusterError(
                    f"policy {self.policy.name!r} made no progress with an idle "
                    f"fleet; stuck jobs: {stuck}"
                )
            now = min(event_times)

            # Completions first, so freed gangs are placeable this instant.
            while running and running[0][0] <= now:
                _, _, job, node_name = heapq.heappop(running)
                free[node_name] += job.gpus
                events += 1
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].arrival_time <= now
            ):
                queue.append(arrivals[next_arrival])
                next_arrival += 1
                events += 1

            # Drain the queue as far as the policy allows at this instant.
            # Placement decisions depend only on the queue and the free
            # ledger — never on the service time of a gang placed in the
            # same instant — so the loop first *decides* every placement,
            # then resolves the missing epoch-time cells in one batch, and
            # only then books the gangs.
            placed: List[Tuple[JobSpec, NodeSpec]] = []
            while queue:
                placement = self.policy.place(
                    tuple(queue), dict(free), self.estimate_service_time
                )
                if placement is None:
                    break
                job, node = self._resolve(placement, queue, free)
                free[node.name] -= job.gpus
                queue.remove(job)
                placed.append((job, node))
            if placed:
                self._fill_epoch_times(placed)
            for job, node in placed:
                service = self.service_time(job, node)
                finish = now + service
                heapq.heappush(running, (finish, next(sequence), job, node.name))
                events += 1
                if len(running) > peak_heap:
                    peak_heap = len(running)
                records.append(
                    JobRecord(
                        job_id=job.job_id,
                        node=node.name,
                        gpus=job.gpus,
                        strategy=job.strategy,
                        cell=job.experiment_config(node.server).cell_label(),
                        arrival_time=job.arrival_time,
                        start_time=now,
                        finish_time=finish,
                        tenant=job.tenant,
                        deadline=job.deadline,
                    )
                )

        self._last_events = events
        self._last_peak_heap = peak_heap
        return ClusterReport(
            policy=self.policy.name,
            cluster_name=self.cluster.name,
            workload_name=workload.name,
            node_gpus=self.cluster.node_gpus(),
            records=tuple(records),
        )

    # ------------------------------------------------------------------ #
    # Attempt-based event loop (faults, tenants, deadlines, pricing)
    # ------------------------------------------------------------------ #
    def _run_with_faults(
        self, workload: Workload, trace: Optional[FaultTrace]
    ) -> ClusterReport:
        known_nodes = set(self.cluster.node_gpus())
        trace_events = trace.events if trace is not None else ()
        for event in trace_events:
            if event.node not in known_nodes:
                raise ClusterError(
                    f"fault trace {trace.name!r} names unknown node "
                    f"{event.node!r}; cluster nodes: {sorted(known_nodes)}"
                )

        # Expand the trace into an internal timeline: preemptions become a
        # down/up pair, stragglers a slow/fast pair.  The shared token dict
        # carries the actually-reclaimed amount from 'down' to its 'up'.
        timeline_entries: List[Tuple[float, int, str, tuple]] = []
        order = itertools.count()
        for event in trace_events:
            if event.kind == "crash":
                timeline_entries.append((event.time, next(order), "crash", (event, None)))
            elif event.kind == "preempt":
                token: Dict[str, int] = {}
                timeline_entries.append((event.time, next(order), "down", (event, token)))
                timeline_entries.append(
                    (event.time + event.duration, next(order), "up", (event, token))
                )
            else:  # straggler
                timeline_entries.append((event.time, next(order), "slow", (event, None)))
                timeline_entries.append(
                    (event.time + event.duration, next(order), "fast", (event, None))
                )
        timeline_entries.sort(key=lambda entry: (entry[0], entry[1]))
        timeline = deque(timeline_entries)

        capacity: Dict[str, int] = self.cluster.node_gpus()  # crash-adjusted
        down: Dict[str, int] = {name: 0 for name in capacity}  # preempted now
        used: Dict[str, int] = {name: 0 for name in capacity}
        factor: Dict[str, float] = {name: 1.0 for name in capacity}

        # Multi-tenancy state: declared specs, GPU-seconds consumed so far
        # (settled attempts only — live attempts are added on demand), and
        # the fair-share weights (quota when declared, else equal shares).
        tenant_specs = workload.tenant_map()
        tenant_mode = bool(tenant_specs)
        tenant_aware = getattr(self.policy, "tenant_aware", False)
        policy_preempts = getattr(self.policy, "preempts", False)
        consumed: Dict[str, float] = {}
        share_weight = {
            name: float(spec.quota_gpus) if spec.quota_gpus is not None else 1.0
            for name, spec in tenant_specs.items()
        }

        arrivals: List[JobSpec] = list(workload.jobs)
        next_arrival = 0
        sequence = itertools.count()
        entries: Dict[int, _Attempt] = {}
        heap: List[Tuple[float, int]] = []
        queue: List[JobSpec] = []
        records: List[JobRecord] = []
        killed: List[dict] = []
        recoveries: List[float] = []
        progress: Dict[str, _Progress] = {job.job_id: _Progress() for job in workload}
        # Exact per-node occupancy: a restarted or migrated job spans nodes
        # across attempts, so per-node utilization cannot be derived from
        # the (final-node) completion records alone.
        node_busy: Dict[str, float] = {name: 0.0 for name in capacity}
        now = 0.0
        events = 0
        peak_heap = 0

        def free_map() -> Dict[str, int]:
            return {
                name: max(0, capacity[name] - down[name]) - used[name]
                for name in capacity
            }

        def usage_now() -> Dict[str, int]:
            usage: Dict[str, int] = {}
            for attempt in entries.values():
                usage[attempt.job.tenant] = usage.get(attempt.job.tenant, 0) + attempt.gpus
            return usage

        def deficits_at(t: float) -> Dict[str, float]:
            """Entitled minus consumed GPU-seconds per declared tenant.

            Entitlement is the tenant's share-weighted slice of the live
            fleet capacity integrated from t=0; positive deficit means the
            tenant is owed capacity and fair-share should favour it.
            """
            if not tenant_mode:
                return {}
            live = dict(consumed)
            for attempt in entries.values():
                live[attempt.job.tenant] = live.get(attempt.job.tenant, 0.0) + (
                    attempt.gpus * (t - attempt.start)
                )
            fleet = sum(max(0, capacity[name] - down[name]) for name in capacity)
            total_weight = sum(share_weight.values()) or 1.0
            return {
                name: fleet * share_weight[name] / total_weight * t - live.get(name, 0.0)
                for name in tenant_specs
            }

        def scheduling_context(t: float) -> Optional[SchedulingContext]:
            if not tenant_aware:
                return None
            return SchedulingContext(
                now=t,
                tenants=tenant_specs,
                usage_gpus=usage_now(),
                deficits=deficits_at(t),
            )

        def eligible_jobs(
            reserved: Optional[Dict[str, int]] = None
        ) -> Tuple[JobSpec, ...]:
            """The queue minus jobs whose tenant GPU quota is exhausted.

            ``reserved`` carries same-instant placements that have not
            become live attempts yet (place_pass reserves GPUs before
            starting the batch), so a tenant cannot blow through its
            quota within one drain instant.
            """
            if not tenant_mode:
                return tuple(queue)
            usage = usage_now()
            for tenant, gpus in (reserved or {}).items():
                usage[tenant] = usage.get(tenant, 0) + gpus
            pending = []
            for job in queue:
                spec = tenant_specs.get(job.tenant)
                if (
                    spec is not None
                    and spec.quota_gpus is not None
                    and usage.get(job.tenant, 0) + job.gpus > spec.quota_gpus
                ):
                    continue
                pending.append(job)
            return tuple(pending)

        def settle(attempt: _Attempt, t: float) -> None:
            """Convert wall time since the last settle into nominal progress."""
            elapsed = t - attempt.last_settle
            if elapsed > 0:
                attempt.nominal_remaining -= elapsed / factor[attempt.node.name]
                attempt.last_settle = t

        def rebuild_heap() -> None:
            heap[:] = [(attempt.finish, attempt.seq) for attempt in entries.values()]
            heapq.heapify(heap)

        def sized_job(job: JobSpec, gpus: int) -> JobSpec:
            return job if gpus == job.gpus else replace(job, gpus=gpus)

        def start_attempt(
            job: JobSpec, node: NodeSpec, gpus: int, t: float, action: str
        ) -> None:
            nonlocal events, peak_heap
            events += 1
            prog = progress[job.job_id]
            overhead = 0.0 if prog.attempts == 0 else self.recovery.overhead(action)
            attempt_full = self.service_time(sized_job(job, gpus), node)
            nominal_total = overhead + (1.0 - prog.done) * attempt_full
            finish = t + nominal_total * factor[node.name]
            seq = next(sequence)
            entries[seq] = _Attempt(
                seq=seq,
                job=job,
                node=node,
                gpus=gpus,
                overhead=overhead,
                attempt_full=attempt_full,
                nominal_total=nominal_total,
                nominal_remaining=nominal_total,
                last_settle=t,
                start=t,
                finish=finish,
            )
            heapq.heappush(heap, (finish, seq))
            if len(heap) > peak_heap:
                peak_heap = len(heap)
            used[node.name] += gpus
            if prog.first_start is None:
                prog.first_start = t
            if prog.interrupted_at is not None:
                delay = t - prog.interrupted_at
                prog.recoveries.append(delay)
                recoveries.append(delay)
                prog.interrupted_at = None
            prog.attempts += 1

        def interrupt(attempt: _Attempt, t: float) -> None:
            """Evict a running attempt, charging checkpoint/restart losses."""
            settle(attempt, t)
            prog = progress[attempt.job.job_id]
            done_nominal = attempt.nominal_total - attempt.nominal_remaining
            productive = max(0.0, done_nominal - attempt.overhead)
            lost = self.recovery.lost_seconds(
                attempt.job.strategy, attempt.gpus, productive
            )
            preserved = max(0.0, productive - lost)
            if attempt.attempt_full > 0:
                prog.done = min(1.0, prog.done + preserved / attempt.attempt_full)
            wall = t - attempt.start
            node_busy[attempt.node.name] += attempt.gpus * wall
            prog.gpu_seconds += attempt.gpus * wall
            prog.wasted_gpu_seconds += attempt.gpus * max(0.0, wall - preserved)
            prog.preemptions += 1
            prog.interrupted_at = t
            prog.cost_usd += gpu_cost(
                attempt.node.server, attempt.gpus, attempt.start, t, self.price_curve
            )
            consumed[attempt.job.tenant] = (
                consumed.get(attempt.job.tenant, 0.0) + attempt.gpus * wall
            )
            used[attempt.node.name] -= attempt.gpus
            del entries[attempt.seq]

        def complete(attempt: _Attempt, t: float) -> None:
            prog = progress[attempt.job.job_id]
            wall = t - attempt.start
            node_busy[attempt.node.name] += attempt.gpus * wall
            prog.gpu_seconds += attempt.gpus * wall
            prog.wasted_gpu_seconds += attempt.gpus * attempt.overhead
            prog.cost_usd += gpu_cost(
                attempt.node.server, attempt.gpus, attempt.start, t, self.price_curve
            )
            consumed[attempt.job.tenant] = (
                consumed.get(attempt.job.tenant, 0.0) + attempt.gpus * wall
            )
            used[attempt.node.name] -= attempt.gpus
            del entries[attempt.seq]
            job = attempt.job
            cell = sized_job(job, attempt.gpus).experiment_config(
                attempt.node.server
            ).cell_label()
            assert prog.first_start is not None
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    node=attempt.node.name,
                    gpus=job.gpus,
                    strategy=job.strategy,
                    cell=cell,
                    arrival_time=job.arrival_time,
                    start_time=prog.first_start,
                    finish_time=t,
                    preemptions=prog.preemptions,
                    gpu_seconds=prog.gpu_seconds,
                    wasted_gpu_seconds=prog.wasted_gpu_seconds,
                    recovery_seconds=sum(prog.recoveries),
                    final_gpus=attempt.gpus,
                    tenant=job.tenant,
                    deadline=job.deadline,
                    cost_usd=prog.cost_usd,
                )
            )

        def evict_for_capacity(node_name: str, t: float) -> List[JobSpec]:
            """Interrupt youngest gangs until the node fits its capacity."""
            victims: List[JobSpec] = []
            available = max(0, capacity[node_name] - down[node_name])
            if used[node_name] <= available:
                return victims
            node_attempts = sorted(
                (a for a in entries.values() if a.node.name == node_name),
                key=lambda a: (a.start, a.seq),
                reverse=True,
            )
            for attempt in node_attempts:
                if used[node_name] <= available:
                    break
                job = attempt.job
                interrupt(attempt, t)
                victims.append(job)
            return victims

        def recover(victims: List[JobSpec], lost_node: str, t: float) -> None:
            for job in victims:
                decision = self.elastic.reschedule(
                    job, lost_node, free_map(), self.cluster
                )
                if decision.action == "queue":
                    queue.append(job)
                    continue
                node = self.cluster.node(decision.node)
                gpus = min(decision.gpus, job.gpus)  # a gang never grows
                if free_map().get(node.name, 0) < gpus:
                    raise ClusterError(
                        f"elastic policy {self.elastic.name!r} continued job "
                        f"{job.job_id!r} ({gpus} GPUs) on node {node.name!r} "
                        f"with only {free_map().get(node.name, 0)} free"
                    )
                action = "shrink" if node.name == lost_node else "migrate"
                start_attempt(job, node, gpus, t, action)

        def place_pass(t: float) -> bool:
            """One round of placements as far as the policy allows.

            Decisions are collected first (reserving GPUs so the policy sees
            a correct ledger), the missing epoch-time cells batch-fill in
            one fan-out, then the attempts start — identical schedule, one
            memo-fill span per drain instant.  Tenant quotas filter the
            queue the policy sees; tenant-aware policies additionally get a
            :class:`SchedulingContext` of usage and fair-share deficits.
            """
            placed: List[Tuple[JobSpec, NodeSpec]] = []
            reserved: Dict[str, int] = {}
            while queue:
                pending = eligible_jobs(reserved)
                if not pending:
                    break
                context = scheduling_context(t)
                if context is not None:
                    placement = self.policy.place(
                        pending, free_map(), self.estimate_service_time, context
                    )
                else:
                    placement = self.policy.place(
                        pending, free_map(), self.estimate_service_time
                    )
                if placement is None:
                    break
                job, node = self._resolve(placement, list(pending), free_map())
                queue.remove(job)
                used[node.name] += job.gpus
                reserved[job.tenant] = reserved.get(job.tenant, 0) + job.gpus
                placed.append((job, node))
            if not placed:
                return False
            self._fill_epoch_times(placed)
            for job, node in placed:
                # Hand the reservation back to start_attempt's own ledger
                # update; no policy consultation happens in between.
                used[node.name] -= job.gpus
                start_attempt(job, node, job.gpus, t, "restart")
            return True

        def try_preempt(t: float) -> bool:
            """Voluntarily evict strictly-less-urgent gangs for a starved job.

            Consulted only after a placement pass stalls with jobs still
            queued, and only for policies declaring ``preempts = True``.
            Victims are the youngest strictly-lower-urgency gangs on the
            first node that can host the starved job after eviction; they
            take the standard interrupt path (checkpoint losses, restart
            overhead, recovery latency all charged) and rejoin the queue.
            Urgency comparisons are strict, so preemption chains terminate
            and equal-urgency gangs never thrash.
            """
            if not queue:
                return False
            context = scheduling_context(t)
            urgency = self.policy.urgency
            ranked = sorted(
                eligible_jobs(),
                key=lambda job: (-urgency(job, context), job.arrival_time, job.job_id),
            )
            for job in ranked:
                target = urgency(job, context)
                for node in self.cluster.nodes:
                    available = max(0, capacity[node.name] - down[node.name])
                    if available < job.gpus:
                        continue
                    current_free = free_map()[node.name]
                    victims = sorted(
                        (
                            attempt
                            for attempt in entries.values()
                            if attempt.node.name == node.name
                            and urgency(attempt.job, context) < target
                        ),
                        key=lambda attempt: (attempt.start, attempt.seq),
                        reverse=True,
                    )
                    evict: List[_Attempt] = []
                    gain = 0
                    for attempt in victims:
                        if current_free + gain >= job.gpus:
                            break
                        evict.append(attempt)
                        gain += attempt.gpus
                    if evict and current_free + gain >= job.gpus:
                        for attempt in evict:
                            victim = attempt.job
                            interrupt(attempt, t)
                            queue.append(victim)
                        # The interrupts invalidated the victims' completion
                        # entries; rebuild before the next event is picked.
                        rebuild_heap()
                        return True
            return False

        def drain(t: float) -> None:
            """Place queued gangs, preempting on the policy's behalf if stuck."""
            while True:
                progressed = place_pass(t)
                if not policy_preempts:
                    # place_pass already looped to a policy refusal.
                    return
                if not progressed and not try_preempt(t):
                    return

        while next_arrival < len(arrivals) or queue or entries:
            event_times = []
            if next_arrival < len(arrivals):
                event_times.append(arrivals[next_arrival].arrival_time)
            if heap:
                event_times.append(heap[0][0])
            if timeline:
                event_times.append(timeline[0][0])
            if not event_times:
                # Nothing running, arriving or pending on the fault timeline,
                # yet jobs are queued: kill the gangs the (crash-shrunken)
                # fleet can never host again, then let the rest place.
                peak = max(
                    (max(0, capacity[name] - down[name]) for name in capacity),
                    default=0,
                )

                def never_fits(job: JobSpec) -> bool:
                    if job.gpus > peak:
                        return True
                    spec = tenant_specs.get(job.tenant)
                    # A gang larger than its tenant's whole quota can never
                    # start, however idle the fleet.
                    return spec is not None and spec.quota_gpus is not None and (
                        job.gpus > spec.quota_gpus
                    )

                unplaceable = [job for job in queue if never_fits(job)]
                if unplaceable:
                    for job in unplaceable:
                        queue.remove(job)
                        prog = progress[job.job_id]
                        killed.append(
                            {
                                "job_id": job.job_id,
                                "gpus": job.gpus,
                                "preemptions": prog.preemptions,
                                "gpu_seconds": prog.gpu_seconds,
                                "wasted_gpu_seconds": prog.wasted_gpu_seconds,
                                "killed_at": now,
                                "tenant": job.tenant,
                                "deadline": job.deadline,
                                "cost_usd": prog.cost_usd,
                            }
                        )
                    # The kills may have unblocked head-of-line placement;
                    # drain before picking the next event.
                    drain(now)
                    continue
                stuck = [job.job_id for job in queue]
                raise ClusterError(
                    f"policy {self.policy.name!r} made no progress with an idle "
                    f"fleet; stuck jobs: {stuck}"
                )
            now = min(event_times)

            # 1. Completions first, so freed gangs are placeable this instant.
            while heap and heap[0][0] <= now:
                finish, seq = heapq.heappop(heap)
                events += 1
                complete(entries[seq], finish)

            # 2. Fault-timeline events due at this instant, in trace order.
            dirty = False
            while timeline and timeline[0][0] <= now:
                _, _, action, payload = timeline.popleft()
                events += 1
                event, token = payload
                name = event.node
                if action == "crash":
                    amount = event.gpus if event.gpus is not None else capacity[name]
                    capacity[name] = max(0, capacity[name] - amount)
                    recover(evict_for_capacity(name, now), name, now)
                    dirty = True
                elif action == "down":
                    amount = event.gpus if event.gpus is not None else capacity[name]
                    take = max(0, min(amount, capacity[name] - down[name]))
                    token["taken"] = take
                    down[name] += take
                    recover(evict_for_capacity(name, now), name, now)
                    dirty = True
                elif action == "up":
                    down[name] = max(0, down[name] - token.get("taken", 0))
                elif action == "slow":
                    for attempt in entries.values():
                        if attempt.node.name == name:
                            settle(attempt, now)
                    factor[name] *= event.factor
                    for attempt in entries.values():
                        if attempt.node.name == name:
                            attempt.finish = now + attempt.nominal_remaining * factor[name]
                    dirty = True
                else:  # fast
                    for attempt in entries.values():
                        if attempt.node.name == name:
                            settle(attempt, now)
                    factor[name] = max(1.0, factor[name] / event.factor)
                    for attempt in entries.values():
                        if attempt.node.name == name:
                            attempt.finish = now + attempt.nominal_remaining * factor[name]
                    dirty = True
            if dirty:
                rebuild_heap()

            # 3. Arrivals due at this instant.
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].arrival_time <= now
            ):
                queue.append(arrivals[next_arrival])
                next_arrival += 1
                events += 1

            # 4. Drain the queue as far as the placement policy allows.
            drain(now)

        self._last_events = events
        self._last_peak_heap = peak_heap
        return ClusterReport(
            policy=self.policy.name,
            cluster_name=self.cluster.name,
            workload_name=workload.name,
            node_gpus=self.cluster.node_gpus(),
            records=tuple(records),
            fault_events=tuple(event.to_dict() for event in trace_events),
            fault_trace_name=trace.name if trace is not None else None,
            elastic_policy=self.elastic.name if trace is not None else None,
            recoveries=tuple(recoveries),
            killed=tuple(killed),
            node_busy_gpu_seconds=dict(node_busy),
            tenants=tuple(spec.to_dict() for spec in workload.tenants),
            price_curve=self.price_curve.name if self.price_curve is not None else None,
        )

    # ------------------------------------------------------------------ #
    def _resolve(
        self, placement: Placement, queue: List[JobSpec], free: Dict[str, int]
    ) -> Tuple[JobSpec, NodeSpec]:
        """Validate a policy's decision against the queue and the ledger."""
        matches = [job for job in queue if job.job_id == placement.job_id]
        if not matches:
            raise ClusterError(
                f"policy {self.policy.name!r} placed unknown job "
                f"{placement.job_id!r} (not in queue)"
            )
        job = matches[0]
        node = self.cluster.node(placement.node)
        if free[node.name] < job.gpus:
            raise ClusterError(
                f"policy {self.policy.name!r} placed job {job.job_id!r} "
                f"({job.gpus} GPUs) on node {node.name!r} with only "
                f"{free[node.name]} free"
            )
        return job, node


def run_policy_comparison(
    cluster: ClusterSpec,
    workload: Workload,
    policies: Optional[Tuple[str, ...]] = None,
    session: Optional[Session] = None,
    faults: Union[FaultTrace, FaultModel, str, None] = None,
    elastic: Union[str, ReschedulePolicy] = "restart",
    recovery: Optional[RecoveryModel] = None,
    fault_seed: int = 0,
    price_curve: Optional[PriceCurve] = None,
) -> Dict[str, ClusterReport]:
    """Serve one workload under several policies, sharing one session.

    ``policies`` defaults to every registered placement policy.  The
    session *and* the per-cell epoch-time memo are shared across the
    per-policy simulators, so later policies replay the fleet with zero
    additional profile builds and zero additional discrete-event
    simulations.  When a fault source is given, every policy faces the
    *same* trace (models materialise once, deterministic in the seed),
    so the comparison isolates the policy.

    Example:
        >>> from repro.cluster.simulator import run_policy_comparison
        >>> from repro.cluster.spec import default_cluster
        >>> from repro.cluster.workload import poisson_workload
        >>> workload = poisson_workload(num_jobs=6, rate=0.5)
        >>> reports = run_policy_comparison(default_cluster(), workload,
        ...                                 policies=("fifo", "sjf"))
        >>> sorted(reports)
        ['fifo', 'sjf']
    """
    if policies is None:
        policies = POLICIES.names()
    shared = session if session is not None else Session()
    trace = resolve_faults(faults, cluster, workload, seed=fault_seed)
    epoch_times: Dict[EpochKey, float] = {}
    reports: Dict[str, ClusterReport] = {}
    for name in policies:
        simulator = ClusterSimulator(
            cluster,
            policy=name,
            session=shared,
            epoch_time_cache=epoch_times,
            faults=trace,
            elastic=elastic,
            recovery=recovery,
            fault_seed=fault_seed,
            price_curve=price_curve,
        )
        reports[name] = simulator.run(workload)
    return reports


__all__ = [
    "ClusterSimulator",
    "EpochKey",
    "ELASTIC_POLICIES",
    "run_policy_comparison",
]
