"""Fleet topology: heterogeneous multi-GPU nodes composed into a cluster.

A :class:`NodeSpec` names one machine of an existing single-server preset
(``"a6000"`` or ``"2080ti"``, paper Table I) with its own GPU inventory; a
:class:`ClusterSpec` is an ordered collection of such nodes.  The cluster
layer never re-models hardware — when a job lands on a node, the simulator
materialises the node as a plain :class:`~repro.hardware.server.ServerSpec`
sized to the job's gang, so every per-node timing comes from the same cost
models the single-server reproduction already validates.

Documented in ``docs/API.md`` (cluster layer) and ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.core.config import VALID_SERVERS
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec, get_server


@dataclass(frozen=True)
class NodeSpec:
    """One machine of the fleet: a named instance of a server preset.

    Example:
        >>> from repro.cluster.spec import NodeSpec
        >>> node = NodeSpec(name="a6000-0", server="a6000", num_gpus=4)
        >>> node.build_server(num_gpus=2).num_devices
        2
    """

    name: str
    server: str = "a6000"
    num_gpus: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")
        if self.server not in VALID_SERVERS:
            raise ConfigurationError(
                f"node {self.name!r} server must be one of {VALID_SERVERS}, "
                f"got {self.server!r}"
            )
        if self.num_gpus < 1:
            raise ConfigurationError(f"node {self.name!r} must have >= 1 GPU")

    def build_server(self, num_gpus: int | None = None) -> ServerSpec:
        """Materialise this node (or a ``num_gpus``-sized slice of it)."""
        gpus = self.num_gpus if num_gpus is None else num_gpus
        if gpus < 1 or gpus > self.num_gpus:
            raise ConfigurationError(
                f"cannot build a {gpus}-GPU slice of node {self.name!r} "
                f"({self.num_gpus} GPUs)"
            )
        return get_server(self.server, gpus)

    def describe(self) -> str:
        return f"{self.name}: {self.num_gpus}x {self.server}"

    def to_dict(self) -> dict:
        return {"name": self.name, "server": self.server, "num_gpus": self.num_gpus}

    @classmethod
    def from_dict(cls, payload: dict) -> "NodeSpec":
        return cls(
            name=payload["name"],
            server=payload["server"],
            num_gpus=int(payload["num_gpus"]),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered fleet of nodes jobs are gang-scheduled onto.

    Example:
        >>> from repro.cluster.spec import cluster_from_shorthand
        >>> fleet = cluster_from_shorthand("a6000:4,2080ti:2")
        >>> (fleet.num_nodes, fleet.total_gpus, fleet.max_gpus_per_node)
        (2, 6, 4)
    """

    name: str
    nodes: Tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError(f"cluster {self.name!r} has no nodes")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"cluster {self.name!r} has duplicate node names")

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(node.num_gpus for node in self.nodes)

    @property
    def max_gpus_per_node(self) -> int:
        return max(node.num_gpus for node in self.nodes)

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(
            f"unknown node {name!r}; cluster nodes: {[n.name for n in self.nodes]}"
        )

    def node_gpus(self) -> Dict[str, int]:
        """GPU inventory per node, in cluster order."""
        return {node.name: node.num_gpus for node in self.nodes}

    def __iter__(self) -> Iterator[NodeSpec]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        lines = [f"{self.name}: {self.num_nodes} nodes, {self.total_gpus} GPUs"]
        lines.extend("  " + node.describe() for node in self.nodes)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"name": self.name, "nodes": [node.to_dict() for node in self.nodes]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterSpec":
        return cls(
            name=payload["name"],
            nodes=tuple(NodeSpec.from_dict(node) for node in payload["nodes"]),
        )


# ---------------------------------------------------------------------- #
# Presets and shorthand
# ---------------------------------------------------------------------- #
def default_cluster(
    num_a6000: int = 2, num_2080ti: int = 2, gpus_per_node: int = 4
) -> ClusterSpec:
    """A small heterogeneous fleet mixing both of the paper's server types.

    Example:
        >>> from repro.cluster.spec import default_cluster
        >>> default_cluster().node_gpus()
        {'a6000-0': 4, 'a6000-1': 4, '2080ti-0': 4, '2080ti-1': 4}
    """
    if num_a6000 + num_2080ti < 1:
        raise ConfigurationError("cluster needs at least one node")
    nodes = []
    for index in range(num_a6000):
        nodes.append(NodeSpec(name=f"a6000-{index}", server="a6000", num_gpus=gpus_per_node))
    for index in range(num_2080ti):
        nodes.append(
            NodeSpec(name=f"2080ti-{index}", server="2080ti", num_gpus=gpus_per_node)
        )
    return ClusterSpec(name=f"{num_a6000 + num_2080ti}-node fleet", nodes=tuple(nodes))


def cluster_from_shorthand(spec: str, name: str = "cluster") -> ClusterSpec:
    """Parse ``"a6000:4,a6000:4,2080ti:4"`` into a :class:`ClusterSpec`.

    Each comma-separated entry is ``<preset>[:<num_gpus>]`` (GPU count
    defaults to 4).  Node names are generated as ``<preset>-<ordinal>``.

    Example:
        >>> from repro.cluster.spec import cluster_from_shorthand
        >>> [node.name for node in cluster_from_shorthand("a6000:4,a6000:2")]
        ['a6000-0', 'a6000-1']
    """
    entries = [entry.strip() for entry in spec.split(",") if entry.strip()]
    if not entries:
        raise ConfigurationError(f"empty cluster shorthand {spec!r}")
    counts: Dict[str, int] = {}
    nodes = []
    for entry in entries:
        preset, _, gpus_text = entry.partition(":")
        try:
            gpus = int(gpus_text) if gpus_text else 4
        except ValueError:
            raise ConfigurationError(
                f"bad GPU count in cluster shorthand entry {entry!r}"
            ) from None
        ordinal = counts.get(preset, 0)
        counts[preset] = ordinal + 1
        nodes.append(NodeSpec(name=f"{preset}-{ordinal}", server=preset, num_gpus=gpus))
    return ClusterSpec(name=name, nodes=tuple(nodes))
