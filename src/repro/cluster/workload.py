"""Multi-job workloads: job specs, seeded generators and JSON trace replay.

A :class:`JobSpec` is one distillation job submitted to the fleet — an
experiment cell (task, dataset, batch size, strategy) plus a GPU gang size,
an arrival time and an epoch count.  The job deliberately does *not* fix a
server preset: which hardware it runs on is the scheduler's decision, so the
:class:`~repro.core.config.ExperimentConfig` is only materialised once a
placement names a node.

Workloads come from four sources, all deterministic:

* :func:`poisson_workload` — memoryless arrivals at a given rate (the classic
  open-loop traffic model),
* :func:`bursty_workload` — synchronised bursts separated by lulls (the
  hardest case for gang scheduling, since a burst's gangs contend at once),
* :func:`diurnal_workload` / :func:`tenant_workload` — time-varying arrivals
  and multi-tenant fleets: each :class:`TenantSpec` (priority, GPU quota,
  budget, deadline policy) contributes its own seeded sub-stream, and jobs
  carry tenant tags + optional deadlines for the SLO analytics,
* :meth:`Workload.load` — JSON trace replay, so real or hand-crafted traces
  run through the exact same simulator path as generated ones.

Documented in ``docs/API.md`` (cluster layer) and ``docs/TENANTS.md``.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.config import ExperimentConfig, VALID_DATASETS, VALID_TASKS
from repro.errors import ConfigurationError
from repro.parallel.registry import REGISTRY

#: How a tenant's job deadlines are interpreted by the SLO analytics.
DEADLINE_POLICIES = ("none", "soft", "strict")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared fleet: identity plus scheduling contract.

    ``priority`` orders tenants for the ``priority`` policy (higher wins
    and may preempt), ``quota_gpus`` caps concurrently-held GPUs,
    ``budget_per_gpu_hour`` is the spot price above which the tenant
    would rather queue, and ``deadline_policy`` says whether this
    tenant's jobs carry deadlines (``"soft"``/``"strict"``) or not
    (``"none"``).  ``rate``/``deadline_slack`` parameterise
    :func:`tenant_workload` generation.

    Example:
        >>> from repro.cluster.workload import TenantSpec
        >>> TenantSpec("prod", priority=2, deadline_policy="strict").to_dict()["name"]
        'prod'
    """

    name: str
    priority: int = 0
    quota_gpus: Optional[int] = None
    budget_per_gpu_hour: Optional[float] = None
    deadline_policy: str = "none"
    rate: Optional[float] = None
    deadline_slack: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or any(ch in self.name for ch in ";:,= "):
            raise ConfigurationError(
                f"tenant name {self.name!r} must be non-empty and free of ';:,= '"
            )
        if self.quota_gpus is not None and self.quota_gpus < 1:
            raise ConfigurationError(f"tenant {self.name!r} quota_gpus must be >= 1")
        if self.budget_per_gpu_hour is not None and self.budget_per_gpu_hour <= 0:
            raise ConfigurationError(f"tenant {self.name!r} budget must be > 0")
        if self.deadline_policy not in DEADLINE_POLICIES:
            raise ConfigurationError(
                f"tenant {self.name!r} deadline_policy must be one of "
                f"{DEADLINE_POLICIES}, got {self.deadline_policy!r}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError(f"tenant {self.name!r} rate must be > 0")
        if self.deadline_slack is not None and self.deadline_slack <= 0:
            raise ConfigurationError(f"tenant {self.name!r} deadline_slack must be > 0")

    @property
    def has_deadlines(self) -> bool:
        return self.deadline_policy != "none"

    def to_dict(self) -> dict:
        payload: dict = {"name": self.name, "priority": self.priority}
        if self.quota_gpus is not None:
            payload["quota_gpus"] = self.quota_gpus
        if self.budget_per_gpu_hour is not None:
            payload["budget_per_gpu_hour"] = self.budget_per_gpu_hour
        if self.deadline_policy != "none":
            payload["deadline_policy"] = self.deadline_policy
        if self.rate is not None:
            payload["rate"] = self.rate
        if self.deadline_slack is not None:
            payload["deadline_slack"] = self.deadline_slack
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSpec":
        return cls(
            name=str(payload["name"]),
            priority=int(payload.get("priority", 0)),
            quota_gpus=(
                int(payload["quota_gpus"]) if payload.get("quota_gpus") is not None else None
            ),
            budget_per_gpu_hour=(
                float(payload["budget_per_gpu_hour"])
                if payload.get("budget_per_gpu_hour") is not None
                else None
            ),
            deadline_policy=str(payload.get("deadline_policy", "none")),
            rate=float(payload["rate"]) if payload.get("rate") is not None else None,
            deadline_slack=(
                float(payload["deadline_slack"])
                if payload.get("deadline_slack") is not None
                else None
            ),
        )


#: Shorthand keys accepted by :func:`parse_tenant_shorthand`.
_TENANT_KEYS = {
    "priority": ("priority", int),
    "quota": ("quota_gpus", int),
    "budget": ("budget_per_gpu_hour", float),
    "deadline": ("deadline_policy", str),
    "rate": ("rate", float),
    "slack": ("deadline_slack", float),
}


def parse_tenant_shorthand(text: str) -> Tuple[TenantSpec, ...]:
    """Parse the CLI/API tenant shorthand into :class:`TenantSpec` tuples.

    Grammar: ``name[:key=value[,key=value...]]`` joined by ``;``.  Keys:
    ``priority`` (int), ``quota`` (GPUs), ``budget`` ($/GPU-hour),
    ``deadline`` (``none``/``soft``/``strict``), ``rate`` (jobs/sec),
    ``slack`` (deadline slack seconds).

    Example:
        >>> from repro.cluster.workload import parse_tenant_shorthand
        >>> prod, batch = parse_tenant_shorthand(
        ...     "prod:priority=2,quota=8,deadline=strict;batch")
        >>> (prod.priority, prod.quota_gpus, batch.name)
        (2, 8, 'batch')
    """
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, options = chunk.partition(":")
        kwargs: dict = {}
        for option in filter(None, (o.strip() for o in options.split(","))):
            key, sep, value = option.partition("=")
            if not sep or key not in _TENANT_KEYS:
                raise ConfigurationError(
                    f"bad tenant option {option!r} for {name.strip()!r}; "
                    f"known keys: {sorted(_TENANT_KEYS)}"
                )
            field_name, cast = _TENANT_KEYS[key]
            try:
                kwargs[field_name] = cast(value)
            except ValueError as error:
                raise ConfigurationError(
                    f"bad tenant option {option!r}: {error}"
                ) from None
        specs.append(TenantSpec(name=name.strip(), **kwargs))
    if not specs:
        raise ConfigurationError(f"tenant shorthand {text!r} names no tenants")
    return tuple(specs)


@dataclass(frozen=True)
class JobSpec:
    """One distillation job in a cluster workload.

    Example:
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=2,
        ...               batch_size=128, strategy="TR", simulated_steps=4)
        >>> job.experiment_config("a6000").cell_label()
        'nas/cifar10/a6000x2/b128'
    """

    job_id: str
    arrival_time: float
    gpus: int
    task: str = "nas"
    dataset: str = "cifar10"
    batch_size: int = 256
    strategy: str = "TR+DPU+AHD"
    epochs: int = 1
    simulated_steps: int = 6
    tenant: str = "default"
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if not self.tenant:
            raise ConfigurationError(f"job {self.job_id!r} tenant must be non-empty")
        if self.deadline is not None and self.deadline <= self.arrival_time:
            raise ConfigurationError(
                f"job {self.job_id!r} deadline ({self.deadline}) must be after "
                f"its arrival ({self.arrival_time})"
            )
        if self.arrival_time < 0:
            raise ConfigurationError(f"job {self.job_id!r} arrival_time must be >= 0")
        if self.gpus < 1:
            raise ConfigurationError(f"job {self.job_id!r} must request >= 1 GPU")
        if self.epochs < 1:
            raise ConfigurationError(f"job {self.job_id!r} must train >= 1 epoch")
        if self.task not in VALID_TASKS:
            raise ConfigurationError(
                f"job {self.job_id!r} task must be one of {VALID_TASKS}, got {self.task!r}"
            )
        if self.dataset not in VALID_DATASETS:
            raise ConfigurationError(
                f"job {self.job_id!r} dataset must be one of {VALID_DATASETS}, "
                f"got {self.dataset!r}"
            )
        if self.batch_size < self.gpus:
            raise ConfigurationError(
                f"job {self.job_id!r} batch_size ({self.batch_size}) must be >= "
                f"gpus ({self.gpus})"
            )
        if self.strategy not in REGISTRY:
            raise ConfigurationError(
                f"job {self.job_id!r} uses unknown strategy {self.strategy!r}; "
                f"registered: {REGISTRY.names()}"
            )
        if self.simulated_steps < 4:
            raise ConfigurationError(
                f"job {self.job_id!r} simulated_steps must be >= 4, "
                f"got {self.simulated_steps}"
            )

    # ------------------------------------------------------------------ #
    def experiment_config(self, server: str) -> ExperimentConfig:
        """The single-server experiment cell this job runs once placed."""
        return ExperimentConfig(
            task=self.task,
            dataset=self.dataset,
            server=server,
            num_gpus=self.gpus,
            batch_size=self.batch_size,
            strategy=self.strategy,
            simulated_steps=self.simulated_steps,
        )

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.task}/{self.dataset} b{self.batch_size} "
            f"{self.strategy} x{self.gpus}gpu, {self.epochs} epoch(s), "
            f"t={self.arrival_time:.1f}s"
        )

    def to_dict(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "arrival_time": self.arrival_time,
            "gpus": self.gpus,
            "task": self.task,
            "dataset": self.dataset,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "epochs": self.epochs,
            "simulated_steps": self.simulated_steps,
        }
        # Emitted only when set, so pre-tenancy traces stay byte-identical.
        if self.tenant != "default":
            payload["tenant"] = self.tenant
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            job_id=payload["job_id"],
            arrival_time=float(payload["arrival_time"]),
            gpus=int(payload["gpus"]),
            task=payload.get("task", "nas"),
            dataset=payload.get("dataset", "cifar10"),
            batch_size=int(payload.get("batch_size", 256)),
            strategy=payload.get("strategy", "TR+DPU+AHD"),
            epochs=int(payload.get("epochs", 1)),
            simulated_steps=int(payload.get("simulated_steps", 6)),
            tenant=payload.get("tenant", "default"),
            deadline=(
                float(payload["deadline"]) if payload.get("deadline") is not None else None
            ),
        )


@dataclass(frozen=True)
class JobMix:
    """The categorical mix a workload generator samples jobs from.

    Example:
        >>> import random
        >>> from repro.cluster.workload import JobMix
        >>> mix = JobMix(gpu_demands=(2,), strategies=("TR",))
        >>> mix.sample(random.Random(0), "j0", 1.0).strategy
        'TR'
    """

    tasks: Tuple[str, ...] = ("nas", "compression")
    datasets: Tuple[str, ...] = ("cifar10",)
    batch_sizes: Tuple[int, ...] = (128, 256)
    gpu_demands: Tuple[int, ...] = (1, 2, 4)
    strategies: Tuple[str, ...] = ("TR+DPU+AHD", "TR")
    epochs: Tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        for field_name in (
            "tasks",
            "datasets",
            "batch_sizes",
            "gpu_demands",
            "strategies",
            "epochs",
        ):
            if not getattr(self, field_name):
                raise ConfigurationError(f"job mix {field_name} must be non-empty")

    def sample(self, rng: random.Random, job_id: str, arrival_time: float) -> JobSpec:
        """Draw one job; every categorical axis is sampled independently."""
        return JobSpec(
            job_id=job_id,
            arrival_time=arrival_time,
            gpus=rng.choice(self.gpu_demands),
            task=rng.choice(self.tasks),
            dataset=rng.choice(self.datasets),
            batch_size=rng.choice(self.batch_sizes),
            strategy=rng.choice(self.strategies),
            epochs=rng.choice(self.epochs),
        )


#: Default mix: both paper tasks, CIFAR-scale data, mixed gangs and strategies.
DEFAULT_MIX = JobMix()


@dataclass(frozen=True)
class Workload:
    """An arrival-ordered stream of jobs submitted to the cluster.

    Example:
        >>> from repro.cluster.workload import poisson_workload
        >>> workload = poisson_workload(num_jobs=5, rate=1.0, seed=0)
        >>> (len(workload), workload.max_gpu_demand <= 4)
        (5, True)
    """

    name: str
    jobs: Tuple[JobSpec, ...]
    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"workload {self.name!r} has duplicate job ids")
        arrivals = [job.arrival_time for job in self.jobs]
        if arrivals != sorted(arrivals):
            raise ConfigurationError(
                f"workload {self.name!r} jobs must be sorted by arrival time"
            )
        tenant_names = [spec.name for spec in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigurationError(f"workload {self.name!r} has duplicate tenants")
        if self.tenants:
            declared = set(tenant_names)
            unknown = sorted({job.tenant for job in self.jobs} - declared)
            if unknown:
                raise ConfigurationError(
                    f"workload {self.name!r} jobs reference undeclared tenants "
                    f"{unknown}; declared: {sorted(declared)}"
                )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    @property
    def max_gpu_demand(self) -> int:
        return max((job.gpus for job in self.jobs), default=0)

    @property
    def duration(self) -> float:
        """Span of the arrival process (latest arrival time).

        Computed as a max rather than ``jobs[-1]`` so the answer stays
        right even if a subclass or future constructor relaxes the
        sorted-arrivals invariant that ``__post_init__`` enforces today.
        """
        return max((job.arrival_time for job in self.jobs), default=0.0)

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        """Declared tenants, or the distinct job tags when none declared."""
        if self.tenants:
            return tuple(spec.name for spec in self.tenants)
        return tuple(sorted({job.tenant for job in self.jobs}))

    def tenant_map(self) -> Mapping[str, TenantSpec]:
        return {spec.name: spec for spec in self.tenants}

    def scaled_arrivals(self, factor: float) -> "Workload":
        """The same jobs with arrival times compressed/stretched by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("arrival scale factor must be > 0")
        return Workload(
            name=f"{self.name} (x{factor:g} arrivals)",
            jobs=tuple(
                replace(
                    job,
                    arrival_time=job.arrival_time * factor,
                    deadline=None if job.deadline is None else job.deadline * factor,
                )
                for job in self.jobs
            ),
            tenants=self.tenants,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.jobs)} jobs over {self.duration:.1f}s, "
            f"max gang {self.max_gpu_demand} GPUs"
        )

    # ------------------------------------------------------------------ #
    # JSON trace replay
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        payload: dict = {"name": self.name, "jobs": [job.to_dict() for job in self.jobs]}
        if self.tenants:
            payload["tenants"] = [spec.to_dict() for spec in self.tenants]
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "Workload":
        jobs = sorted(
            (JobSpec.from_dict(job) for job in payload["jobs"]),
            key=lambda job: job.arrival_time,
        )
        return cls(
            name=payload.get("name", "trace"),
            jobs=tuple(jobs),
            tenants=tuple(
                TenantSpec.from_dict(spec) for spec in payload.get("tenants", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        return cls.from_json(Path(path).read_text())


# ---------------------------------------------------------------------- #
# Generators (seeded, deterministic)
# ---------------------------------------------------------------------- #
def poisson_workload(
    num_jobs: int,
    rate: float,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
    name: str | None = None,
) -> Workload:
    """Poisson arrivals: exponential inter-arrival gaps at ``rate`` jobs/sec.

    Example:
        >>> from repro.cluster.workload import poisson_workload
        >>> first = poisson_workload(num_jobs=3, rate=0.5, seed=1)
        >>> second = poisson_workload(num_jobs=3, rate=0.5, seed=1)
        >>> first == second  # seeded, deterministic
        True
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if rate <= 0:
        raise ConfigurationError("arrival rate must be > 0")
    rng = random.Random(seed)
    jobs = []
    now = 0.0
    for index in range(num_jobs):
        now += rng.expovariate(rate)
        jobs.append(mix.sample(rng, job_id=f"job-{index:04d}", arrival_time=now))
    return Workload(
        name=name or f"poisson(rate={rate:g}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
    )


def bursty_workload(
    num_jobs: int,
    burst_size: int = 8,
    burst_gap: float = 120.0,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
    name: str | None = None,
) -> Workload:
    """Bursty arrivals: gangs land ``burst_size`` at a time, then a lull.

    All jobs of a burst share one arrival instant — the adversarial case for
    gang scheduling, because every gang in the burst contends for the fleet
    simultaneously.  Lulls between bursts are exponential with mean
    ``burst_gap`` seconds.

    Example:
        >>> from repro.cluster.workload import bursty_workload
        >>> workload = bursty_workload(num_jobs=6, burst_size=3, seed=0)
        >>> arrivals = [job.arrival_time for job in workload]
        >>> len(set(arrivals))  # two bursts -> two distinct instants
        2
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")
    if burst_gap <= 0:
        raise ConfigurationError("burst_gap must be > 0")
    rng = random.Random(seed)
    jobs = []
    now = 0.0
    index = 0
    while index < num_jobs:
        now += rng.expovariate(1.0 / burst_gap)
        for _ in range(min(burst_size, num_jobs - index)):
            jobs.append(mix.sample(rng, job_id=f"job-{index:04d}", arrival_time=now))
            index += 1
    return Workload(
        name=name or f"bursty(size={burst_size}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
    )


def _diurnal_arrivals(
    rng: random.Random,
    num_jobs: int,
    base_rate: float,
    peak_rate: float,
    period: float,
) -> list:
    """Poisson-thinning arrivals for a sinusoidal rate profile.

    The instantaneous rate swings between ``base_rate`` (trough, at
    t=0) and ``peak_rate`` over each ``period`` seconds; candidates are
    drawn at the peak rate and accepted with probability
    ``rate(t) / peak_rate`` — the standard thinning construction for a
    non-homogeneous Poisson process.
    """
    arrivals = []
    now = 0.0
    while len(arrivals) < num_jobs:
        now += rng.expovariate(peak_rate)
        rate = base_rate + (peak_rate - base_rate) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * now / period)
        )
        if rng.random() < rate / peak_rate:
            arrivals.append(now)
    return arrivals


def diurnal_workload(
    num_jobs: int,
    *,
    base_rate: float = 0.02,
    peak_rate: float = 0.2,
    period: float = 3600.0,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
    name: str | None = None,
) -> Workload:
    """Diurnal arrivals: a sinusoidal rate between trough and peak.

    Example:
        >>> from repro.cluster.workload import diurnal_workload
        >>> first = diurnal_workload(6, seed=3)
        >>> first == diurnal_workload(6, seed=3)  # seeded, deterministic
        True
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if base_rate <= 0 or peak_rate <= 0:
        raise ConfigurationError("diurnal rates must be > 0")
    if peak_rate < base_rate:
        raise ConfigurationError("peak_rate must be >= base_rate")
    if period <= 0:
        raise ConfigurationError("diurnal period must be > 0")
    rng = random.Random(seed)
    jobs = [
        mix.sample(rng, job_id=f"job-{index:04d}", arrival_time=arrival)
        for index, arrival in enumerate(
            _diurnal_arrivals(rng, num_jobs, base_rate, peak_rate, period)
        )
    ]
    return Workload(
        name=name or f"diurnal(peak={peak_rate:g}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
    )


def tenant_workload(
    tenants: Sequence[TenantSpec],
    num_jobs: int,
    *,
    rate: float = 0.1,
    seed: int = 0,
    mixes: Optional[Mapping[str, JobMix]] = None,
    deadline_slack: float = 900.0,
    diurnal: bool = False,
    period: float = 3600.0,
    name: str | None = None,
) -> Workload:
    """A multi-tenant workload: one seeded sub-stream per tenant, merged.

    ``num_jobs`` is split across tenants in proportion to their declared
    ``rate`` (tenants without one share the ``rate`` argument equally).
    Each tenant draws from its own ``random.Random(f"{seed}:{name}")``
    stream, so adding a tenant never perturbs another tenant's jobs.
    Tenants with a deadline policy get ``arrival + slack`` deadlines
    (their ``deadline_slack``, else the ``deadline_slack`` argument);
    ``diurnal=True`` swaps Poisson arrivals for the sinusoidal profile
    of :func:`diurnal_workload`.

    Example:
        >>> from repro.cluster.workload import TenantSpec, tenant_workload
        >>> fleet = tenant_workload(
        ...     [TenantSpec("prod", priority=1, deadline_policy="strict"),
        ...      TenantSpec("batch")], num_jobs=8, seed=0)
        >>> sorted(fleet.tenant_names)
        ['batch', 'prod']
    """
    if not tenants:
        raise ConfigurationError("tenant_workload needs at least one tenant")
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if rate <= 0:
        raise ConfigurationError("arrival rate must be > 0")
    specs = tuple(tenants)
    default_rate = rate / len(specs)
    weights = [spec.rate if spec.rate is not None else default_rate for spec in specs]
    total_weight = sum(weights)

    # Largest-remainder split of num_jobs proportional to arrival rates.
    shares = [num_jobs * weight / total_weight for weight in weights]
    counts = [int(share) for share in shares]
    remainders = sorted(
        range(len(specs)), key=lambda i: (counts[i] - shares[i], specs[i].name)
    )
    for index in remainders[: num_jobs - sum(counts)]:
        counts[index] += 1

    jobs = []
    for spec, tenant_rate, count in zip(specs, weights, counts):
        if count == 0:
            continue
        rng = random.Random(f"{seed}:{spec.name}")
        mix = (mixes or {}).get(spec.name, DEFAULT_MIX)
        if diurnal:
            arrivals = _diurnal_arrivals(
                rng, count, tenant_rate * 0.25, tenant_rate * 2.0, period
            )
        else:
            arrivals = []
            now = 0.0
            for _ in range(count):
                now += rng.expovariate(tenant_rate)
                arrivals.append(now)
        slack = spec.deadline_slack if spec.deadline_slack is not None else deadline_slack
        for index, arrival in enumerate(arrivals):
            job = mix.sample(rng, job_id=f"{spec.name}-{index:04d}", arrival_time=arrival)
            jobs.append(
                replace(
                    job,
                    tenant=spec.name,
                    deadline=arrival + slack if spec.has_deadlines else None,
                )
            )
    jobs.sort(key=lambda job: (job.arrival_time, job.job_id))
    return Workload(
        name=name
        or f"tenants({'+'.join(spec.name for spec in specs)}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
        tenants=specs,
    )


def replay_workload(path: str | Path) -> Workload:
    """Load a JSON workload trace (alias for :meth:`Workload.load`)."""
    return Workload.load(path)


def arrival_process(
    kind: str,
    num_jobs: int,
    *,
    rate: float = 0.05,
    burst_size: int = 8,
    burst_gap: float = 120.0,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
) -> Workload:
    """Build a workload by arrival-process name.

    ``"poisson"``, ``"bursty"`` and ``"diurnal"`` are understood; the
    diurnal profile swings between ``rate / 4`` and ``2 * rate``.

    Example:
        >>> from repro.cluster.workload import arrival_process
        >>> len(arrival_process("bursty", 4, burst_size=2, seed=0))
        4
    """
    if kind == "poisson":
        return poisson_workload(num_jobs, rate=rate, seed=seed, mix=mix)
    if kind == "bursty":
        return bursty_workload(
            num_jobs, burst_size=burst_size, burst_gap=burst_gap, seed=seed, mix=mix
        )
    if kind == "diurnal":
        return diurnal_workload(
            num_jobs, base_rate=rate * 0.25, peak_rate=rate * 2.0, seed=seed, mix=mix
        )
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; known: 'poisson', 'bursty', 'diurnal'"
    )
