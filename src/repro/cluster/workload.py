"""Multi-job workloads: job specs, seeded generators and JSON trace replay.

A :class:`JobSpec` is one distillation job submitted to the fleet — an
experiment cell (task, dataset, batch size, strategy) plus a GPU gang size,
an arrival time and an epoch count.  The job deliberately does *not* fix a
server preset: which hardware it runs on is the scheduler's decision, so the
:class:`~repro.core.config.ExperimentConfig` is only materialised once a
placement names a node.

Workloads come from three sources, all deterministic:

* :func:`poisson_workload` — memoryless arrivals at a given rate (the classic
  open-loop traffic model),
* :func:`bursty_workload` — synchronised bursts separated by lulls (the
  hardest case for gang scheduling, since a burst's gangs contend at once),
* :meth:`Workload.load` — JSON trace replay, so real or hand-crafted traces
  run through the exact same simulator path as generated ones.

Documented in ``docs/API.md`` (cluster layer).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, Tuple

from repro.core.config import ExperimentConfig, VALID_DATASETS, VALID_TASKS
from repro.errors import ConfigurationError
from repro.parallel.registry import REGISTRY


@dataclass(frozen=True)
class JobSpec:
    """One distillation job in a cluster workload.

    Example:
        >>> from repro.cluster.workload import JobSpec
        >>> job = JobSpec(job_id="j0", arrival_time=0.0, gpus=2,
        ...               batch_size=128, strategy="TR", simulated_steps=4)
        >>> job.experiment_config("a6000").cell_label()
        'nas/cifar10/a6000x2/b128'
    """

    job_id: str
    arrival_time: float
    gpus: int
    task: str = "nas"
    dataset: str = "cifar10"
    batch_size: int = 256
    strategy: str = "TR+DPU+AHD"
    epochs: int = 1
    simulated_steps: int = 6

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if self.arrival_time < 0:
            raise ConfigurationError(f"job {self.job_id!r} arrival_time must be >= 0")
        if self.gpus < 1:
            raise ConfigurationError(f"job {self.job_id!r} must request >= 1 GPU")
        if self.epochs < 1:
            raise ConfigurationError(f"job {self.job_id!r} must train >= 1 epoch")
        if self.task not in VALID_TASKS:
            raise ConfigurationError(
                f"job {self.job_id!r} task must be one of {VALID_TASKS}, got {self.task!r}"
            )
        if self.dataset not in VALID_DATASETS:
            raise ConfigurationError(
                f"job {self.job_id!r} dataset must be one of {VALID_DATASETS}, "
                f"got {self.dataset!r}"
            )
        if self.batch_size < self.gpus:
            raise ConfigurationError(
                f"job {self.job_id!r} batch_size ({self.batch_size}) must be >= "
                f"gpus ({self.gpus})"
            )
        if self.strategy not in REGISTRY:
            raise ConfigurationError(
                f"job {self.job_id!r} uses unknown strategy {self.strategy!r}; "
                f"registered: {REGISTRY.names()}"
            )
        if self.simulated_steps < 4:
            raise ConfigurationError(
                f"job {self.job_id!r} simulated_steps must be >= 4, "
                f"got {self.simulated_steps}"
            )

    # ------------------------------------------------------------------ #
    def experiment_config(self, server: str) -> ExperimentConfig:
        """The single-server experiment cell this job runs once placed."""
        return ExperimentConfig(
            task=self.task,
            dataset=self.dataset,
            server=server,
            num_gpus=self.gpus,
            batch_size=self.batch_size,
            strategy=self.strategy,
            simulated_steps=self.simulated_steps,
        )

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.task}/{self.dataset} b{self.batch_size} "
            f"{self.strategy} x{self.gpus}gpu, {self.epochs} epoch(s), "
            f"t={self.arrival_time:.1f}s"
        )

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "arrival_time": self.arrival_time,
            "gpus": self.gpus,
            "task": self.task,
            "dataset": self.dataset,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "epochs": self.epochs,
            "simulated_steps": self.simulated_steps,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            job_id=payload["job_id"],
            arrival_time=float(payload["arrival_time"]),
            gpus=int(payload["gpus"]),
            task=payload.get("task", "nas"),
            dataset=payload.get("dataset", "cifar10"),
            batch_size=int(payload.get("batch_size", 256)),
            strategy=payload.get("strategy", "TR+DPU+AHD"),
            epochs=int(payload.get("epochs", 1)),
            simulated_steps=int(payload.get("simulated_steps", 6)),
        )


@dataclass(frozen=True)
class JobMix:
    """The categorical mix a workload generator samples jobs from.

    Example:
        >>> import random
        >>> from repro.cluster.workload import JobMix
        >>> mix = JobMix(gpu_demands=(2,), strategies=("TR",))
        >>> mix.sample(random.Random(0), "j0", 1.0).strategy
        'TR'
    """

    tasks: Tuple[str, ...] = ("nas", "compression")
    datasets: Tuple[str, ...] = ("cifar10",)
    batch_sizes: Tuple[int, ...] = (128, 256)
    gpu_demands: Tuple[int, ...] = (1, 2, 4)
    strategies: Tuple[str, ...] = ("TR+DPU+AHD", "TR")
    epochs: Tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        for field_name in (
            "tasks",
            "datasets",
            "batch_sizes",
            "gpu_demands",
            "strategies",
            "epochs",
        ):
            if not getattr(self, field_name):
                raise ConfigurationError(f"job mix {field_name} must be non-empty")

    def sample(self, rng: random.Random, job_id: str, arrival_time: float) -> JobSpec:
        """Draw one job; every categorical axis is sampled independently."""
        return JobSpec(
            job_id=job_id,
            arrival_time=arrival_time,
            gpus=rng.choice(self.gpu_demands),
            task=rng.choice(self.tasks),
            dataset=rng.choice(self.datasets),
            batch_size=rng.choice(self.batch_sizes),
            strategy=rng.choice(self.strategies),
            epochs=rng.choice(self.epochs),
        )


#: Default mix: both paper tasks, CIFAR-scale data, mixed gangs and strategies.
DEFAULT_MIX = JobMix()


@dataclass(frozen=True)
class Workload:
    """An arrival-ordered stream of jobs submitted to the cluster.

    Example:
        >>> from repro.cluster.workload import poisson_workload
        >>> workload = poisson_workload(num_jobs=5, rate=1.0, seed=0)
        >>> (len(workload), workload.max_gpu_demand <= 4)
        (5, True)
    """

    name: str
    jobs: Tuple[JobSpec, ...]

    def __post_init__(self) -> None:
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"workload {self.name!r} has duplicate job ids")
        arrivals = [job.arrival_time for job in self.jobs]
        if arrivals != sorted(arrivals):
            raise ConfigurationError(
                f"workload {self.name!r} jobs must be sorted by arrival time"
            )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    @property
    def max_gpu_demand(self) -> int:
        return max((job.gpus for job in self.jobs), default=0)

    @property
    def duration(self) -> float:
        """Span of the arrival process (last arrival time)."""
        return self.jobs[-1].arrival_time if self.jobs else 0.0

    def scaled_arrivals(self, factor: float) -> "Workload":
        """The same jobs with arrival times compressed/stretched by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("arrival scale factor must be > 0")
        return Workload(
            name=f"{self.name} (x{factor:g} arrivals)",
            jobs=tuple(
                replace(job, arrival_time=job.arrival_time * factor) for job in self.jobs
            ),
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.jobs)} jobs over {self.duration:.1f}s, "
            f"max gang {self.max_gpu_demand} GPUs"
        )

    # ------------------------------------------------------------------ #
    # JSON trace replay
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {"name": self.name, "jobs": [job.to_dict() for job in self.jobs]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "Workload":
        jobs = sorted(
            (JobSpec.from_dict(job) for job in payload["jobs"]),
            key=lambda job: job.arrival_time,
        )
        return cls(name=payload.get("name", "trace"), jobs=tuple(jobs))

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        return cls.from_json(Path(path).read_text())


# ---------------------------------------------------------------------- #
# Generators (seeded, deterministic)
# ---------------------------------------------------------------------- #
def poisson_workload(
    num_jobs: int,
    rate: float,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
    name: str | None = None,
) -> Workload:
    """Poisson arrivals: exponential inter-arrival gaps at ``rate`` jobs/sec.

    Example:
        >>> from repro.cluster.workload import poisson_workload
        >>> first = poisson_workload(num_jobs=3, rate=0.5, seed=1)
        >>> second = poisson_workload(num_jobs=3, rate=0.5, seed=1)
        >>> first == second  # seeded, deterministic
        True
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if rate <= 0:
        raise ConfigurationError("arrival rate must be > 0")
    rng = random.Random(seed)
    jobs = []
    now = 0.0
    for index in range(num_jobs):
        now += rng.expovariate(rate)
        jobs.append(mix.sample(rng, job_id=f"job-{index:04d}", arrival_time=now))
    return Workload(
        name=name or f"poisson(rate={rate:g}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
    )


def bursty_workload(
    num_jobs: int,
    burst_size: int = 8,
    burst_gap: float = 120.0,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
    name: str | None = None,
) -> Workload:
    """Bursty arrivals: gangs land ``burst_size`` at a time, then a lull.

    All jobs of a burst share one arrival instant — the adversarial case for
    gang scheduling, because every gang in the burst contends for the fleet
    simultaneously.  Lulls between bursts are exponential with mean
    ``burst_gap`` seconds.

    Example:
        >>> from repro.cluster.workload import bursty_workload
        >>> workload = bursty_workload(num_jobs=6, burst_size=3, seed=0)
        >>> arrivals = [job.arrival_time for job in workload]
        >>> len(set(arrivals))  # two bursts -> two distinct instants
        2
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")
    if burst_gap <= 0:
        raise ConfigurationError("burst_gap must be > 0")
    rng = random.Random(seed)
    jobs = []
    now = 0.0
    index = 0
    while index < num_jobs:
        now += rng.expovariate(1.0 / burst_gap)
        for _ in range(min(burst_size, num_jobs - index)):
            jobs.append(mix.sample(rng, job_id=f"job-{index:04d}", arrival_time=now))
            index += 1
    return Workload(
        name=name or f"bursty(size={burst_size}, n={num_jobs}, seed={seed})",
        jobs=tuple(jobs),
    )


def replay_workload(path: str | Path) -> Workload:
    """Load a JSON workload trace (alias for :meth:`Workload.load`)."""
    return Workload.load(path)


def arrival_process(
    kind: str,
    num_jobs: int,
    *,
    rate: float = 0.05,
    burst_size: int = 8,
    burst_gap: float = 120.0,
    seed: int = 0,
    mix: JobMix = DEFAULT_MIX,
) -> Workload:
    """Build a workload by arrival-process name (``"poisson"`` / ``"bursty"``).

    Example:
        >>> from repro.cluster.workload import arrival_process
        >>> len(arrival_process("bursty", 4, burst_size=2, seed=0))
        4
    """
    if kind == "poisson":
        return poisson_workload(num_jobs, rate=rate, seed=seed, mix=mix)
    if kind == "bursty":
        return bursty_workload(
            num_jobs, burst_size=burst_size, burst_gap=burst_gap, seed=seed, mix=mix
        )
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; known: 'poisson', 'bursty'"
    )
