"""The Pipe-BD framework: configuration, planning (Algorithm 1) and runners."""

from repro.core.config import ExperimentConfig
from repro.core.ablation import ALL_STRATEGIES, PIPE_BD_STRATEGY, build_plan
from repro.core.pipebd import PipeBD
from repro.core.session import (
    Session,
    SweepResult,
    ExperimentSuiteResult,
    get_default_session,
    reset_default_session,
)
from repro.core.runner import run_experiment, run_ablation

__all__ = [
    "ExperimentConfig",
    "ALL_STRATEGIES",
    "PIPE_BD_STRATEGY",
    "build_plan",
    "PipeBD",
    "Session",
    "SweepResult",
    "ExperimentSuiteResult",
    "get_default_session",
    "reset_default_session",
    "run_experiment",
    "run_ablation",
]
