"""The Pipe-BD framework: configuration, planning (Algorithm 1) and runners."""

from repro.core.config import ExperimentConfig
from repro.core.ablation import ALL_STRATEGIES, PIPE_BD_STRATEGY, build_plan
from repro.core.pipebd import PipeBD
from repro.core.runner import run_experiment, run_ablation, ExperimentSuiteResult

__all__ = [
    "ExperimentConfig",
    "ALL_STRATEGIES",
    "PIPE_BD_STRATEGY",
    "build_plan",
    "PipeBD",
    "run_experiment",
    "run_ablation",
    "ExperimentSuiteResult",
]
