"""Strategy registry and ablation helpers (paper Fig. 4).

The paper's ablation compares six points: the DP and LS baselines, TR alone,
TR+DPU, the TR+IR alternative, and the full Pipe-BD (TR+DPU+AHD).  This
module maps strategy names to their planners so the runner and benchmarks can
iterate over them uniformly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.baseline_dp import build_dp_plan
from repro.parallel.baseline_ls import build_ls_plan
from repro.parallel.decoupled import build_tr_dpu_plan
from repro.parallel.hybrid import build_ahd_plan
from repro.parallel.internal_relay import build_ir_plan
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import Profiler, ProfileTable
from repro.parallel.teacher_relay import build_tr_plan

#: All strategies, in the order the paper plots them.
ALL_STRATEGIES: Tuple[str, ...] = ("DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD")

#: The ablation points shown in Fig. 4 / Fig. 5 / Fig. 6 (the paper sometimes
#: omits TR+IR, which it discusses only for the A6000 NAS ablation).
ABLATION_STRATEGIES: Tuple[str, ...] = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")

#: The strategy called "Pipe-BD" in Table II.
PIPE_BD_STRATEGY: str = "TR+DPU+AHD"

#: Baseline strategies.
BASELINE_STRATEGIES: Tuple[str, ...] = ("DP", "LS")


def needs_profile(strategy: str) -> bool:
    """True if the strategy's planner consumes profiled block times."""
    return strategy in ("LS", "TR", "TR+DPU", "TR+DPU+AHD")


def make_profile(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
) -> ProfileTable:
    """Profile the pair at every batch size any planner may request.

    The LS baseline scores blocks at the full batch size; the pipeline
    planners use the per-device micro-batch sizes, which the profiler's
    ``feasible_batches`` already covers.
    """
    profiler = Profiler(pair=pair, server=server)
    return profiler.profile(global_batch=batch_size, extra_batches=(batch_size,))


def build_plan(
    strategy: str,
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    dataset: DatasetSpec,
    profile: Optional[ProfileTable] = None,
) -> SchedulePlan:
    """Build the plan for a named strategy.

    A profile table is created on demand when the strategy needs one and the
    caller did not supply it.
    """
    if strategy not in ALL_STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; known strategies: {ALL_STRATEGIES}"
        )
    if needs_profile(strategy) and profile is None:
        profile = make_profile(pair, server, batch_size)

    if strategy == "DP":
        return build_dp_plan(pair, server, batch_size)
    if strategy == "LS":
        assert profile is not None
        return build_ls_plan(pair, server, batch_size, profile)
    if strategy == "TR":
        assert profile is not None
        return build_tr_plan(pair, server, batch_size, profile, dataset, decoupled_update=False)
    if strategy == "TR+DPU":
        assert profile is not None
        return build_tr_dpu_plan(pair, server, batch_size, profile, dataset)
    if strategy == "TR+IR":
        return build_ir_plan(pair, server, batch_size)
    assert strategy == "TR+DPU+AHD"
    assert profile is not None
    return build_ahd_plan(pair, server, batch_size, profile, dataset)
