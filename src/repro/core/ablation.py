"""Strategy views and ablation helpers (paper Fig. 4).

The paper's ablation compares six points: the DP and LS baselines, TR alone,
TR+DPU, the TR+IR alternative, and the full Pipe-BD (TR+DPU+AHD).  Since the
strategy-registry redesign the planners live behind
:data:`repro.parallel.registry.REGISTRY`; this module keeps the historical
names (``ALL_STRATEGIES``, ``build_plan``, ``needs_profile``) as thin views
over the registry so user-registered strategies show up everywhere the
built-ins do.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.data.dataset import DatasetSpec
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import Profiler, ProfileTable
from repro.parallel.registry import REGISTRY, StrategyRegistry


class StrategyNamesView(Sequence):
    """Live, tuple-like view of the registry's strategy names.

    Iteration order is registration order (the paper's plot order for the
    built-ins, then user strategies in the order they were registered).  The
    view compares equal to any sequence with the same names, so existing
    code and tests that treat ``ALL_STRATEGIES`` as a tuple keep working.
    """

    def __init__(self, registry: StrategyRegistry) -> None:
        self._registry = registry

    def _names(self) -> Tuple[str, ...]:
        return self._registry.names()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._registry)

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StrategyNamesView):
            return self._names() == other._names()
        if isinstance(other, (tuple, list)):
            return self._names() == tuple(other)
        return NotImplemented

    # The view mutates as strategies register, so it is unhashable (like list).
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"StrategyNamesView{self._names()!r}"


#: All registered strategies, in registration (= paper plot) order.
ALL_STRATEGIES: Sequence[str] = StrategyNamesView(REGISTRY)

#: The ablation points shown in Fig. 4 / Fig. 5 / Fig. 6 (the paper sometimes
#: omits TR+IR, which it discusses only for the A6000 NAS ablation).
ABLATION_STRATEGIES: Tuple[str, ...] = ("DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD")

#: The strategy called "Pipe-BD" in Table II.
PIPE_BD_STRATEGY: str = "TR+DPU+AHD"

#: Baseline strategies.
BASELINE_STRATEGIES: Tuple[str, ...] = ("DP", "LS")


def needs_profile(strategy: str) -> bool:
    """True if the strategy's planner consumes profiled block times."""
    return REGISTRY.requires_profile(strategy)


def make_profile(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
) -> ProfileTable:
    """Profile the pair at every batch size any planner may request.

    The LS baseline scores blocks at the full batch size; the pipeline
    planners use the per-device micro-batch sizes, which the profiler's
    ``feasible_batches`` already covers.
    """
    profiler = Profiler(pair=pair, server=server)
    return profiler.profile(global_batch=batch_size, extra_batches=(batch_size,))


def build_plan(
    strategy: str,
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    dataset: DatasetSpec,
    profile: Optional[ProfileTable] = None,
) -> SchedulePlan:
    """Build the plan for a named (registered) strategy.

    A profile table is created on demand when the strategy needs one and the
    caller did not supply it.
    """
    planner = REGISTRY.get(strategy)
    if planner.requires_profile and profile is None:
        profile = make_profile(pair, server, batch_size)
    return planner.build(pair, server, batch_size, dataset, profile=profile)
