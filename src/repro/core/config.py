"""Experiment configuration objects.

An :class:`ExperimentConfig` captures one cell of the paper's evaluation
matrix — a workload (NAS or compression), a dataset (CIFAR-10 or ImageNet), a
server (4x A6000 or 4x 2080Ti), a global batch size and a scheduling
strategy — and knows how to materialise the model pair, dataset descriptor
and server spec it refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.data.dataset import DatasetSpec, get_dataset
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec, get_server
from repro.models.pairs import DistillationPair, build_pair
from repro.parallel.registry import REGISTRY

#: Tasks the paper evaluates (§VI-A).
VALID_TASKS: Tuple[str, ...] = ("nas", "compression")
#: Datasets the paper evaluates (§VI-B).
VALID_DATASETS: Tuple[str, ...] = ("cifar10", "imagenet")
#: Server presets the paper evaluates (Table I).
VALID_SERVERS: Tuple[str, ...] = ("a6000", "2080ti")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell of the evaluation matrix."""

    task: str = "nas"
    dataset: str = "cifar10"
    server: str = "a6000"
    num_gpus: int = 4
    batch_size: int = 256
    strategy: str = "TR+DPU+AHD"
    simulated_steps: int = 10
    seed: int = 0
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.task not in VALID_TASKS:
            raise ConfigurationError(f"task must be one of {VALID_TASKS}, got {self.task!r}")
        if self.dataset not in VALID_DATASETS:
            raise ConfigurationError(
                f"dataset must be one of {VALID_DATASETS}, got {self.dataset!r}"
            )
        if self.server not in VALID_SERVERS:
            raise ConfigurationError(
                f"server must be one of {VALID_SERVERS}, got {self.server!r}"
            )
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if self.batch_size < self.num_gpus:
            raise ConfigurationError(
                f"batch_size ({self.batch_size}) must be >= num_gpus ({self.num_gpus})"
            )
        if self.simulated_steps < 4:
            raise ConfigurationError("simulated_steps must be >= 4")
        if self.strategy not in REGISTRY:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; registered strategies: "
                f"{REGISTRY.names()} (register custom strategies with "
                "repro.parallel.registry.register_strategy before building configs)"
            )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def build_pair(self) -> DistillationPair:
        """Teacher/student pair for this cell."""
        return build_pair(self.task, self.dataset)

    def build_server(self) -> ServerSpec:
        """Server spec for this cell."""
        return get_server(self.server, self.num_gpus)

    def build_dataset(self) -> DatasetSpec:
        """Dataset descriptor for this cell."""
        return get_dataset(self.dataset)

    # ------------------------------------------------------------------ #
    def with_strategy(self, strategy: str) -> "ExperimentConfig":
        """A copy of this config with a different scheduling strategy."""
        return replace(self, strategy=strategy)

    def with_batch_size(self, batch_size: int) -> "ExperimentConfig":
        """A copy of this config with a different global batch size."""
        return replace(self, batch_size=batch_size)

    def with_server(self, server: str, num_gpus: int | None = None) -> "ExperimentConfig":
        """A copy of this config targeting a different server preset.

        ``num_gpus=None`` keeps the current GPU count; any explicit value —
        including an invalid one such as ``0`` — is passed through to
        validation rather than silently ignored.
        """
        if num_gpus is None:
            num_gpus = self.num_gpus
        elif num_gpus < 1:
            raise ConfigurationError(
                f"num_gpus must be >= 1, got {num_gpus}; pass num_gpus=None to "
                "keep the current count"
            )
        return replace(self, server=server, num_gpus=num_gpus)

    def label(self) -> str:
        """Short label used in reports, e.g. ``"nas/cifar10/a6000/b256"``."""
        return f"{self.task}/{self.dataset}/{self.server}/b{self.batch_size}"

    def cell_label(self) -> str:
        """Unambiguous cell label including the GPU count (sweep reports)."""
        return f"{self.task}/{self.dataset}/{self.server}x{self.num_gpus}/b{self.batch_size}"

    def cell_key(self) -> Tuple[str, str, str, int, int]:
        """Hashable identity of the cell (ignores strategy and step count)."""
        return (self.task, self.dataset, self.server, self.num_gpus, self.batch_size)

    def to_dict(self) -> dict:
        """JSON-serialisable view of the config."""
        return {
            "task": self.task,
            "dataset": self.dataset,
            "server": self.server,
            "num_gpus": self.num_gpus,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "simulated_steps": self.simulated_steps,
            "seed": self.seed,
        }
