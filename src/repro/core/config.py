"""Experiment configuration objects.

An :class:`ExperimentConfig` captures one cell of the paper's evaluation
matrix — a workload (NAS or compression), a dataset (CIFAR-10 or ImageNet), a
server (4x A6000 or 4x 2080Ti), a global batch size and a scheduling
strategy — and knows how to materialise the model pair, dataset descriptor
and server spec it refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.data.dataset import DatasetSpec, get_dataset
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec, get_server
from repro.models.pairs import DistillationPair, build_pair

#: Tasks the paper evaluates (§VI-A).
VALID_TASKS: Tuple[str, ...] = ("nas", "compression")
#: Datasets the paper evaluates (§VI-B).
VALID_DATASETS: Tuple[str, ...] = ("cifar10", "imagenet")
#: Server presets the paper evaluates (Table I).
VALID_SERVERS: Tuple[str, ...] = ("a6000", "2080ti")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell of the evaluation matrix."""

    task: str = "nas"
    dataset: str = "cifar10"
    server: str = "a6000"
    num_gpus: int = 4
    batch_size: int = 256
    strategy: str = "TR+DPU+AHD"
    simulated_steps: int = 10
    seed: int = 0
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.task not in VALID_TASKS:
            raise ConfigurationError(f"task must be one of {VALID_TASKS}, got {self.task!r}")
        if self.dataset not in VALID_DATASETS:
            raise ConfigurationError(
                f"dataset must be one of {VALID_DATASETS}, got {self.dataset!r}"
            )
        if self.server not in VALID_SERVERS:
            raise ConfigurationError(
                f"server must be one of {VALID_SERVERS}, got {self.server!r}"
            )
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if self.batch_size < self.num_gpus:
            raise ConfigurationError(
                f"batch_size ({self.batch_size}) must be >= num_gpus ({self.num_gpus})"
            )
        if self.simulated_steps < 4:
            raise ConfigurationError("simulated_steps must be >= 4")

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def build_pair(self) -> DistillationPair:
        """Teacher/student pair for this cell."""
        return build_pair(self.task, self.dataset)

    def build_server(self) -> ServerSpec:
        """Server spec for this cell."""
        return get_server(self.server, self.num_gpus)

    def build_dataset(self) -> DatasetSpec:
        """Dataset descriptor for this cell."""
        return get_dataset(self.dataset)

    # ------------------------------------------------------------------ #
    def with_strategy(self, strategy: str) -> "ExperimentConfig":
        """A copy of this config with a different scheduling strategy."""
        return replace(self, strategy=strategy)

    def with_batch_size(self, batch_size: int) -> "ExperimentConfig":
        """A copy of this config with a different global batch size."""
        return replace(self, batch_size=batch_size)

    def with_server(self, server: str, num_gpus: int | None = None) -> "ExperimentConfig":
        """A copy of this config targeting a different server preset."""
        return replace(self, server=server, num_gpus=num_gpus or self.num_gpus)

    def label(self) -> str:
        """Short label used in reports, e.g. ``"nas/cifar10/a6000/b256"``."""
        return f"{self.task}/{self.dataset}/{self.server}/b{self.batch_size}"
