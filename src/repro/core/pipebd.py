"""The Pipe-BD framework (paper §V, Algorithm 1).

:class:`PipeBD` mirrors the paper's overall procedure:

1. *Initialization* — profile each block under feasible batch sizes (the
   "100 steps" profiling run of §V-B) and decide the block/device assignment
   with automatic hybrid distribution (Algorithm 1, line 4).
2. *Training* — every step, each device receives the relayed activation (or
   loads data if it owns block 0), runs its teacher blocks, forwards the
   boundary activation to the next device, runs its student blocks, shares
   gradients within its AHD group, and updates weights without waiting for
   other devices (decoupled parameter update).

In this reproduction step 2 executes on the discrete-event simulator; the
scheduling decisions and the dependency structure are exactly those of the
paper's Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.decoupled import with_decoupled_update
from repro.parallel.executor import ExecutionResult, ScheduleExecutor
from repro.parallel.hybrid import search_ahd
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import Profiler, ProfileTable
from repro.parallel.teacher_relay import build_tr_plan


@dataclass
class PipeBD:
    """High-level entry point: automatic scheduling + simulated training.

    Parameters
    ----------
    pair:
        Teacher/student pair to train.
    server:
        The multi-GPU server to schedule onto.
    dataset:
        Dataset descriptor (drives data-loading cost and steps per epoch).
    batch_size:
        Global (effective) batch size.
    enable_dpu / enable_ahd:
        Ablation switches: disabling AHD falls back to the best contiguous
        one-device-per-stage assignment (TR); disabling DPU keeps the
        per-step synchronisation barrier.
    """

    pair: DistillationPair
    server: ServerSpec
    dataset: DatasetSpec
    batch_size: int = 256
    enable_dpu: bool = True
    enable_ahd: bool = True
    simulated_steps: int = 10
    profile: Optional[ProfileTable] = field(default=None, repr=False)
    _plan: Optional[SchedulePlan] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    def initialize(self) -> SchedulePlan:
        """Profile the blocks and decide the schedule (Algorithm 1, line 4)."""
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be positive")
        if self.profile is None:
            profiler = Profiler(pair=self.pair, server=self.server)
            self.profile = profiler.profile(global_batch=self.batch_size)
        if self.enable_ahd:
            result = search_ahd(
                self.pair, self.server, self.batch_size, self.profile, self.dataset
            )
            plan = result.best.plan
        else:
            plan = build_tr_plan(
                self.pair,
                self.server,
                self.batch_size,
                self.profile,
                self.dataset,
                decoupled_update=True,
            )
        if not self.enable_dpu:
            plan = with_decoupled_update(plan, decoupled=False)
        self._plan = plan
        return plan

    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> SchedulePlan:
        """The schedule decided at initialization (initialising lazily)."""
        if self._plan is None:
            self.initialize()
        assert self._plan is not None
        return self._plan

    def simulate_epoch(self) -> ExecutionResult:
        """Execute one training epoch on the simulated server."""
        executor = ScheduleExecutor(
            pair=self.pair,
            server=self.server,
            dataset=self.dataset,
            simulated_steps=self.simulated_steps,
        )
        return executor.execute(self.plan)

    def describe_schedule(self) -> str:
        """Human-readable schedule summary (the paper's Fig. 5b/5c content)."""
        return self.plan.describe()

    def scheduling_overhead_seconds(self) -> float:
        """Simulated cost of the one-off profiling run (amortisation check)."""
        if self.profile is None:
            self.initialize()
        assert self.profile is not None
        return self.profile.profiling_cost_s
