"""Plain-text report formatting for tables and figure data series.

The benchmarks print the same rows/series the paper reports; these helpers
keep the formatting in one place so benchmark scripts stay short.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.runner import ExperimentSuiteResult
from repro.models.layers import human_flops, human_params
from repro.models.pairs import DistillationPair
from repro.parallel.executor import ExecutionResult
from repro.sim.metrics import BREAKDOWN_CATEGORIES


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's Table II does (``62m 21s``)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    # The paper keeps minutes past 60 (e.g. "229m 23s"), so no hours field.
    return f"{int(minutes)}m {rem:04.1f}s"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def speedup_table(suite: ExperimentSuiteResult, baseline: str = "DP") -> str:
    """Speedup-over-baseline table for one experiment cell (Fig. 4 data)."""
    speedups = suite.speedups(baseline)
    rows = [
        [
            strategy,
            f"{suite.results[strategy].epoch_time:.2f}s",
            f"{speedups[strategy]:.2f}x",
        ]
        for strategy in suite.results
    ]
    title = f"Speedup over {baseline} — {suite.config.label()}"
    table = format_table(["strategy", "epoch time", "speedup"], rows)
    return f"{title}\n{table}"


def breakdown_table(result: ExecutionResult) -> str:
    """Per-device time breakdown table for one result (Fig. 2 data)."""
    headers = ["device"] + list(BREAKDOWN_CATEGORIES) + ["total"]
    rows = []
    for device in sorted(result.breakdown):
        categories = result.breakdown[device]
        total = sum(categories.values())
        rows.append(
            [f"rank {device}"]
            + [f"{categories[category]:.2f}s" for category in BREAKDOWN_CATEGORIES]
            + [f"{total:.2f}s"]
        )
    return format_table(headers, rows)


def memory_table(results: Mapping[str, ExecutionResult]) -> str:
    """Per-rank peak memory for several strategies (Fig. 7 data)."""
    strategies = list(results)
    devices = sorted(next(iter(results.values())).peak_memory_bytes)
    headers = ["rank"] + strategies
    rows = []
    for device in devices:
        rows.append(
            [f"{device}"]
            + [f"{results[strategy].peak_memory_bytes[device] / 1e9:.2f} GB" for strategy in strategies]
        )
    rows.append(
        ["Max."]
        + [f"{results[strategy].max_memory_gb():.2f} GB" for strategy in strategies]
    )
    return format_table(headers, rows)


def model_summary_row(pair: DistillationPair) -> Dict[str, str]:
    """Teacher/student parameter and FLOP columns of Table II."""
    from repro.models.proxylessnas import searched_model_macs

    teacher = pair.teacher
    student = pair.student
    if pair.task == "nas":
        student_macs = searched_model_macs(student)
        # Architecture parameters are a negligible fraction; report the
        # average single-path parameter count for the searched student.
        student_params = student.params / max(
            1,
            next(
                layer.metadata.get("num_candidates", 1)
                for block in student.blocks
                for layer in block.layers
                if layer.kind == "mixed"
            ),
        )
    else:
        student_macs = student.macs
        student_params = student.params
    return {
        "teacher_params": human_params(teacher.params),
        "teacher_flops": human_flops(teacher.flops),
        "student_params": human_params(student_params),
        "student_flops": human_flops(2.0 * student_macs),
    }


def table2_row(
    task: str,
    dataset: str,
    pair: DistillationPair,
    epoch_times: Mapping[str, float],
) -> Sequence[str]:
    """One row of Table II: models, sizes and per-epoch elapsed times."""
    summary = model_summary_row(pair)
    return [
        task,
        dataset,
        pair.teacher.name,
        summary["teacher_params"],
        summary["teacher_flops"],
        pair.student.name,
        summary["student_params"],
        summary["student_flops"],
        format_seconds(epoch_times.get("DP", float("nan"))),
        format_seconds(epoch_times.get("LS", float("nan"))),
        format_seconds(epoch_times.get("TR+DPU+AHD", float("nan"))),
    ]


TABLE2_HEADERS = (
    "task",
    "dataset",
    "teacher",
    "T params",
    "T FLOPs",
    "student",
    "S params",
    "S FLOPs",
    "DP",
    "LS",
    "Pipe-BD",
)
