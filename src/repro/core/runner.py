"""Experiment runners: execute one strategy or a whole ablation sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.ablation import (
    ABLATION_STRATEGIES,
    ALL_STRATEGIES,
    build_plan,
    make_profile,
    needs_profile,
)
from repro.core.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.parallel.executor import ExecutionResult, ScheduleExecutor
from repro.parallel.profiler import ProfileTable


@dataclass
class ExperimentSuiteResult:
    """Results of running several strategies on the same experiment cell."""

    config: ExperimentConfig
    results: Dict[str, ExecutionResult] = field(default_factory=dict)

    def result(self, strategy: str) -> ExecutionResult:
        if strategy not in self.results:
            raise ConfigurationError(
                f"strategy {strategy!r} was not run; available: {sorted(self.results)}"
            )
        return self.results[strategy]

    def epoch_times(self) -> Dict[str, float]:
        return {strategy: result.epoch_time for strategy, result in self.results.items()}

    def speedups(self, baseline: str = "DP") -> Dict[str, float]:
        """Speedup of every strategy over the chosen baseline."""
        base = self.result(baseline).epoch_time
        return {
            strategy: base / result.epoch_time for strategy, result in self.results.items()
        }

    def pipe_bd_speedup(self, baseline: str = "DP") -> float:
        """Speedup of the full Pipe-BD configuration over a baseline."""
        from repro.core.ablation import PIPE_BD_STRATEGY

        return self.speedups(baseline)[PIPE_BD_STRATEGY]


def _make_context(config: ExperimentConfig):
    pair = config.build_pair()
    server = config.build_server()
    dataset = config.build_dataset()
    executor = ScheduleExecutor(
        pair=pair,
        server=server,
        dataset=dataset,
        simulated_steps=config.simulated_steps,
    )
    return pair, server, dataset, executor


def run_experiment(
    config: ExperimentConfig,
    profile: Optional[ProfileTable] = None,
) -> ExecutionResult:
    """Run a single (config, strategy) cell and return its execution result."""
    pair, server, dataset, executor = _make_context(config)
    if needs_profile(config.strategy) and profile is None:
        profile = make_profile(pair, server, config.batch_size)
    plan = build_plan(
        config.strategy, pair, server, config.batch_size, dataset, profile=profile
    )
    return executor.execute(plan)


def run_ablation(
    config: ExperimentConfig,
    strategies: Sequence[str] = ABLATION_STRATEGIES,
) -> ExperimentSuiteResult:
    """Run several strategies on the same experiment cell (paper Fig. 4).

    The profile table is computed once and shared by every strategy, exactly
    as Pipe-BD's one-off profiling pass is shared by its scheduling decisions.
    """
    for strategy in strategies:
        if strategy not in ALL_STRATEGIES:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
    pair, server, dataset, executor = _make_context(config)
    profile = None
    if any(needs_profile(strategy) for strategy in strategies):
        profile = make_profile(pair, server, config.batch_size)

    suite = ExperimentSuiteResult(config=config)
    for strategy in strategies:
        plan = build_plan(
            strategy, pair, server, config.batch_size, dataset, profile=profile
        )
        suite.results[strategy] = executor.execute(plan)
    return suite
