"""Stateless runner shims over the default :class:`~repro.core.session.Session`.

``run_experiment`` and ``run_ablation`` predate the session facade; they are
kept as thin wrappers so existing benchmarks, examples and downstream code
keep working while gaining the default session's caching for free.  New code
should construct a :class:`~repro.core.session.Session` directly (see the
README quickstart).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.ablation import ABLATION_STRATEGIES
from repro.core.config import ExperimentConfig
from repro.core.session import (
    ExperimentSuiteResult,
    Session,
    SweepResult,
    get_default_session,
    reset_default_session,
)
from repro.parallel.executor import ExecutionResult
from repro.parallel.profiler import ProfileTable

__all__ = [
    "ExperimentSuiteResult",
    "Session",
    "SweepResult",
    "get_default_session",
    "reset_default_session",
    "run_experiment",
    "run_ablation",
]


def run_experiment(
    config: ExperimentConfig,
    profile: Optional[ProfileTable] = None,
) -> ExecutionResult:
    """Run a single (config, strategy) cell and return its execution result."""
    return get_default_session().run(config, profile=profile)


def run_ablation(
    config: ExperimentConfig,
    strategies: Sequence[str] = ABLATION_STRATEGIES,
) -> ExperimentSuiteResult:
    """Run several strategies on the same experiment cell (paper Fig. 4).

    The profile table is computed once per cell and shared by every strategy,
    exactly as Pipe-BD's one-off profiling pass is shared by its scheduling
    decisions.
    """
    return get_default_session().ablation(config, strategies)
