"""The :class:`Session` facade: cached experiment execution and grid sweeps.

The stateless runners re-materialise the model pair, the server spec and —
far worse — the profile table on every call, which the thousand-cell sweeps
behind Figs. 4–6 cannot afford.  A ``Session`` memoises every expensive
artefact by the config cell that determines it:

* pairs by ``(task, dataset)``,
* server specs by ``(server, num_gpus)``,
* dataset descriptors by ``dataset``,
* executors by ``(pair, server, dataset, simulated_steps)``,
* profile tables by ``(task, dataset, server, num_gpus, batch_size)`` —
  built exactly once per cell, matching the paper's one-off profiling pass.

On top of the caches it exposes the whole public workflow:

* :meth:`Session.run` — one (config, strategy) cell,
* :meth:`Session.ablation` — several strategies on one cell (Fig. 4),
* :meth:`Session.sweep` — a full grid over batch sizes / GPU counts /
  datasets / servers / tasks, returning a typed :class:`SweepResult` with
  speedup tables, best-cell selection and JSON export.  Independent cells
  can execute on a thread pool (``parallel=True``).
* :meth:`Session.tune` — autotuning: search a
  :class:`~repro.tune.space.TuneSpace` for the best candidate under an
  objective, reusing this session's caches across refinement rounds.

Beyond the in-memory caches a session can be bound to two pluggable
substrates:

* ``store=`` — a persistent :class:`~repro.store.store.ExperimentStore`
  (or a path to one).  :meth:`Session.run` hydrates results from the store
  before simulating and writes every fresh simulation through it, so a
  second identical sweep / tune / cluster replay — even in a brand-new
  process — performs **zero** discrete-event simulations.
* ``backend=`` — an execution backend (``"inline"``, ``"thread"``,
  ``"process"`` or any :func:`~repro.store.backends.register_backend`
  plugin) deciding where sweep cells execute.

``run_experiment`` / ``run_ablation`` in :mod:`repro.core.runner` remain as
thin shims over a process-wide default session.

Documented in ``docs/API.md`` (reference), ``docs/CACHING.md`` (store and
backends) and ``docs/ARCHITECTURE.md`` (where the session sits in the
layer map).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.ablation import ABLATION_STRATEGIES, make_profile
from repro.core.config import ExperimentConfig
from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.parallel.executor import ExecutionResult, ScheduleExecutor
from repro.parallel.profiler import ProfileTable
from repro.parallel.registry import REGISTRY
from repro.store.backends import ExecutionBackend, resolve_backend
from repro.store.keys import run_key
from repro.store.store import ExperimentStore, open_store

PairKey = Tuple[str, str]
ServerKey = Tuple[str, int]
ProfileKey = Tuple[str, str, str, int, int]
ExecutorKey = Tuple[str, str, str, int, int]


def _observe_run(started: float, outcome: str) -> None:
    """Record one Session.run completion in the process-wide registry."""
    registry = get_registry()
    registry.counter(
        "repro_session_runs_total",
        "Session.run completions by outcome (simulated vs store_hit)",
    ).inc(outcome=outcome)
    registry.histogram(
        "repro_session_run_seconds", "Session.run wall time"
    ).observe(time.perf_counter() - started)


@dataclass
class ExperimentSuiteResult:
    """Results of running several strategies on the same experiment cell.

    Example:
        >>> from repro import ExperimentConfig, Session
        >>> config = ExperimentConfig(batch_size=128, simulated_steps=4)
        >>> suite = Session().ablation(config, strategies=("DP", "TR"))
        >>> suite.speedups("DP")["TR"] > 1.0
        True
    """

    config: ExperimentConfig
    results: Dict[str, ExecutionResult] = field(default_factory=dict)

    def result(self, strategy: str) -> ExecutionResult:
        if strategy not in self.results:
            raise ConfigurationError(
                f"strategy {strategy!r} was not run; available: {sorted(self.results)}"
            )
        return self.results[strategy]

    def epoch_times(self) -> Dict[str, float]:
        return {strategy: result.epoch_time for strategy, result in self.results.items()}

    def speedups(self, baseline: str = "DP") -> Dict[str, float]:
        """Speedup of every strategy over the chosen baseline."""
        base = self.result(baseline).epoch_time
        return {
            strategy: base / result.epoch_time for strategy, result in self.results.items()
        }

    def pipe_bd_speedup(self, baseline: str = "DP") -> float:
        """Speedup of the full Pipe-BD configuration over a baseline."""
        from repro.core.ablation import PIPE_BD_STRATEGY

        return self.speedups(baseline)[PIPE_BD_STRATEGY]

    def to_dict(self) -> dict:
        """JSON-serialisable summary of this cell's results."""
        config = self.config.to_dict()
        # The strategies actually run are the result keys; the config's own
        # strategy field never parameterised the suite and would contradict.
        config.pop("strategy", None)
        return {
            "config": config,
            "results": {
                strategy: result.to_dict() for strategy, result in self.results.items()
            },
        }


@dataclass
class SessionStats:
    """Cache-activity counters, primarily for tests and capacity planning.

    Example:
        >>> from repro import ExperimentConfig, Session
        >>> session = Session()
        >>> for _ in range(2):
        ...     _ = session.run(ExperimentConfig(batch_size=128, simulated_steps=4))
        >>> (session.stats.profile_builds, session.stats.profile_hits)
        (1, 1)
    """

    pair_builds: int = 0
    pair_hits: int = 0
    server_builds: int = 0
    server_hits: int = 0
    dataset_builds: int = 0
    dataset_hits: int = 0
    executor_builds: int = 0
    executor_hits: int = 0
    profile_builds: int = 0
    profile_hits: int = 0
    #: Persistent-store traffic: ``store_builds`` counts simulations written
    #: through the store (cold), ``store_hits`` counts results hydrated from
    #: it without simulating (warm).
    store_builds: int = 0
    store_hits: int = 0
    #: Discrete-event simulations actually performed, including those done
    #: by ``process``-backend workers on this session's behalf (store hits
    #: excluded).
    runs: int = 0

    #: Caches with paired build/hit counters, addressable via :meth:`hit_rate`.
    CACHES = ("pair", "server", "dataset", "executor", "profile", "store")

    def hit_rate(self, cache: str) -> float:
        """Hit fraction for one cache (``"pair"``, ``"profile"``, ...).

        Example:
            >>> from repro.core.session import SessionStats
            >>> SessionStats(profile_builds=1, profile_hits=3).hit_rate("profile")
            0.75
        """
        if cache not in self.CACHES:
            raise ConfigurationError(
                f"unknown cache {cache!r}; known caches: {self.CACHES}"
            )
        builds = getattr(self, f"{cache}_builds")
        hits = getattr(self, f"{cache}_hits")
        total = builds + hits
        return hits / total if total else 0.0

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    def snapshot(self) -> dict:
        """A point-in-time copy of every counter (pair with :meth:`delta`)."""
        return dict(self.__dict__)

    def delta(self, before: dict) -> dict:
        """Per-counter change since a :meth:`snapshot`.

        The serve layer brackets each request with snapshot/delta to report
        per-request warm-vs-cold accounting (``delta(...)["runs"] == 0``
        means the request performed zero simulations).

        Example:
            >>> from repro import ExperimentConfig, Session
            >>> session = Session()
            >>> before = session.stats.snapshot()
            >>> _ = session.run(ExperimentConfig(batch_size=128,
            ...                                  simulated_steps=4))
            >>> session.stats.delta(before)["runs"]
            1
        """
        return {
            name: value - before.get(name, 0)
            for name, value in self.__dict__.items()
        }


@dataclass
class SweepResult:
    """Typed result of a :meth:`Session.sweep` grid.

    ``cells`` holds one :class:`ExperimentSuiteResult` per grid point, in
    grid-iteration order; ``strategies`` is the strategy set every cell ran.

    Example:
        >>> from repro import ExperimentConfig, Session
        >>> base = ExperimentConfig(batch_size=128, simulated_steps=4)
        >>> sweep = Session().sweep(base, batch_sizes=(128, 256),
        ...                         strategies=("DP", "TR"))
        >>> (len(sweep), sorted(sweep.axes))
        (2, ['batch_size'])
    """

    base_config: ExperimentConfig
    strategies: Tuple[str, ...]
    cells: Tuple[ExperimentSuiteResult, ...]
    axes: Dict[str, Tuple] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def labels(self) -> Tuple[str, ...]:
        return tuple(cell.config.cell_label() for cell in self.cells)

    def cell(self, **axis_values) -> ExperimentSuiteResult:
        """The unique cell whose config matches every given axis value."""
        matches = [
            cell
            for cell in self.cells
            if all(getattr(cell.config, name) == value for name, value in axis_values.items())
        ]
        if not matches:
            raise ConfigurationError(f"no sweep cell matches {axis_values!r}")
        if len(matches) > 1:
            raise ConfigurationError(
                f"{len(matches)} sweep cells match {axis_values!r}; "
                "constrain more axes (available: "
                f"{sorted(self.axes)})"
            )
        return matches[0]

    # ------------------------------------------------------------------ #
    # Tables and selection
    # ------------------------------------------------------------------ #
    def epoch_times(self) -> Dict[str, Dict[str, float]]:
        """Per-cell epoch times: ``{cell label: {strategy: seconds}}``."""
        return {cell.config.cell_label(): cell.epoch_times() for cell in self.cells}

    def speedup_table(self, baseline: str = "DP") -> Dict[str, Dict[str, float]]:
        """Per-cell speedups over a baseline: ``{cell label: {strategy: x}}``."""
        return {cell.config.cell_label(): cell.speedups(baseline) for cell in self.cells}

    def series(self, strategy: str, axis: str, baseline: str = "DP") -> Dict:
        """Speedup of one strategy along one axis (e.g. Fig. 6's batch axis).

        Requires the axis value to identify each cell uniquely (i.e. every
        other axis is fixed); raises otherwise.
        """
        out: Dict = {}
        for cell in self.cells:
            key = getattr(cell.config, axis)
            if key in out:
                raise ConfigurationError(
                    f"axis {axis!r} does not uniquely identify sweep cells; "
                    f"value {key!r} appears more than once"
                )
            out[key] = cell.speedups(baseline)[strategy]
        return out

    def best_cell(
        self,
        strategy: str,
        key: Callable[[ExecutionResult], float] = lambda result: result.epoch_time,
    ) -> ExperimentSuiteResult:
        """The cell where ``strategy`` minimises ``key`` (default epoch time)."""
        if not self.cells:
            raise ConfigurationError("sweep produced no cells")
        return min(self.cells, key=lambda cell: key(cell.result(strategy)))

    def best_strategy_per_cell(self) -> Dict[str, str]:
        """Fastest strategy in every cell: ``{cell label: strategy}``."""
        return {
            cell.config.cell_label(): min(
                cell.results, key=lambda strategy: cell.results[strategy].epoch_time
            )
            for cell in self.cells
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "base_config": self.base_config.to_dict(),
            "strategies": list(self.strategies),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class Session:
    """Cached facade over configuration, planning and simulated execution.

    A session is cheap to create and safe to keep for a whole process; its
    caches only ever hold deterministic, immutable artefacts, so sharing one
    session across sweeps (or threads, via ``sweep(parallel=True)``) returns
    bit-identical results to the stateless runners.

    Example:
        >>> from repro import ExperimentConfig, Session
        >>> session = Session()
        >>> result = session.run(ExperimentConfig(batch_size=128,
        ...                                       simulated_steps=4))
        >>> result.epoch_time > 0
        True
    """

    def __init__(
        self,
        store: Union[ExperimentStore, str, Path, None] = None,
        backend: Union[str, ExecutionBackend] = "inline",
    ) -> None:
        self._pairs: Dict[PairKey, DistillationPair] = {}
        self._servers: Dict[ServerKey, ServerSpec] = {}
        self._datasets: Dict[str, DatasetSpec] = {}
        self._executors: Dict[ExecutorKey, ScheduleExecutor] = {}
        self._profiles: Dict[ProfileKey, ProfileTable] = {}
        self._lock = threading.RLock()
        self.stats = SessionStats()
        self._store = open_store(store)
        self._backend = resolve_backend(backend)

    @property
    def store(self) -> Optional[ExperimentStore]:
        """The persistent experiment store this session hydrates from, if any."""
        return self._store

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend sweeps use unless overridden per call."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Cached materialisation
    # ------------------------------------------------------------------ #
    def pair(self, config: ExperimentConfig) -> DistillationPair:
        key: PairKey = (config.task, config.dataset)
        with self._lock:
            if key not in self._pairs:
                self._pairs[key] = config.build_pair()
                self.stats.pair_builds += 1
            else:
                self.stats.pair_hits += 1
            return self._pairs[key]

    def server(self, config: ExperimentConfig) -> ServerSpec:
        key: ServerKey = (config.server, config.num_gpus)
        with self._lock:
            if key not in self._servers:
                self._servers[key] = config.build_server()
                self.stats.server_builds += 1
            else:
                self.stats.server_hits += 1
            return self._servers[key]

    def dataset(self, config: ExperimentConfig) -> DatasetSpec:
        with self._lock:
            if config.dataset not in self._datasets:
                self._datasets[config.dataset] = config.build_dataset()
                self.stats.dataset_builds += 1
            else:
                self.stats.dataset_hits += 1
            return self._datasets[config.dataset]

    def executor(self, config: ExperimentConfig) -> ScheduleExecutor:
        key: ExecutorKey = (
            config.task,
            config.dataset,
            config.server,
            config.num_gpus,
            config.simulated_steps,
        )
        with self._lock:
            if key not in self._executors:
                self._executors[key] = ScheduleExecutor(
                    pair=self.pair(config),
                    server=self.server(config),
                    dataset=self.dataset(config),
                    simulated_steps=config.simulated_steps,
                )
                self.stats.executor_builds += 1
            else:
                self.stats.executor_hits += 1
            return self._executors[key]

    def profile(self, config: ExperimentConfig) -> ProfileTable:
        """The profile table for this cell, built exactly once per cell."""
        key: ProfileKey = config.cell_key()
        with self._lock:
            if key not in self._profiles:
                with span("session.profile_table", cell=config.cell_label()):
                    self._profiles[key] = make_profile(
                        self.pair(config), self.server(config), config.batch_size
                    )
                self.stats.profile_builds += 1
            else:
                self.stats.profile_hits += 1
            return self._profiles[key]

    def clear(self) -> None:
        """Drop every cached artefact (stats are kept)."""
        with self._lock:
            self._pairs.clear()
            self._servers.clear()
            self._datasets.clear()
            self._executors.clear()
            self._profiles.clear()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        config: ExperimentConfig,
        strategy: Optional[str] = None,
        profile: Optional[ProfileTable] = None,
    ) -> ExecutionResult:
        """Run one (config, strategy) cell and return its execution result.

        ``strategy`` overrides ``config.strategy``; ``profile`` overrides the
        session's cached profile table (it is not cached back).

        With a persistent store attached, a previously simulated cell is
        hydrated straight from disk (``stats.store_hits``) without building
        a plan or touching the simulator; fresh simulations are written
        through the store (``stats.store_builds``).  An explicit ``profile``
        override bypasses the store entirely — a custom profile changes the
        plan, so its result must be neither served from nor written to the
        shared cache.

        Example:
            >>> from repro import ExperimentConfig, Session
            >>> config = ExperimentConfig(batch_size=128, simulated_steps=4)
            >>> Session().run(config, strategy="DP").strategy
            'DP'
        """
        name = strategy if strategy is not None else config.strategy
        planner = REGISTRY.get(name)
        use_store = self._store is not None and profile is None
        started = time.perf_counter()
        with span("session.run", strategy=name, cell=config.cell_label()):
            if use_store:
                cached = self._store.get("run", run_key(config, name))
                if cached is not None:
                    with self._lock:
                        self.stats.store_hits += 1
                    _observe_run(started, "store_hit")
                    return ExecutionResult.from_dict(cached)
            if planner.requires_profile and profile is None:
                profile = self.profile(config)
            with span("session.plan", strategy=name):
                plan = planner.build(
                    self.pair(config),
                    self.server(config),
                    config.batch_size,
                    self.dataset(config),
                    profile=profile,
                )
            with span("session.execute", strategy=name):
                result = self.executor(config).execute(plan)
            with self._lock:
                self.stats.runs += 1
            if use_store:
                self.put_run(config, name, result.to_dict())
            _observe_run(started, "simulated")
            return result

    # ------------------------------------------------------------------ #
    # Store plumbing (used by run() and the execution backends)
    # ------------------------------------------------------------------ #
    def in_store(self, config: ExperimentConfig, strategy: str) -> bool:
        """Whether the store already holds this (cell, strategy, steps) run."""
        if self._store is None:
            return False
        return self._store.contains("run", run_key(config, strategy))

    def put_run(self, config: ExperimentConfig, strategy: str, payload: dict) -> None:
        """Write one run record through the store (no-op without a store)."""
        if self._store is None:
            return
        self._store.put("run", run_key(config, strategy), payload)
        with self._lock:
            self.stats.store_builds += 1

    def ablation(
        self,
        config: ExperimentConfig,
        strategies: Sequence[str] = ABLATION_STRATEGIES,
    ) -> ExperimentSuiteResult:
        """Run several strategies on the same experiment cell (paper Fig. 4).

        The profile table is computed once and shared by every strategy,
        exactly as Pipe-BD's one-off profiling pass is shared by its
        scheduling decisions.

        Example:
            >>> from repro import ExperimentConfig, Session
            >>> config = ExperimentConfig(batch_size=128, simulated_steps=4)
            >>> suite = Session().ablation(config, strategies=("DP", "LS"))
            >>> sorted(suite.results)
            ['DP', 'LS']
        """
        strategies = tuple(strategies)
        for strategy in strategies:
            REGISTRY.get(strategy)  # fail fast with the known-strategy list
        suite = ExperimentSuiteResult(config=config)
        for strategy in strategies:
            suite.results[strategy] = self.run(config, strategy=strategy)
        return suite

    # ------------------------------------------------------------------ #
    # Grid sweeps
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        base_config: ExperimentConfig,
        *,
        batch_sizes: Optional[Sequence[int]] = None,
        num_gpus: Optional[Sequence[int]] = None,
        datasets: Optional[Sequence[str]] = None,
        servers: Optional[Sequence[str]] = None,
        tasks: Optional[Sequence[str]] = None,
        strategies: Optional[Sequence[str]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> SweepResult:
        """Evaluate a strategy set over the grid of the given axes.

        Every axis defaults to the single value in ``base_config``; the grid
        is the cartesian product of the provided axes.  Cells execute on an
        execution backend: ``backend=`` overrides per call, ``parallel=True``
        is back-compat shorthand for the ``thread`` backend, and the session
        default (``Session(backend=...)``) applies otherwise.  The thread
        backend prewarms caches serially before its pool starts, so the
        exactly-once profile guarantee holds; the ``process`` backend fans
        cells out to worker interpreters sharing this session's on-disk
        store.

        Example:
            >>> from repro import ExperimentConfig, Session
            >>> base = ExperimentConfig(batch_size=128, simulated_steps=4)
            >>> sweep = Session().sweep(base, num_gpus=(2, 4),
            ...                         strategies=("TR",))
            >>> len(sweep.cells)
            2
        """
        def axis(name: str, values: Optional[Sequence]) -> Tuple:
            if values is None:
                return (getattr(base_config, name),)
            values = tuple(values)
            if not values:
                raise ConfigurationError(
                    f"sweep axis {name!r} is empty; pass None to keep the base "
                    "config's value"
                )
            return values

        axes: Dict[str, Tuple] = {
            "batch_size": axis("batch_size", batch_sizes),
            "num_gpus": axis("num_gpus", num_gpus),
            "dataset": axis("dataset", datasets),
            "server": axis("server", servers),
            "task": axis("task", tasks),
        }
        strategy_set = (
            tuple(strategies) if strategies is not None else (base_config.strategy,)
        )
        if not strategy_set:
            raise ConfigurationError("sweep needs at least one strategy")
        for strategy in strategy_set:
            REGISTRY.get(strategy)

        names = tuple(axes)
        configs: List[ExperimentConfig] = [
            replace(base_config, **dict(zip(names, values)))
            for values in itertools.product(*(axes[name] for name in names))
        ]

        chosen = self._sweep_backend(backend, parallel, max_workers)
        tasks = [
            (config, strategy) for config in configs for strategy in strategy_set
        ]
        get_registry().counter(
            "repro_session_sweeps_total", "Session.sweep grid evaluations"
        ).inc(backend=chosen.name)
        with span(
            "session.sweep",
            cells=len(configs),
            tasks=len(tasks),
            backend=chosen.name,
        ):
            results = chosen.run_cells(self, tasks)
        if len(results) != len(tasks):
            raise ConfigurationError(
                f"backend {chosen.name!r} returned {len(results)} results for "
                f"{len(tasks)} tasks"
            )
        cells_list: List[ExperimentSuiteResult] = []
        flat = iter(results)
        for config in configs:
            suite = ExperimentSuiteResult(config=config)
            for strategy in strategy_set:
                suite.results[strategy] = next(flat)
            cells_list.append(suite)
        cells = tuple(cells_list)

        return SweepResult(
            base_config=base_config,
            strategies=strategy_set,
            cells=cells,
            axes={name: values for name, values in axes.items() if len(values) > 1},
        )

    def _sweep_backend(
        self,
        backend: Union[str, ExecutionBackend, None],
        parallel: bool,
        max_workers: Optional[int],
    ) -> ExecutionBackend:
        """Resolve the backend one sweep call should use.

        Precedence: explicit ``backend=`` > ``parallel=True`` (thread
        shorthand) > the session default.  ``max_workers`` specialises the
        pool-based backends without mutating the registered singletons.
        """
        from repro.store.backends import ProcessBackend, ThreadBackend

        if backend is None:
            resolved = ThreadBackend() if parallel else self._backend
        else:
            resolved = resolve_backend(backend)
        if max_workers is not None:
            if resolved.name == "thread":
                resolved = ThreadBackend(max_workers=max_workers)
            elif resolved.name == "process":
                resolved = ProcessBackend(max_workers=max_workers)
        return resolved

    # ------------------------------------------------------------------ #
    # Autotuning
    # ------------------------------------------------------------------ #
    def tune(
        self,
        space=None,
        *,
        objective="epoch_time",
        driver="successive-halving",
        budget: int = 64,
        seed: int = 0,
        simulated_steps: int = 10,
        throughput_jobs: int = 12,
        faults=None,
        elastic: str = "restart",
        fault_seed: int = 0,
        tenants=None,
        price_curve=None,
        slo_deadline_slack: float = 900.0,
    ):
        """Search a tuning space for the best candidate under an objective.

        Thin delegate to :func:`repro.tune.tuner.tune` bound to this
        session, so tuning shares every cache (pairs, profiles, executors)
        with prior runs and sweeps — refinement rounds only re-simulate
        changed cells.  See ``docs/TUNING.md`` for the full guide.

        Example:
            >>> from repro import Session
            >>> from repro.tune import TuneSpace
            >>> session = Session()
            >>> result = session.tune(
            ...     TuneSpace(strategies=("DP", "TR+DPU+AHD"),
            ...               batch_sizes=(128, 256), gpu_counts=(2,)),
            ...     budget=4, simulated_steps=4)
            >>> result.best.point.strategy
            'TR+DPU+AHD'
        """
        from repro.tune.tuner import tune as run_tune

        get_registry().counter(
            "repro_session_tunes_total", "Session.tune searches"
        ).inc(driver=str(driver))
        with span("session.tune", driver=str(driver), budget=budget):
            return run_tune(
                space,
                objective=objective,
                driver=driver,
                budget=budget,
                seed=seed,
                session=self,
                simulated_steps=simulated_steps,
                throughput_jobs=throughput_jobs,
                faults=faults,
                elastic=elastic,
                fault_seed=fault_seed,
                tenants=tenants,
                price_curve=price_curve,
                slo_deadline_slack=slo_deadline_slack,
            )


# ---------------------------------------------------------------------- #
# Default session (backing the run_experiment / run_ablation shims)
# ---------------------------------------------------------------------- #
_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def get_default_session() -> Session:
    """The process-wide session used by the module-level runner shims."""
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session()
        return _DEFAULT_SESSION


def reset_default_session() -> Session:
    """Replace the default session with a fresh one (tests, memory pressure)."""
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        _DEFAULT_SESSION = Session()
        return _DEFAULT_SESSION
