"""Dataset descriptors and the shared data-loading cost model."""

from repro.data.dataset import DatasetSpec, CIFAR10, IMAGENET, get_dataset
from repro.data.loader import DataLoadModel

__all__ = ["DatasetSpec", "CIFAR10", "IMAGENET", "get_dataset", "DataLoadModel"]
