"""Dataset descriptors for the two datasets the paper uses.

The scheduler and simulator only need the quantities that affect throughput:
how many training samples there are (steps per epoch), the decoded tensor
size per sample (data-loading volume and the input activation of block 0),
and the on-disk size per sample (storage read volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.models.layers import BYTES_PER_ELEMENT


@dataclass(frozen=True)
class DatasetSpec:
    """Throughput-relevant description of an image-classification dataset."""

    name: str
    num_train: int
    num_val: int
    sample_shape: Tuple[int, int, int]
    num_classes: int
    disk_bytes_per_sample: float
    #: CPU time to decode + augment one sample on a single core, in seconds.
    #: CIFAR-10 samples are raw tensors (cheap); ImageNet samples are JPEGs
    #: whose decode dominates the loading pipeline.
    per_sample_decode_cpu_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.num_train <= 0 or self.num_val < 0:
            raise ConfigurationError(f"dataset {self.name!r} has invalid sample counts")
        if len(self.sample_shape) != 3:
            raise ConfigurationError("sample_shape must be (C, H, W)")
        if self.per_sample_decode_cpu_s < 0:
            raise ConfigurationError("per_sample_decode_cpu_s must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def decoded_bytes_per_sample(self) -> int:
        """Bytes of one decoded FP32 input tensor (what reaches the GPU)."""
        channels, height, width = self.sample_shape
        return channels * height * width * BYTES_PER_ELEMENT

    def steps_per_epoch(self, batch_size: int) -> int:
        """Number of optimisation steps in one epoch (drop-last semantics)."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        steps = self.num_train // batch_size
        if steps == 0:
            raise ConfigurationError(
                f"batch_size {batch_size} exceeds the dataset size {self.num_train}"
            )
        return steps

    def batch_decoded_bytes(self, batch_size: int) -> float:
        """Decoded bytes of one batch."""
        return float(self.decoded_bytes_per_sample * batch_size)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_train:,} train / {self.num_val:,} val samples, "
            f"{self.sample_shape}, {self.num_classes} classes"
        )


#: CIFAR-10: 50k train images of 3x32x32, ~3 KB raw binary on disk.
CIFAR10 = DatasetSpec(
    name="cifar10",
    num_train=50_000,
    num_val=10_000,
    sample_shape=(3, 32, 32),
    num_classes=10,
    disk_bytes_per_sample=3_073.0,
    per_sample_decode_cpu_s=150e-6,
)

#: ImageNet-1k: 1.28M train images, decoded to 3x224x224 crops, ~110 KB JPEG on disk.
IMAGENET = DatasetSpec(
    name="imagenet",
    num_train=1_281_167,
    num_val=50_000,
    sample_shape=(3, 224, 224),
    num_classes=1000,
    disk_bytes_per_sample=110_000.0,
    per_sample_decode_cpu_s=4e-3,
)

_KNOWN = {"cifar10": CIFAR10, "imagenet": IMAGENET}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset descriptor by name."""
    key = name.lower()
    if key not in _KNOWN:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known datasets: {sorted(_KNOWN)}"
        )
    return _KNOWN[key]
