"""Shared data-loading cost model.

Combines a :class:`~repro.data.dataset.DatasetSpec` with a
:class:`~repro.hardware.host.HostSpec` to answer the single question the
schedulers need: *how long does it take to produce one batch on the GPU,
given how many training processes are loading concurrently?*

Two terms compete for each batch:

* an I/O term — the larger of the on-disk and decoded byte volume pushed
  through the host's storage/copy pipeline; and
* a CPU term — per-sample decode + augmentation work spread over the host's
  cores.

Both are shared system-wide, so concurrent loaders (the DP and LS baselines
run one loader per training process) divide the available throughput — this
is the "extra data loading" overhead of §I that teacher relaying removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError
from repro.hardware.host import HostSpec


@dataclass(frozen=True)
class DataLoadModel:
    """Batch-loading time estimates for one (dataset, host) pair."""

    dataset: DatasetSpec
    host: HostSpec

    def batch_bytes(self, batch_size: int) -> float:
        """Bytes the loader pipeline must move for one batch."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        decoded = self.dataset.batch_decoded_bytes(batch_size)
        on_disk = self.dataset.disk_bytes_per_sample * batch_size
        return max(decoded, on_disk)

    def batch_cpu_time(self, batch_size: int) -> float:
        """CPU decode/augment time for one batch using every host core."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        return batch_size * self.dataset.per_sample_decode_cpu_s / self.host.num_cores

    def batch_load_time(self, batch_size: int, concurrent_loaders: int = 1) -> float:
        """Time to produce one batch with ``concurrent_loaders`` active.

        The I/O and CPU pipelines run in parallel with each other, so the
        batch time is the larger of the two, plus a fixed per-batch overhead.
        Concurrent loaders divide both shared resources.
        """
        if concurrent_loaders < 1:
            raise ConfigurationError("concurrent_loaders must be >= 1")
        io_time = self.batch_bytes(batch_size) / self.host.loader_throughput
        cpu_time = self.batch_cpu_time(batch_size)
        return self.host.per_batch_overhead_s + concurrent_loaders * max(io_time, cpu_time)

    def epoch_load_time(self, batch_size: int, concurrent_loaders: int = 1) -> float:
        """Total loading time over one epoch (one pass over the dataset)."""
        steps = self.dataset.steps_per_epoch(batch_size)
        return steps * self.batch_load_time(batch_size, concurrent_loaders)

    def describe(self) -> str:
        return f"loader({self.dataset.name} on {self.host.name})"
