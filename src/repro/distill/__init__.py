"""Numerical blockwise distillation on a small numpy autograd engine.

The scheduling work in :mod:`repro.parallel` treats training as opaque tasks;
this subpackage provides the actual mathematics so the paper's key
correctness claim — "Pipe-BD has no component that can hurt the accuracy
because it only alters the scheduling strategy" (§VII-D) — can be verified:

* :mod:`repro.distill.tensor` — a reverse-mode autodiff ``Tensor``.
* :mod:`repro.distill.nn` — layers (conv, depthwise conv, linear, batch norm,
  ReLU, pooling) and containers.
* :mod:`repro.distill.supernet` — NAS mixed operations with architecture
  parameters.
* :mod:`repro.distill.loss` / :mod:`repro.distill.optim` — the blockwise
  distillation loss and SGD with momentum.
* :mod:`repro.distill.trainer` — blockwise distillation under the baseline's
  sequential update order and under Pipe-BD's decoupled order; the two
  produce identical parameters.
"""

from repro.distill.tensor import Tensor
from repro.distill.nn import (
    Module,
    Linear,
    Conv2d,
    DepthwiseConv2d,
    BatchNorm2d,
    ReLU,
    GlobalAvgPool,
    Sequential,
)
from repro.distill.supernet import MixedOp
from repro.distill.loss import blockwise_distillation_loss, mse_loss
from repro.distill.optim import SGD
from repro.distill.trainer import (
    BlockPair,
    BlockwiseDistiller,
    train_sequential,
    train_decoupled,
)
from repro.distill.datasets import SyntheticImageDataset

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "GlobalAvgPool",
    "Sequential",
    "MixedOp",
    "blockwise_distillation_loss",
    "mse_loss",
    "SGD",
    "BlockPair",
    "BlockwiseDistiller",
    "train_sequential",
    "train_decoupled",
    "SyntheticImageDataset",
]
