"""Synthetic datasets for the numerical distillation experiments.

Real CIFAR-10 / ImageNet data is unavailable offline; the equivalence and
convergence experiments only need inputs with the right shape and a
deterministic ordering, which a seeded synthetic dataset provides.  The
teacher is itself a randomly-initialised network, so the distillation targets
are well-defined functions of the inputs regardless of where the inputs come
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class SyntheticImageDataset:
    """Deterministic synthetic image batches.

    Parameters
    ----------
    num_samples:
        Total samples in the dataset.
    sample_shape:
        Per-sample (C, H, W) shape.
    num_classes:
        Number of label classes.
    seed:
        Seed for the generator; two datasets with the same seed produce the
        same batches in the same order (needed for the equivalence proof).
    """

    num_samples: int = 256
    sample_shape: Tuple[int, int, int] = (3, 8, 8)
    num_classes: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if len(self.sample_shape) != 3:
            raise ConfigurationError("sample_shape must be (C, H, W)")
        rng = np.random.default_rng(self.seed)
        self._images = rng.normal(0.0, 1.0, size=(self.num_samples,) + self.sample_shape)
        self._labels = rng.integers(0, self.num_classes, size=self.num_samples)

    def __len__(self) -> int:
        return self.num_samples

    def batch(self, start: int, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """A contiguous batch starting at ``start`` (wrapping around)."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        indices = [(start + offset) % self.num_samples for offset in range(batch_size)]
        return self._images[indices], self._labels[indices]

    def batches(self, batch_size: int, num_batches: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``num_batches`` consecutive batches from the start."""
        for step in range(num_batches):
            yield self.batch(step * batch_size, batch_size)
