"""Functional building blocks with custom forward/backward implementations.

The convolution and pooling primitives are implemented directly in numpy with
hand-written backward closures (rather than composing autodiff primitives)
because that keeps the hot loops vectorised over the batch and channel
dimensions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.distill.tensor import Tensor, _make
from repro.errors import ShapeError


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _unpad_grad(grad: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return grad
    return grad[:, :, padding:-padding, padding:-padding]


def conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """Standard 2-D convolution, NCHW layout, no bias.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``.
    """
    x_data = x.data
    w_data = weight.data
    if x_data.ndim != 4 or w_data.ndim != 4:
        raise ShapeError("conv2d expects 4-D input and weight tensors")
    batch, in_channels, height, width = x_data.shape
    out_channels, w_in_channels, kernel, kernel2 = w_data.shape
    if kernel != kernel2:
        raise ShapeError("conv2d only supports square kernels")
    if w_in_channels != in_channels:
        raise ShapeError(
            f"weight expects {w_in_channels} input channels, input has {in_channels}"
        )
    padded = _pad_input(x_data, padding)
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w), dtype=np.float64)
    for ki in range(kernel):
        for kj in range(kernel):
            patch = padded[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride]
            out += np.einsum("nihw,oi->nohw", patch, w_data[:, :, ki, kj])

    def backward(grad: np.ndarray):
        grad_padded = np.zeros_like(padded)
        grad_weight = np.zeros_like(w_data)
        for ki in range(kernel):
            for kj in range(kernel):
                patch = padded[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ]
                grad_weight[:, :, ki, kj] = np.einsum("nohw,nihw->oi", grad, patch)
                grad_padded[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += np.einsum("nohw,oi->nihw", grad, w_data[:, :, ki, kj])
        return _unpad_grad(grad_padded, padding), grad_weight

    return _make(out, (x, weight), backward)


def depthwise_conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """Depthwise 2-D convolution; ``weight`` has shape ``(channels, 1, k, k)``."""
    x_data = x.data
    w_data = weight.data
    if x_data.ndim != 4 or w_data.ndim != 4 or w_data.shape[1] != 1:
        raise ShapeError("depthwise_conv2d expects NCHW input and (C, 1, k, k) weight")
    batch, channels, height, width = x_data.shape
    w_channels, _, kernel, _ = w_data.shape
    if w_channels != channels:
        raise ShapeError(f"weight has {w_channels} channels, input has {channels}")
    padded = _pad_input(x_data, padding)
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    out = np.zeros((batch, channels, out_h, out_w), dtype=np.float64)
    for ki in range(kernel):
        for kj in range(kernel):
            patch = padded[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride]
            out += patch * w_data[None, :, 0, ki, kj][..., None, None]

    def backward(grad: np.ndarray):
        grad_padded = np.zeros_like(padded)
        grad_weight = np.zeros_like(w_data)
        for ki in range(kernel):
            for kj in range(kernel):
                patch = padded[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ]
                grad_weight[:, 0, ki, kj] = np.einsum("nchw,nchw->c", grad, patch)
                grad_padded[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += grad * w_data[None, :, 0, ki, kj][..., None, None]
        return _unpad_grad(grad_padded, padding), grad_weight

    return _make(out, (x, weight), backward)


def global_avg_pool(x: Tensor) -> Tensor:
    """Global average pooling from NCHW to NC."""
    if x.ndim != 4:
        raise ShapeError("global_avg_pool expects a 4-D NCHW tensor")
    batch, channels, height, width = x.shape
    scale = 1.0 / (height * width)
    out = x.data.mean(axis=(2, 3))

    def backward(grad: np.ndarray):
        expanded = np.broadcast_to(
            grad[:, :, None, None] * scale, (batch, channels, height, width)
        ).copy()
        return (expanded,)

    return _make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with a square window."""
    if stride is None:
        stride = kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.zeros((batch, channels, out_h, out_w), dtype=np.float64)
    for ki in range(kernel):
        for kj in range(kernel):
            out += x.data[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride]
    out /= kernel * kernel

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x.data)
        scaled = grad / (kernel * kernel)
        for ki in range(kernel):
            for kj in range(kernel):
                grad_x[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += scaled
        return (grad_x,)

    return _make(out, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    eps: float = 1e-5,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Batch normalisation over (N, H, W) per channel.

    Returns the normalised tensor plus the batch mean and variance so the
    layer can maintain running statistics.
    """
    if x.ndim != 4:
        raise ShapeError("batch_norm2d expects a 4-D NCHW tensor")
    mean = x.data.mean(axis=(0, 2, 3))
    var = x.data.var(axis=(0, 2, 3))
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]
    count = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]

    def backward(grad: np.ndarray):
        grad_gamma = np.einsum("nchw,nchw->c", grad, x_hat)
        grad_beta = grad.sum(axis=(0, 2, 3))
        grad_xhat = grad * gamma.data[None, :, None, None]
        sum_grad_xhat = grad_xhat.sum(axis=(0, 2, 3))
        sum_grad_xhat_xhat = np.einsum("nchw,nchw->c", grad_xhat, x_hat)
        grad_x = (
            inv_std[None, :, None, None]
            / count
            * (
                count * grad_xhat
                - sum_grad_xhat[None, :, None, None]
                - x_hat * sum_grad_xhat_xhat[None, :, None, None]
            )
        )
        return grad_x, grad_gamma, grad_beta

    return _make(out, (x, gamma, beta), backward), mean, var
