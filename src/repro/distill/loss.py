"""Loss functions for blockwise distillation.

Blockwise distillation minimises ``L(delta_output)``, a measure of the
difference between the teacher block's output activation and the student
block's output activation for the same input (paper §II-A, Fig. 1).  The
usual choice — used by DNA and by the compression literature — is the mean
squared error between the two activations, optionally normalised per channel.
"""

from __future__ import annotations

from repro.distill.tensor import Tensor, as_tensor
from repro.errors import ShapeError


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"mse_loss shapes differ: {prediction.shape} vs {target.shape}"
        )
    diff = prediction - target.detach()
    return (diff * diff).mean()


def blockwise_distillation_loss(student_out: Tensor, teacher_out: Tensor) -> Tensor:
    """The per-block distillation loss ``L(delta_output)``.

    The teacher activation is detached: the teacher is frozen and only
    provides the regression target.
    """
    return mse_loss(student_out, teacher_out.detach())


def cross_entropy_loss(logits: Tensor, labels) -> Tensor:
    """Softmax cross-entropy with integer labels (used for validation heads)."""
    import numpy as np

    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError("cross_entropy_loss expects (batch, classes) logits")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError("labels must be a 1-D array matching the batch size")
    probabilities = logits.softmax(axis=-1)
    one_hot = np.zeros(logits.shape)
    one_hot[np.arange(labels.shape[0]), labels] = 1.0
    picked = (probabilities * Tensor(one_hot)).sum(axis=-1)
    return -(picked.log().mean())
