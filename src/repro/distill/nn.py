"""Neural-network modules built on the autograd engine."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.distill import functional as F
from repro.distill.tensor import Tensor
from repro.errors import ConfigurationError, ShapeError


class Module:
    """Base class: parameter registration, train/eval mode, state export."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def parameters(self) -> Iterator[Tensor]:
        """All trainable parameters, depth-first."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return int(sum(parameter.data.size for parameter in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every parameter, keyed by dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise ConfigurationError(f"state dict is missing parameters: {sorted(missing)}")
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ShapeError(
                    f"parameter {name}: expected shape {parameter.data.shape}, "
                    f"got {state[name].shape}"
                )
            parameter.data = state[name].copy()

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


def _kaiming(shape: Sequence[int], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    scale = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, scale, size=shape)


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(_kaiming((in_features, out_features), in_features, rng))
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter("bias", Tensor(np.zeros(out_features)))

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (square kernel, no bias)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int | None = None,
        rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if padding is None:
            padding = kernel // 2
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        self.weight = self.register_parameter(
            "weight",
            Tensor(_kaiming((out_channels, in_channels, kernel, kernel), fan_in, rng)),
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, stride=self.stride, padding=self.padding)


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (square kernel, no bias)."""

    def __init__(
        self, channels: int, kernel: int, stride: int = 1, padding: int | None = None, rng=None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if padding is None:
            padding = kernel // 2
        self.stride = stride
        self.padding = padding
        self.weight = self.register_parameter(
            "weight", Tensor(_kaiming((channels, 1, kernel, kernel), kernel * kernel, rng))
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.depthwise_conv2d(x, self.weight, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalisation with running statistics."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter("gamma", Tensor(np.ones(channels)))
        self.beta = self.register_parameter("beta", Tensor(np.zeros(channels)))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            out, mean, var = F.batch_norm2d(x, self.gamma, self.beta, eps=self.eps)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
            return out
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = Tensor((self.gamma.data * inv_std)[None, :, None, None])
        shift = Tensor(
            (self.beta.data - self.gamma.data * self.running_mean * inv_std)[None, :, None, None]
        )
        return x * scale + shift


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GlobalAvgPool(Module):
    """Global average pooling from NCHW to NC."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool(x)


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class Flatten(Module):
    """Flatten all dimensions but the batch."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        features = int(np.prod(x.shape[1:]))
        return x.reshape(batch, features)


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"m{index}"
            self.register_module(name, module)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


def conv_bn_relu(in_channels: int, out_channels: int, kernel: int = 3, stride: int = 1, rng=None) -> Sequential:
    """The standard conv + BN + ReLU unit used by the example networks."""
    return Sequential(
        Conv2d(in_channels, out_channels, kernel, stride=stride, rng=rng),
        BatchNorm2d(out_channels),
        ReLU(),
    )


def dsconv_bn_relu(in_channels: int, out_channels: int, kernel: int = 3, stride: int = 1, rng=None) -> Sequential:
    """Depthwise-separable replacement unit (the compression student's cell)."""
    return Sequential(
        DepthwiseConv2d(in_channels, kernel, stride=stride, rng=rng),
        BatchNorm2d(in_channels),
        ReLU(),
        Conv2d(in_channels, out_channels, 1, stride=1, padding=0, rng=rng),
        BatchNorm2d(out_channels),
        ReLU(),
    )
