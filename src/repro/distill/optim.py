"""Optimisers.

The paper trains with SGD (learning rate 0.1 for compression, 0.005 for the
NAS search, §VI-B); we provide SGD with optional momentum and weight decay.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.distill.tensor import Tensor
from repro.errors import ConfigurationError


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("SGD received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update; parameters with no gradient are left untouched."""
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad

    def state_size(self) -> int:
        """Number of momentum-buffer elements currently held."""
        return int(sum(velocity.size for velocity in self._velocity.values()))
