"""NAS supernet components: mixed operations with architecture parameters.

ProxylessNAS-style search associates every candidate operation of a layer
with a trainable architecture parameter; each step the candidates' outputs
are combined with the softmax of those parameters.  Each training step runs
two rounds — one updating the architecture parameters, one updating the
weights (paper §VI-A) — which :class:`repro.distill.trainer.BlockwiseDistiller`
models with its ``rounds`` argument.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.distill.nn import Module
from repro.distill.tensor import Tensor, stack
from repro.errors import ConfigurationError


class MixedOp(Module):
    """A weighted mixture of candidate operations.

    The output is ``sum_k softmax(alpha)_k * op_k(x)``; ``alpha`` is the
    vector of architecture parameters.
    """

    def __init__(self, candidates: Sequence[Module]) -> None:
        super().__init__()
        if not candidates:
            raise ConfigurationError("MixedOp requires at least one candidate")
        self._candidate_names: List[str] = []
        for index, candidate in enumerate(candidates):
            name = f"op{index}"
            self.register_module(name, candidate)
            self._candidate_names.append(name)
        self.alpha = self.register_parameter(
            "alpha", Tensor(np.zeros(len(candidates)))
        )

    @property
    def num_candidates(self) -> int:
        return len(self._candidate_names)

    def candidate(self, index: int) -> Module:
        return self._modules[self._candidate_names[index]]

    def architecture_parameters(self) -> List[Tensor]:
        return [self.alpha]

    def weight_parameters(self) -> List[Tensor]:
        parameters = []
        for name in self._candidate_names:
            parameters.extend(self._modules[name].parameters())
        return parameters

    def selection_probabilities(self) -> np.ndarray:
        """Softmax of the architecture parameters (no gradient tracking)."""
        logits = self.alpha.data - self.alpha.data.max()
        exps = np.exp(logits)
        return exps / exps.sum()

    def selected_index(self) -> int:
        """Index of the currently most probable candidate (the searched op)."""
        return int(np.argmax(self.alpha.data))

    def forward(self, x: Tensor) -> Tensor:
        weights = self.alpha.softmax(axis=-1)
        outputs = [self._modules[name](x) for name in self._candidate_names]
        stacked = stack(outputs, axis=0)
        # Broadcast the candidate weights over the candidate outputs.
        weight_shape = (self.num_candidates,) + (1,) * outputs[0].ndim
        weighted = stacked * weights.reshape(*weight_shape)
        return weighted.sum(axis=0)


def architecture_parameters(module: Module) -> List[Tensor]:
    """Collect the architecture parameters of every MixedOp inside ``module``."""
    collected: List[Tensor] = []
    if isinstance(module, MixedOp):
        collected.extend(module.architecture_parameters())
    for child in module._modules.values():
        collected.extend(architecture_parameters(child))
    return collected


def weight_parameters(module: Module) -> List[Tensor]:
    """Collect every non-architecture parameter inside ``module``."""
    arch_ids = {id(parameter) for parameter in architecture_parameters(module)}
    return [parameter for parameter in module.parameters() if id(parameter) not in arch_ids]


def derive_architecture(module: Module) -> List[int]:
    """Selected candidate index of every MixedOp, in traversal order."""
    selections: List[int] = []
    if isinstance(module, MixedOp):
        selections.append(module.selected_index())
    for child in module._modules.values():
        selections.extend(derive_architecture(child))
    return selections
