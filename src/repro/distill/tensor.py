"""A small reverse-mode automatic differentiation engine over numpy arrays.

Only the operations needed by the distillation networks are implemented:
element-wise arithmetic, matrix multiplication, ReLU, reshaping, reductions,
padding and the im2col-style patch extraction used by the convolution layers.
The design follows the classic tape-less recursive approach: every ``Tensor``
remembers its parents and a backward closure; ``backward()`` topologically
sorts the graph and accumulates gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError

Array = np.ndarray


class Tensor:
    """An array with an optional gradient and autodiff history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[Array], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[Array] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> Array:
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autodiff
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: Array) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[Array] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ShapeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node_grad.shape != node.data.shape:
                node_grad = _unbroadcast(node_grad, node.data.shape)
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + parent_grad
                else:
                    grads[id(parent)] = parent_grad

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: Array):
            return grad, grad

        return _make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: Array):
            return (-grad,)

        return _make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: Array):
            return grad, -grad

        return _make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: Array):
            return grad * other.data, grad * self.data

        return _make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: Array):
            return grad / other.data, -grad * self.data / (other.data ** 2)

        return _make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad: Array):
            return (grad * exponent * self.data ** (exponent - 1),)

        return _make(self.data ** exponent, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: Array):
            return grad @ other.data.T, self.data.T @ grad

        return _make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: Array):
            return (grad * mask,)

        return _make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: Array):
            return (grad * out_data,)

        return _make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: Array):
            return (grad / self.data,)

        return _make(np.log(self.data), (self,), backward)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: Array):
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            return (np.broadcast_to(expanded, self.data.shape).copy(),)

        return _make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: Array):
            return (grad.reshape(original),)

        return _make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, axes: Tuple[int, ...]) -> "Tensor":
        inverse = np.argsort(axes)

        def backward(grad: Array):
            return (grad.transpose(inverse),)

        return _make(self.data.transpose(axes), (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]

        def backward(grad: Array):
            slices = tuple(
                slice(None) if before == 0 else slice(before, -after or None)
                for before, after in pad_width
            )
            return (grad[slices],)

        return _make(np.pad(self.data, pad_width), (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)


def as_tensor(value) -> Tensor:
    """Coerce scalars / arrays to constant tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=False)


def _make(data: Array, parents: Tuple[Tensor, ...], backward) -> Tensor:
    requires = any(parent.requires_grad or parent._parents for parent in parents)
    return Tensor(data, requires_grad=False, parents=parents if requires else parents, backward=backward)


def _unbroadcast(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Reduce a broadcasted gradient back to the original shape."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensor_list = list(tensors)
    datas = [tensor.data for tensor in tensor_list]

    def backward(grad: Array):
        pieces = np.split(grad, len(tensor_list), axis=axis)
        return tuple(piece.squeeze(axis=axis) for piece in pieces)

    return _make(np.stack(datas, axis=axis), tuple(tensor_list), backward)
