"""Blockwise distillation trainers: baseline ordering vs. Pipe-BD ordering.

The paper's correctness argument (§IV-B, §VII-D) is that Pipe-BD changes only
*when* each student block's update is applied relative to the other blocks,
never *what* is computed: "the student blocks have no dependency on the
weight parameters of the other blocks".  This module makes that argument
executable:

* :func:`train_sequential` trains the student blocks the way the DP baseline
  does — block 0 for all its steps, then block 1, and so on — with a shared
  synchronisation point between blocks.
* :func:`train_decoupled` trains every block within each step, updating each
  block's parameters as soon as its own backward pass finishes (Pipe-BD's
  decoupled parameter update), with blocks conceptually living on different
  devices.

Given the same data order, both produce *identical* student parameters and
losses, because each block's gradient depends only on the teacher (frozen)
and on that block's own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.distill.datasets import SyntheticImageDataset
from repro.distill.loss import blockwise_distillation_loss
from repro.distill.nn import Module, Sequential, conv_bn_relu, dsconv_bn_relu
from repro.distill.optim import SGD
from repro.distill.supernet import MixedOp
from repro.distill.tensor import Tensor
from repro.errors import ConfigurationError


@dataclass
class BlockPair:
    """A frozen teacher block and its trainable student block."""

    index: int
    teacher: Module
    student: Module

    def __post_init__(self) -> None:
        self.teacher.eval()
        self.student.train()


@dataclass
class TrainingHistory:
    """Per-block loss curves recorded during training."""

    losses: Dict[int, List[float]] = field(default_factory=dict)

    def record(self, block_index: int, loss: float) -> None:
        self.losses.setdefault(block_index, []).append(float(loss))

    def final_loss(self, block_index: int) -> float:
        curve = self.losses.get(block_index)
        if not curve:
            raise ConfigurationError(f"no losses recorded for block {block_index}")
        return curve[-1]

    def block_indices(self) -> Sequence[int]:
        return sorted(self.losses)


class BlockwiseDistiller:
    """Runs blockwise distillation over a chain of block pairs."""

    def __init__(
        self,
        pairs: Sequence[BlockPair],
        lr: float = 0.05,
        momentum: float = 0.9,
    ) -> None:
        if not pairs:
            raise ConfigurationError("at least one block pair is required")
        self.pairs = list(pairs)
        self.optimizers = [
            SGD(pair.student.parameters(), lr=lr, momentum=momentum) for pair in self.pairs
        ]

    # ------------------------------------------------------------------ #
    def _teacher_activations(self, images: np.ndarray) -> List[Tensor]:
        """Teacher activations at every block boundary (input of each block).

        ``result[i]`` is the input activation of block ``i``; ``result[-1]``
        is appended as the final teacher output so ``result[i + 1]`` is always
        block ``i``'s regression target.
        """
        activations = [Tensor(images)]
        current = Tensor(images)
        for pair in self.pairs:
            current = pair.teacher(current).detach()
            activations.append(current)
        return activations

    def _train_block_step(self, block_index: int, activations: List[Tensor]) -> float:
        """One forward/backward/update of a single student block."""
        pair = self.pairs[block_index]
        optimizer = self.optimizers[block_index]
        block_input = activations[block_index]
        teacher_output = activations[block_index + 1]
        optimizer.zero_grad()
        student_output = pair.student(block_input)
        loss = blockwise_distillation_loss(student_output, teacher_output)
        loss.backward()
        optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------ #
    def train_sequential(
        self, dataset: SyntheticImageDataset, batch_size: int, steps_per_block: int
    ) -> TrainingHistory:
        """Baseline ordering: finish all of block i's steps before block i+1."""
        history = TrainingHistory()
        for block_index in range(len(self.pairs)):
            for step in range(steps_per_block):
                images, _ = dataset.batch(step * batch_size, batch_size)
                activations = self._teacher_activations(images)
                loss = self._train_block_step(block_index, activations)
                history.record(block_index, loss)
        return history

    def train_decoupled(
        self, dataset: SyntheticImageDataset, batch_size: int, steps_per_block: int
    ) -> TrainingHistory:
        """Pipe-BD ordering: every step trains every block, updates decoupled.

        Block ``i`` updates as soon as its own backward finishes; blocks later
        in the chain use *teacher* activations (never student activations), so
        the interleaving cannot change any block's gradients.
        """
        history = TrainingHistory()
        for step in range(steps_per_block):
            images, _ = dataset.batch(step * batch_size, batch_size)
            activations = self._teacher_activations(images)
            for block_index in range(len(self.pairs)):
                loss = self._train_block_step(block_index, activations)
                history.record(block_index, loss)
        return history

    # ------------------------------------------------------------------ #
    def student_state(self) -> Dict[str, np.ndarray]:
        """Concatenated state dict of every student block."""
        state: Dict[str, np.ndarray] = {}
        for pair in self.pairs:
            for name, value in pair.student.state_dict().items():
                state[f"block{pair.index}.{name}"] = value
        return state


# ---------------------------------------------------------------------- #
# Small model factories used by tests, examples and the parity benchmark
# ---------------------------------------------------------------------- #
def build_compression_block_pairs(
    channels: Sequence[int] = (8, 16, 16),
    seed: int = 0,
) -> List[BlockPair]:
    """Tiny VGG-like teacher blocks with depthwise-separable student blocks."""
    rng = np.random.default_rng(seed)
    pairs: List[BlockPair] = []
    in_channels = 3
    for index, out_channels in enumerate(channels):
        teacher = conv_bn_relu(in_channels, out_channels, rng=rng)
        student = dsconv_bn_relu(in_channels, out_channels, rng=rng)
        pairs.append(BlockPair(index=index, teacher=teacher, student=student))
        in_channels = out_channels
    return pairs


def build_nas_block_pairs(
    channels: Sequence[int] = (8, 16),
    kernel_sizes: Sequence[int] = (1, 3),
    seed: int = 0,
) -> List[BlockPair]:
    """Tiny teacher blocks with mixed-op (searchable) student blocks."""
    rng = np.random.default_rng(seed)
    pairs: List[BlockPair] = []
    in_channels = 3
    for index, out_channels in enumerate(channels):
        teacher = conv_bn_relu(in_channels, out_channels, rng=rng)
        candidates = [
            conv_bn_relu(in_channels, out_channels, kernel=kernel, rng=rng)
            for kernel in kernel_sizes
        ]
        student = Sequential(MixedOp(candidates))
        pairs.append(BlockPair(index=index, teacher=teacher, student=student))
        in_channels = out_channels
    return pairs


def train_sequential(
    pairs: Sequence[BlockPair],
    dataset: SyntheticImageDataset,
    batch_size: int = 8,
    steps_per_block: int = 4,
    lr: float = 0.05,
) -> TrainingHistory:
    """Convenience wrapper: train with the baseline's sequential ordering."""
    distiller = BlockwiseDistiller(pairs, lr=lr)
    return distiller.train_sequential(dataset, batch_size, steps_per_block)


def train_decoupled(
    pairs: Sequence[BlockPair],
    dataset: SyntheticImageDataset,
    batch_size: int = 8,
    steps_per_block: int = 4,
    lr: float = 0.05,
) -> TrainingHistory:
    """Convenience wrapper: train with Pipe-BD's decoupled ordering."""
    distiller = BlockwiseDistiller(pairs, lr=lr)
    return distiller.train_decoupled(dataset, batch_size, steps_per_block)
