"""Exception hierarchy for the Pipe-BD reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when an experiment or model configuration is invalid."""


class ScheduleError(ReproError):
    """Raised when a schedule plan is malformed or infeasible."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation cannot make progress."""


class MemoryCapacityError(ReproError):
    """Raised when a plan does not fit in a device's memory capacity."""


class ShapeError(ReproError):
    """Raised when tensor or layer shapes are inconsistent."""


class ClusterError(ReproError):
    """Raised when a cluster workload cannot be scheduled or is malformed."""


class StoreError(ReproError):
    """Raised when the persistent experiment store is unusable or misused."""


class StoreSchemaError(StoreError):
    """Raised when an on-disk store's schema version does not match the library."""
