"""Analytical hardware models of the paper's single-node multi-GPU servers.

The paper evaluates on two servers (Table I):

* Default: 4x NVIDIA RTX A6000 + 1x AMD EPYC 7302 (16 cores), PCIe 4.0.
* Alternative: 4x NVIDIA RTX 2080Ti + 2x Intel Xeon Silver 4214, PCIe 3.0.

None of that hardware is available here, so this subpackage replaces it with
calibrated analytical models: a roofline-style per-layer execution-time model
with a batch-size-dependent efficiency curve (capturing the small-batch
under-utilization that motivates teacher relaying), a PCIe transfer model for
activation relaying and gradient all-reduce, a shared host data-loading model,
and memory-footprint accounting for Fig. 7.
"""

from repro.hardware.gpu import GPUSpec, RTX_A6000, RTX_2080TI
from repro.hardware.interconnect import InterconnectSpec, PCIE_3, PCIE_4
from repro.hardware.host import HostSpec, EPYC_7302, XEON_4214_DUAL
from repro.hardware.cost_model import CostModel
from repro.hardware.memory import MemoryModel
from repro.hardware.server import (
    ServerSpec,
    default_a6000_server,
    alternative_2080ti_server,
    get_server,
)

__all__ = [
    "GPUSpec",
    "RTX_A6000",
    "RTX_2080TI",
    "InterconnectSpec",
    "PCIE_3",
    "PCIE_4",
    "HostSpec",
    "EPYC_7302",
    "XEON_4214_DUAL",
    "CostModel",
    "MemoryModel",
    "ServerSpec",
    "default_a6000_server",
    "alternative_2080ti_server",
    "get_server",
]
