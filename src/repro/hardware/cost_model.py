"""Roofline-style execution-time model for blocks on a GPU.

Every "execution time" used by the schedulers and the discrete-event
simulator comes from this module.  The per-layer forward time is

    t_fwd(layer, batch) = max(compute_time, memory_time) + launch_overhead

where ``compute_time = batch * flops / effective_flops(batch, kind)`` and
``memory_time = batch * traffic_bytes / mem_bandwidth``.  Backward passes are
modelled as ``BACKWARD_FLOP_FACTOR`` times the forward compute (the usual
2x: grad-input plus grad-weight GEMMs), with the same bandwidth term.

The model intentionally reproduces the *relationships* the paper's evaluation
relies on — block-0 dominance at ImageNet resolution, poor efficiency at
small per-device batches, memory-bound depthwise convolutions — rather than
absolute wall-clock numbers of the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.models.blocks import BlockSpec
from repro.models.layers import LayerSpec
from repro.models.network import NetworkSpec
from repro.hardware.gpu import GPUSpec

#: Backward-pass FLOPs relative to forward (grad-input + grad-weight).
BACKWARD_FLOP_FACTOR = 2.0


@dataclass(frozen=True)
class CostModel:
    """Execution-time estimates for one GPU type."""

    gpu: GPUSpec
    # Memo of block-level times keyed by (id(block), batch, pass): a tune
    # sweep re-derives the same (block, batch) cell thousands of times and
    # pays the per-layer roofline walk once.  Identity keys skip hashing the
    # whole layer tuple on every lookup; ``_block_refs`` pins each keyed
    # block so its id cannot be recycled.  GPUSpec holds a plain-dict
    # efficiency table and is unhashable, which rules out lru_cache on the
    # methods; the memo lives on the instance instead and ServerSpec reuses
    # the instance (see ServerSpec.cost_model).
    _block_times: Dict[Tuple[int, int, str], float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _block_refs: Dict[int, BlockSpec] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Layer-level estimates
    # ------------------------------------------------------------------ #
    def layer_forward_time(self, layer: LayerSpec, batch: int) -> float:
        """Forward time of one layer for a per-device batch."""
        self._check_batch(batch)
        if batch == 0:
            return 0.0
        work_macs = layer.macs * batch
        flops = layer.flops * batch
        # Activations are read/written once per sample; weights are read once
        # per kernel launch regardless of the batch size.
        traffic = (layer.in_bytes + layer.out_bytes) * batch + layer.weight_bytes
        compute_time = flops / self.gpu.effective_flops(work_macs, layer.kind)
        memory_time = traffic / self.gpu.mem_bandwidth
        return max(compute_time, memory_time) + self.gpu.kernel_launch_overhead_s

    def layer_backward_time(self, layer: LayerSpec, batch: int) -> float:
        """Backward time of one layer for a per-device batch."""
        self._check_batch(batch)
        if batch == 0:
            return 0.0
        work_macs = BACKWARD_FLOP_FACTOR * layer.macs * batch
        flops = BACKWARD_FLOP_FACTOR * layer.flops * batch
        # Backward reads the stored activation and the upstream gradient and
        # writes both gradients: roughly twice the forward activation traffic,
        # plus one read and one write of the weights (grad-weight output).
        traffic = 2.0 * (layer.in_bytes + layer.out_bytes) * batch + 2.0 * layer.weight_bytes
        compute_time = flops / self.gpu.effective_flops(work_macs, layer.kind)
        memory_time = traffic / self.gpu.mem_bandwidth
        return max(compute_time, memory_time) + self.gpu.kernel_launch_overhead_s

    # ------------------------------------------------------------------ #
    # Block-level estimates
    # ------------------------------------------------------------------ #
    def block_forward_time(self, block: BlockSpec, batch: int) -> float:
        """Forward time of a whole block (teacher or student)."""
        key = (id(block), batch, "fwd")
        cached = self._block_times.get(key)
        if cached is None:
            cached = sum(self.layer_forward_time(layer, batch) for layer in block.layers)
            self._block_times[key] = cached
            self._block_refs[id(block)] = block
        return cached

    def block_backward_time(self, block: BlockSpec, batch: int) -> float:
        """Backward time of a whole block (student only; teachers are frozen)."""
        key = (id(block), batch, "bwd")
        cached = self._block_times.get(key)
        if cached is None:
            cached = sum(self.layer_backward_time(layer, batch) for layer in block.layers)
            self._block_times[key] = cached
            self._block_refs[id(block)] = block
        return cached

    def block_training_time(self, block: BlockSpec, batch: int) -> float:
        """Forward + backward time of a student block."""
        return self.block_forward_time(block, batch) + self.block_backward_time(block, batch)

    def weight_update_time(self, block: BlockSpec, batch: int = 0) -> float:
        """SGD weight-update time for a block (bandwidth bound over params).

        Momentum SGD reads the weight and momentum buffers and writes both:
        roughly four parameter-sized tensors of traffic.
        """
        del batch  # update cost is independent of the batch size
        traffic = 4.0 * block.weight_bytes
        return traffic / self.gpu.mem_bandwidth + self.gpu.kernel_launch_overhead_s

    # ------------------------------------------------------------------ #
    # Network-level estimates
    # ------------------------------------------------------------------ #
    def network_forward_time(self, network: NetworkSpec, batch: int) -> float:
        """Forward time of an entire network."""
        return sum(self.block_forward_time(block, batch) for block in network.blocks)

    def prefix_forward_time(self, network: NetworkSpec, end_block: int, batch: int) -> float:
        """Forward time of blocks ``0 .. end_block`` inclusive.

        This is the per-step teacher cost the DP/LS baselines pay to train
        student block ``end_block``.
        """
        if end_block < 0 or end_block >= network.num_blocks:
            raise ConfigurationError(f"end_block {end_block} out of range")
        return sum(
            self.block_forward_time(network.block(index), batch)
            for index in range(end_block + 1)
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_batch(batch: int) -> None:
        if batch < 0:
            raise ConfigurationError(f"batch must be non-negative, got {batch}")
