"""GPU device specifications and utilization (efficiency) curves.

The paper's central throughput argument is about *utilization*: with
data-parallel blockwise distillation each GPU sees only ``batch / N`` samples
per step, which is "often too small to fully utilize the hardware resources"
(§IV-A).  Utilization is fundamentally a property of how much parallel work a
kernel exposes, so we model the achieved fraction of peak throughput as a
saturating function of the *work per kernel launch*:

    efficiency(work) = max_eff * work / (work + half_saturation_work)

A convolution over 224x224 ImageNet feature maps exposes enough parallelism
to saturate an A6000 even at a per-device batch of 64, whereas the same layer
on 32x32 CIFAR-10 inputs does not — which is exactly why the paper's speedups
over the data-parallel baseline are larger on CIFAR-10 and at small batch
sizes (Fig. 6), and why the A6000 (more SMs to fill than a 2080Ti) shows a
larger imbalance between the heavy first block and the rest (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Per-op efficiency caps relative to peak FP32 throughput.  Depthwise convs
#: and element-wise ops are memory-bound and achieve far less of the peak.
DEFAULT_OP_EFFICIENCY = {
    "conv": 0.85,
    "mixed": 0.85,
    "linear": 0.70,
    "dwconv": 0.30,
    "bn": 0.15,
    "relu": 0.15,
    "pool": 0.20,
    "add": 0.15,
    "reshape": 0.10,
}


@dataclass(frozen=True)
class GPUSpec:
    """Analytical model of one GPU.

    Attributes
    ----------
    name:
        Marketing name (``"RTX A6000"``).
    peak_fp32_tflops:
        Peak single-precision throughput in TFLOP/s.
    mem_bandwidth_gbs:
        Peak device-memory bandwidth in GB/s.
    mem_capacity_gb:
        Device memory capacity in GB.
    half_saturation_gmacs:
        Kernel work (in giga-MACs) at which the utilization curve reaches half
        of ``max_efficiency``.  Bigger GPUs need more work per kernel to fill
        their SMs, so this grows with the SM count.
    max_efficiency:
        Asymptotic fraction of peak throughput achievable by well-shaped kernels.
    kernel_launch_overhead_s:
        Fixed per-layer kernel-launch/dispatch overhead in seconds.
    """

    name: str
    peak_fp32_tflops: float
    mem_bandwidth_gbs: float
    mem_capacity_gb: float
    half_saturation_gmacs: float = 0.5
    max_efficiency: float = 0.75
    kernel_launch_overhead_s: float = 8e-6
    op_efficiency: dict = field(default_factory=lambda: dict(DEFAULT_OP_EFFICIENCY))

    def __post_init__(self) -> None:
        if self.peak_fp32_tflops <= 0 or self.mem_bandwidth_gbs <= 0:
            raise ConfigurationError(f"GPU {self.name!r} has non-positive throughput")
        if not 0 < self.max_efficiency <= 1:
            raise ConfigurationError("max_efficiency must be in (0, 1]")
        if self.half_saturation_gmacs <= 0:
            raise ConfigurationError("half_saturation_gmacs must be positive")

    # ------------------------------------------------------------------ #
    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def mem_bandwidth(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9

    @property
    def mem_capacity_bytes(self) -> int:
        return int(self.mem_capacity_gb * 1e9)

    @property
    def half_saturation_macs(self) -> float:
        """Half-saturation work in MACs."""
        return self.half_saturation_gmacs * 1e9

    def work_efficiency(self, macs: float) -> float:
        """Fraction of peak throughput achieved by a kernel doing ``macs`` work.

        Monotonically increasing and saturating at ``max_efficiency``; zero
        work has zero efficiency.
        """
        if macs < 0:
            raise ConfigurationError(f"macs must be non-negative, got {macs}")
        if macs == 0:
            return 0.0
        return self.max_efficiency * macs / (macs + self.half_saturation_macs)

    def batch_efficiency(self, batch: int, macs_per_sample: float = 5e6) -> float:
        """Convenience wrapper: efficiency of a kernel at a given batch size.

        ``macs_per_sample`` defaults to a typical CIFAR-scale layer; callers
        with real layer specs should prefer :meth:`work_efficiency` directly.
        """
        if batch < 0:
            raise ConfigurationError(f"batch must be non-negative, got {batch}")
        return self.work_efficiency(batch * macs_per_sample)

    def effective_flops(self, macs: float, kind: str = "conv") -> float:
        """Achievable FLOP/s for a kernel of ``macs`` work of a given layer kind."""
        cap = self.op_efficiency.get(kind, 0.5)
        return max(
            1.0, self.peak_flops * self.work_efficiency(macs) * cap / self.max_efficiency
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.peak_fp32_tflops:.1f} TFLOP/s, "
            f"{self.mem_bandwidth_gbs:.0f} GB/s, {self.mem_capacity_gb:.0f} GB"
        )


#: NVIDIA RTX A6000 (Ampere): 38.7 TFLOP/s FP32, 768 GB/s GDDR6, 48 GB, 84 SMs.
RTX_A6000 = GPUSpec(
    name="RTX A6000",
    peak_fp32_tflops=38.7,
    mem_bandwidth_gbs=768.0,
    mem_capacity_gb=48.0,
    half_saturation_gmacs=1.0,
    max_efficiency=0.78,
)

#: NVIDIA RTX 2080Ti (Turing): 13.45 TFLOP/s FP32, 616 GB/s GDDR6, 11 GB, 68 SMs.
RTX_2080TI = GPUSpec(
    name="RTX 2080Ti",
    peak_fp32_tflops=13.45,
    mem_bandwidth_gbs=616.0,
    mem_capacity_gb=11.0,
    half_saturation_gmacs=0.35,
    max_efficiency=0.72,
)

_KNOWN_GPUS = {
    "a6000": RTX_A6000,
    "rtx a6000": RTX_A6000,
    "2080ti": RTX_2080TI,
    "rtx 2080ti": RTX_2080TI,
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU preset by (case-insensitive) name."""
    key = name.lower()
    if key not in _KNOWN_GPUS:
        raise ConfigurationError(
            f"unknown GPU {name!r}; known presets: {sorted(set(_KNOWN_GPUS))}"
        )
    return _KNOWN_GPUS[key]
