"""Host (CPU + storage) model: the shared data-loading path.

The paper's third inefficiency is *extra data loading*: under the DP and LS
baselines the dataset is read and decoded once per student block, and "as the
memory and disks are shared system-wide, the extra data loading becomes
another significant overhead" (§I).  We model the host loader as a shared
resource with a fixed per-sample decode/copy cost; concurrent loads from
multiple training processes contend for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HostSpec:
    """Analytical model of the host CPU + storage data-loading path.

    Attributes
    ----------
    name:
        Host description (``"1x EPYC 7302"``).
    num_cores:
        Physical core count (determines how many loader workers run at once).
    loader_throughput_gbs:
        Aggregate throughput of the decode + host-to-device copy pipeline in
        GB/s of *decoded* tensor data when fully parallel.
    per_batch_overhead_s:
        Fixed per-batch overhead (collation, queueing) in seconds.
    memory_gb:
        Host DRAM capacity (for documentation; not a bottleneck we model).
    """

    name: str
    num_cores: int
    loader_throughput_gbs: float
    per_batch_overhead_s: float = 1e-3
    memory_gb: float = 256.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        if self.loader_throughput_gbs <= 0:
            raise ConfigurationError("loader_throughput_gbs must be positive")

    @property
    def loader_throughput(self) -> float:
        """Loader throughput in bytes/s."""
        return self.loader_throughput_gbs * 1e9

    def batch_load_time(self, num_bytes: float, concurrent_loaders: int = 1) -> float:
        """Time to load one batch of ``num_bytes`` decoded tensor data.

        ``concurrent_loaders`` is the number of training processes loading at
        the same time; the shared loader throughput is divided among them,
        which is how the baselines' redundant loading turns into wall-clock
        overhead.
        """
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if concurrent_loaders < 1:
            raise ConfigurationError("concurrent_loaders must be >= 1")
        effective = self.loader_throughput / concurrent_loaders
        return self.per_batch_overhead_s + num_bytes / effective

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_cores} cores, "
            f"{self.loader_throughput_gbs:.1f} GB/s loader throughput"
        )


#: Default server host: one AMD EPYC 7302 (16 cores).
EPYC_7302 = HostSpec(
    name="1x AMD EPYC 7302",
    num_cores=16,
    loader_throughput_gbs=6.0,
)

#: Alternative server host: two Intel Xeon Silver 4214 (2 x 12 cores).
XEON_4214_DUAL = HostSpec(
    name="2x Intel Xeon Silver 4214",
    num_cores=24,
    loader_throughput_gbs=5.0,
)
