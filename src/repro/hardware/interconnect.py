"""PCIe interconnect model: point-to-point transfers and all-reduce.

Teacher relaying sends intermediate activations device-to-device over PCIe
(the paper notes the overhead is "almost negligible" on a single node and
largely overlapped with compute — we still model it so the claim can be
checked).  Data-parallel strategies additionally perform ring all-reduce of
student gradients after every backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterconnectSpec:
    """A symmetric device-to-device interconnect.

    Attributes
    ----------
    name:
        e.g. ``"PCIe 4.0 x16"``.
    bandwidth_gbs:
        Effective unidirectional bandwidth per link in GB/s (already
        discounted for protocol overhead).
    latency_s:
        Fixed per-transfer latency in seconds (driver + DMA setup).
    """

    name: str
    bandwidth_gbs: float
    latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigurationError(f"interconnect {self.name!r} has non-positive bandwidth")
        if self.latency_s < 0:
            raise ConfigurationError("latency must be non-negative")

    @property
    def bandwidth(self) -> float:
        """Bandwidth in bytes/s."""
        return self.bandwidth_gbs * 1e9

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` point-to-point between two devices."""
        if num_bytes < 0:
            raise ConfigurationError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth

    def allreduce_time(self, num_bytes: float, num_devices: int) -> float:
        """Ring all-reduce time for ``num_bytes`` across ``num_devices``.

        The standard ring algorithm moves ``2 * (n - 1) / n`` times the buffer
        per device, in ``2 * (n - 1)`` latency-bound steps.
        """
        if num_devices < 1:
            raise ConfigurationError(f"num_devices must be >= 1, got {num_devices}")
        if num_devices == 1 or num_bytes == 0:
            return 0.0
        volume = 2.0 * (num_devices - 1) / num_devices * num_bytes
        return 2.0 * (num_devices - 1) * self.latency_s + volume / self.bandwidth

    def broadcast_time(self, num_bytes: float, num_devices: int) -> float:
        """Tree broadcast of ``num_bytes`` from one device to the others."""
        if num_devices <= 1 or num_bytes == 0:
            return 0.0
        import math

        hops = math.ceil(math.log2(num_devices))
        return hops * self.transfer_time(num_bytes)

    def describe(self) -> str:
        return f"{self.name}: {self.bandwidth_gbs:.1f} GB/s, {self.latency_s * 1e6:.0f} us latency"


#: PCIe 4.0 x16 — ~32 GB/s theoretical, ~25 GB/s effective.
PCIE_4 = InterconnectSpec(name="PCIe 4.0 x16", bandwidth_gbs=25.0)

#: PCIe 3.0 x16 — ~16 GB/s theoretical, ~12 GB/s effective.
PCIE_3 = InterconnectSpec(name="PCIe 3.0 x16", bandwidth_gbs=12.0)
