"""Per-device memory accounting (paper Fig. 7).

The paper measures the maximum memory allocation per rank under each
strategy.  The dominant terms are:

* **Student training state**: parameters + gradients + SGD momentum buffers
  for every student block resident on the device, plus *all* intermediate
  activations of those blocks at the device's batch size (they must be kept
  for the backward pass).
* **Teacher inference state**: parameters of the teacher blocks executed on
  the device, plus the peak transient activation of a forward-only pass (no
  gradients are needed because the teacher is frozen).
* **Input / relay buffers**: the block input activation received from the
  previous device (or loaded from the host) and the output activation staged
  for sending.

Under TR the early ranks hold the blocks with the largest feature maps, which
is why rank 0's footprint grows (Fig. 7); AHD splits those blocks across
devices along the batch dimension and brings the footprint back down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.models.blocks import BlockSpec

#: Number of parameter-sized buffers kept for a trainable block under
#: momentum SGD: weights + gradients + momentum.
TRAINABLE_STATE_COPIES = 3

#: Framework / CUDA-context baseline allocation per process, in bytes.
FRAMEWORK_BASELINE_BYTES = 0.6e9


@dataclass(frozen=True)
class MemoryModel:
    """Analytical peak-memory estimates for one device's assignment."""

    framework_baseline_bytes: float = FRAMEWORK_BASELINE_BYTES

    # ------------------------------------------------------------------ #
    def student_block_bytes(self, block: BlockSpec, batch: int) -> float:
        """Training-state bytes for one student block at a per-device batch."""
        self._check_batch(batch)
        parameter_state = TRAINABLE_STATE_COPIES * block.weight_bytes
        activations = block.activation_bytes_per_sample * batch
        return float(parameter_state + activations)

    def teacher_block_bytes(self, block: BlockSpec, batch: int) -> float:
        """Inference-state bytes for one frozen teacher block."""
        self._check_batch(batch)
        parameters = block.weight_bytes
        # Forward-only execution keeps at most two consecutive activations
        # resident (input of the current layer and its output).
        transient = 2.0 * block.peak_activation_bytes_per_sample * batch
        return float(parameters + transient)

    def relay_buffer_bytes(self, block: BlockSpec, batch: int) -> float:
        """Send/receive staging buffers for the block boundary activations."""
        self._check_batch(batch)
        return float((block.input_bytes_per_sample + block.output_bytes_per_sample) * batch)

    # ------------------------------------------------------------------ #
    def device_peak_bytes(
        self,
        teacher_blocks: Iterable[BlockSpec],
        student_blocks: Iterable[BlockSpec],
        batch: int,
        resident_teacher_blocks: Iterable[BlockSpec] | None = None,
    ) -> float:
        """Peak allocation of one device.

        Parameters
        ----------
        teacher_blocks:
            Teacher blocks *executed* on this device each step (their
            transient activations contribute at the given batch).
        student_blocks:
            Student blocks *trained* on this device.
        batch:
            Per-device batch size.
        resident_teacher_blocks:
            Teacher blocks whose parameters are resident even if not executed
            every step (the DP baseline keeps the full teacher prefix loaded).
            Defaults to ``teacher_blocks``.
        """
        teacher_blocks = list(teacher_blocks)
        student_blocks = list(student_blocks)
        if resident_teacher_blocks is None:
            resident_blocks = teacher_blocks
        else:
            resident_blocks = list(resident_teacher_blocks)

        total = self.framework_baseline_bytes
        # Resident teacher parameters.
        total += sum(block.weight_bytes for block in resident_blocks)
        # Peak transient teacher activation among executed teacher blocks.
        if teacher_blocks:
            total += max(
                2.0 * block.peak_activation_bytes_per_sample * batch
                for block in teacher_blocks
            )
        # Student training state.
        for block in student_blocks:
            total += self.student_block_bytes(block, batch)
        # Relay buffers for the executed boundary activations.
        if teacher_blocks:
            first = teacher_blocks[0]
            last = teacher_blocks[-1]
            total += first.input_bytes_per_sample * batch
            total += last.output_bytes_per_sample * batch
        return float(total)

    # ------------------------------------------------------------------ #
    def check_capacity(
        self, peak_bytes: float, capacity_bytes: float, label: str = "device"
    ) -> None:
        """Raise if a plan does not fit on the device."""
        from repro.errors import MemoryCapacityError

        if peak_bytes > capacity_bytes:
            raise MemoryCapacityError(
                f"{label}: plan needs {peak_bytes / 1e9:.2f} GB but the device "
                f"has {capacity_bytes / 1e9:.2f} GB"
            )

    @staticmethod
    def average_overhead(per_rank_bytes: Sequence[float], baseline_bytes: Sequence[float]) -> float:
        """Average relative overhead vs. a baseline, as reported in §VII-C."""
        if len(per_rank_bytes) != len(baseline_bytes) or not per_rank_bytes:
            raise ConfigurationError("per-rank sequences must be non-empty and equal length")
        ratios = [
            (ours - base) / base for ours, base in zip(per_rank_bytes, baseline_bytes)
        ]
        return sum(ratios) / len(ratios)

    @staticmethod
    def _check_batch(batch: int) -> None:
        if batch < 0:
            raise ConfigurationError(f"batch must be non-negative, got {batch}")
