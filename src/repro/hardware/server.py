"""Server presets combining GPUs, interconnect and host (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.hardware.cost_model import CostModel
from repro.hardware.gpu import GPUSpec, RTX_2080TI, RTX_A6000
from repro.hardware.host import HostSpec, EPYC_7302, XEON_4214_DUAL
from repro.hardware.interconnect import InterconnectSpec, PCIE_3, PCIE_4
from repro.hardware.memory import MemoryModel


@dataclass(frozen=True)
class ServerSpec:
    """A single-node multi-GPU training server."""

    name: str
    gpus: Tuple[GPUSpec, ...]
    interconnect: InterconnectSpec
    host: HostSpec
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    _cost_models: Dict[int, CostModel] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ConfigurationError(f"server {self.name!r} has no GPUs")

    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.gpus)

    def gpu(self, device_id: int) -> GPUSpec:
        if device_id < 0 or device_id >= len(self.gpus):
            raise ConfigurationError(
                f"device id {device_id} out of range [0, {len(self.gpus)})"
            )
        return self.gpus[device_id]

    def cost_model(self, device_id: int = 0) -> CostModel:
        """Cost model for a device (all presets are homogeneous).

        The instance is cached per device so its block-time memo (see
        :class:`~repro.hardware.cost_model.CostModel`) survives across the
        many short-lived callers that re-request a model for one estimate.
        """
        cached = self._cost_models.get(device_id)
        if cached is None:
            cached = CostModel(gpu=self.gpu(device_id))
            self._cost_models[device_id] = cached
        return cached

    @property
    def is_homogeneous(self) -> bool:
        return len({gpu.name for gpu in self.gpus}) == 1

    def describe(self) -> str:
        gpu_names = ", ".join(gpu.name for gpu in self.gpus)
        return (
            f"{self.name}: {self.num_devices}x [{gpu_names}] over "
            f"{self.interconnect.name}, host {self.host.name}"
        )


def default_a6000_server(num_gpus: int = 4) -> ServerSpec:
    """The paper's default environment: 4x RTX A6000, PCIe 4.0, EPYC 7302."""
    _check_num_gpus(num_gpus)
    return ServerSpec(
        name=f"{num_gpus}x RTX A6000 server",
        gpus=tuple([RTX_A6000] * num_gpus),
        interconnect=PCIE_4,
        host=EPYC_7302,
    )


def alternative_2080ti_server(num_gpus: int = 4) -> ServerSpec:
    """The paper's alternative environment: 4x RTX 2080Ti, PCIe 3.0, 2x Xeon."""
    _check_num_gpus(num_gpus)
    return ServerSpec(
        name=f"{num_gpus}x RTX 2080Ti server",
        gpus=tuple([RTX_2080TI] * num_gpus),
        interconnect=PCIE_3,
        host=XEON_4214_DUAL,
    )


def get_server(name: str, num_gpus: int = 4) -> ServerSpec:
    """Look up a server preset by name (``"a6000"`` or ``"2080ti"``)."""
    key = name.lower()
    if key in ("a6000", "default"):
        return default_a6000_server(num_gpus)
    if key in ("2080ti", "alternative"):
        return alternative_2080ti_server(num_gpus)
    raise ConfigurationError(
        f"unknown server {name!r}; known presets: 'a6000', '2080ti'"
    )


def _check_num_gpus(num_gpus: int) -> None:
    if num_gpus < 1:
        raise ConfigurationError(f"num_gpus must be >= 1, got {num_gpus}")
