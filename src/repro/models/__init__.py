"""Architecture descriptions of the networks evaluated in the paper.

The simulator never runs real tensors through these networks; it only needs
accurate *shapes*, *parameter counts*, *MAC counts* and *activation sizes*
per layer.  Those are exactly what this subpackage provides, for the four
architectures the paper uses:

* :func:`repro.models.mobilenetv2.build_mobilenetv2` — the NAS teacher.
* :func:`repro.models.proxylessnas.build_proxylessnas_supernet` — the NAS
  student search space (ProxylessNAS backbone with kernel sizes 3/5/7 and
  expansion ratios 3/6, as in Table I of the paper).
* :func:`repro.models.vgg.build_vgg16` — the model-compression teacher.
* :func:`repro.models.dsconv.build_dsconv_student` — the depthwise-separable
  replacement student used for compression.
"""

from repro.models.layers import LayerSpec
from repro.models.blocks import BlockSpec
from repro.models.network import NetworkSpec
from repro.models.mobilenetv2 import build_mobilenetv2
from repro.models.proxylessnas import build_proxylessnas_supernet
from repro.models.vgg import build_vgg16
from repro.models.dsconv import build_dsconv_student
from repro.models.pairs import (
    DistillationPair,
    build_nas_pair,
    build_compression_pair,
    build_pair,
)

__all__ = [
    "LayerSpec",
    "BlockSpec",
    "NetworkSpec",
    "build_mobilenetv2",
    "build_proxylessnas_supernet",
    "build_vgg16",
    "build_dsconv_student",
    "DistillationPair",
    "build_nas_pair",
    "build_compression_pair",
    "build_pair",
]
