"""Block specifications: contiguous groups of layers used for distillation.

Blockwise distillation (paper §II-A) splits a network into a small number of
blocks; each teacher block / student block pair is trained independently.
:class:`BlockSpec` aggregates the per-layer costs that the hardware cost model
and the schedulers need: MACs, parameters, activation footprints and the size
of the block's output activation (what gets relayed between devices under
teacher relaying).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ShapeError
from repro.models.layers import BYTES_PER_ELEMENT, LayerSpec, check_chain


@dataclass(frozen=True)
class BlockSpec:
    """A contiguous group of layers treated as one distillation block."""

    name: str
    index: int
    layers: Tuple[LayerSpec, ...]
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ShapeError(f"block {self.name!r} has no layers")
        check_chain(self.layers)

    # ------------------------------------------------------------------ #
    # Shapes
    # ------------------------------------------------------------------ #
    @property
    def in_shape(self) -> Tuple[int, ...]:
        return self.layers[0].in_shape

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return self.layers[-1].out_shape

    # ------------------------------------------------------------------ #
    # Compute / parameter costs
    # ------------------------------------------------------------------ #
    @property
    def macs(self) -> float:
        """Forward MACs per sample."""
        return float(sum(layer.macs for layer in self.layers))

    @property
    def flops(self) -> float:
        """Forward FLOPs per sample."""
        return 2.0 * self.macs

    @property
    def params(self) -> int:
        return int(sum(layer.params for layer in self.layers))

    @property
    def weight_bytes(self) -> int:
        return self.params * BYTES_PER_ELEMENT

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------ #
    # Activation footprints
    # ------------------------------------------------------------------ #
    @property
    def input_bytes_per_sample(self) -> int:
        """Bytes of the block's input activation for one sample."""
        return self.layers[0].in_bytes

    @property
    def output_bytes_per_sample(self) -> int:
        """Bytes of the block's output activation for one sample.

        This is the tensor relayed to the next device under teacher relaying.
        """
        return self.layers[-1].out_bytes

    @property
    def activation_bytes_per_sample(self) -> int:
        """Total bytes of all intermediate activations for one sample.

        During a student backward pass every intermediate activation must be
        kept resident; this is the dominant memory term for early blocks with
        large spatial dimensions (paper §VII-C).
        """
        total = self.layers[0].in_bytes
        total += sum(layer.out_bytes for layer in self.layers)
        return int(total)

    @property
    def peak_activation_bytes_per_sample(self) -> int:
        """Largest single intermediate activation (forward-only residency)."""
        peak = self.layers[0].in_bytes
        for layer in self.layers:
            peak = max(peak, layer.out_bytes)
        return int(peak)

    @property
    def memory_traffic_bytes_per_sample(self) -> int:
        """Per-sample memory traffic of a forward pass through the block."""
        return int(sum(layer.memory_traffic_bytes for layer in self.layers))

    # ------------------------------------------------------------------ #
    # Utility
    # ------------------------------------------------------------------ #
    def layer_names(self) -> Tuple[str, ...]:
        return tuple(layer.name for layer in self.layers)

    def describe(self) -> str:
        """One-line summary used in reports and schedule visualisations."""
        return (
            f"block[{self.index}] {self.name:<12s} layers={self.num_layers:<3d} "
            f"in={self.in_shape} out={self.out_shape} "
            f"params={self.params:,} macs={self.macs:,.0f}"
        )

    def with_index(self, index: int) -> "BlockSpec":
        """Return a copy of this block with a different index."""
        return BlockSpec(
            name=self.name,
            index=index,
            layers=self.layers,
            metadata=dict(self.metadata),
        )


def group_layers_into_blocks(
    layers: Tuple[LayerSpec, ...],
    boundaries: Tuple[int, ...],
    name_prefix: str = "block",
) -> Tuple[BlockSpec, ...]:
    """Split a flat layer chain into blocks at the given boundary indices.

    ``boundaries`` are exclusive end indices of each block, e.g. for 10 layers
    and ``boundaries=(3, 7, 10)`` the blocks contain layers ``[0:3]``,
    ``[3:7]`` and ``[7:10]``.
    """
    if not boundaries:
        raise ShapeError("at least one block boundary is required")
    if sorted(boundaries) != list(boundaries):
        raise ShapeError(f"boundaries must be increasing, got {boundaries}")
    if boundaries[-1] != len(layers):
        raise ShapeError(
            f"last boundary ({boundaries[-1]}) must equal the layer count ({len(layers)})"
        )
    blocks = []
    start = 0
    for block_index, end in enumerate(boundaries):
        if end <= start:
            raise ShapeError(f"block {block_index} would be empty (start={start}, end={end})")
        blocks.append(
            BlockSpec(
                name=f"{name_prefix}{block_index}",
                index=block_index,
                layers=tuple(layers[start:end]),
            )
        )
        start = end
    return tuple(blocks)


def balanced_boundaries(layers: Tuple[LayerSpec, ...], num_blocks: int) -> Tuple[int, ...]:
    """Choose block boundaries that roughly balance MACs across blocks.

    A simple greedy sweep: accumulate layers until the running MAC total
    reaches the next multiple of ``total / num_blocks``.  The final boundary
    always covers the remaining layers.  Used when an architecture does not
    have natural stage boundaries.
    """
    if num_blocks <= 0:
        raise ShapeError("num_blocks must be positive")
    if num_blocks > len(layers):
        raise ShapeError(
            f"cannot split {len(layers)} layers into {num_blocks} blocks"
        )
    total = sum(layer.macs for layer in layers)
    target = total / num_blocks
    boundaries = []
    accumulated = 0.0
    for index, layer in enumerate(layers):
        accumulated += layer.macs
        remaining_layers = len(layers) - (index + 1)
        remaining_blocks = num_blocks - len(boundaries) - 1
        if len(boundaries) < num_blocks - 1 and (
            accumulated >= target * (len(boundaries) + 1)
            or remaining_layers <= remaining_blocks
        ):
            boundaries.append(index + 1)
    boundaries.append(len(layers))
    return tuple(boundaries)
