"""Depthwise-separable convolution student (model-compression workload).

The compression student replaces every standard 3x3 convolution of VGG-16
with a depthwise-separable pair (3x3 depthwise + 1x1 pointwise), following
MobileNets (Howard et al.) and the parallel blockwise distillation setup of
Blakeney et al. — the configuration the paper lists in Table I
("Replacement: DS-Conv").  The stage/block structure exactly mirrors the
teacher so that every student block consumes and produces the same activation
shapes as the corresponding teacher block.
"""

from __future__ import annotations

from typing import List

from repro.models import layers as L
from repro.models.network import NetworkSpec
from repro.models.vgg import build_vgg16_with_conv


def _dsconv_unit(name: str, in_shape, out_channels) -> List[L.LayerSpec]:
    """A depthwise-separable replacement for a 3x3 conv unit."""
    depthwise = L.depthwise_conv2d(f"{name}.dw", in_shape, kernel=3, stride=1)
    pointwise = L.pointwise_conv2d(f"{name}.pw", depthwise.out_shape, out_channels)
    return [
        depthwise,
        L.batch_norm(f"{name}.dw_bn", depthwise.out_shape),
        L.relu(f"{name}.dw_relu", depthwise.out_shape),
        pointwise,
        L.batch_norm(f"{name}.pw_bn", pointwise.out_shape),
        L.relu(f"{name}.pw_relu", pointwise.out_shape),
    ]


def build_dsconv_student(dataset: str = "cifar10") -> NetworkSpec:
    """Build the DS-Conv student with VGG-16's stage and block structure."""
    return build_vgg16_with_conv(
        dataset, _dsconv_unit, name="DSConv-student", block_name_prefix="ds"
    )
