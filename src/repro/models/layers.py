"""Layer specifications with analytical FLOP, parameter and activation costs.

A :class:`LayerSpec` is an immutable record describing one layer of a neural
network: its input/output shapes (per sample, channel-first ``(C, H, W)`` or
``(F,)`` for fully-connected layers), its parameter count, and its
multiply-accumulate (MAC) count for a single-sample forward pass.

Factory functions (:func:`conv2d`, :func:`depthwise_conv2d`, :func:`linear`,
...) compute these quantities from the usual layer hyper-parameters so the
architecture builders read like ordinary model definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ShapeError

#: Bytes used per activation / weight element (FP32 training, as in the paper).
BYTES_PER_ELEMENT = 4

Shape = Tuple[int, ...]


def _shape_elems(shape: Shape) -> int:
    """Number of elements in a per-sample shape."""
    total = 1
    for dim in shape:
        if dim <= 0:
            raise ShapeError(f"shape {shape} has a non-positive dimension")
        total *= dim
    return total


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution with size={size} kernel={kernel} stride={stride} "
            f"padding={padding} produces non-positive output size {out}"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """Immutable description of a single layer.

    Attributes
    ----------
    name:
        Human-readable unique-ish name (e.g. ``"stage2.conv3x3"``).
    kind:
        Layer category, one of ``{"conv", "dwconv", "linear", "bn", "relu",
        "pool", "add", "reshape", "mixed"}``.  The cost model uses the kind to
        pick arithmetic-intensity heuristics.
    in_shape / out_shape:
        Per-sample shapes.
    params:
        Trainable parameter count.
    macs:
        Multiply-accumulate count for a single-sample forward pass.
    """

    name: str
    kind: str
    in_shape: Shape
    out_shape: Shape
    params: int
    macs: float
    metadata: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def flops(self) -> float:
        """Forward FLOPs per sample (2 FLOPs per MAC)."""
        return 2.0 * self.macs

    @property
    def in_elems(self) -> int:
        return _shape_elems(self.in_shape)

    @property
    def out_elems(self) -> int:
        return _shape_elems(self.out_shape)

    @property
    def in_bytes(self) -> int:
        """Input activation bytes per sample."""
        return self.in_elems * BYTES_PER_ELEMENT

    @property
    def out_bytes(self) -> int:
        """Output activation bytes per sample."""
        return self.out_elems * BYTES_PER_ELEMENT

    @property
    def weight_bytes(self) -> int:
        """Parameter bytes."""
        return self.params * BYTES_PER_ELEMENT

    @property
    def memory_traffic_bytes(self) -> int:
        """Approximate per-sample memory traffic of a forward pass.

        Reads the input and the weights, writes the output.  Used by the cost
        model's bandwidth-bound term.
        """
        return self.in_bytes + self.out_bytes + self.weight_bytes

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic (roofline x-coordinate)."""
        traffic = self.memory_traffic_bytes
        if traffic == 0:
            return 0.0
        return self.flops / traffic

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name:<28s} {self.kind:<8s} "
            f"in={self.in_shape} out={self.out_shape} "
            f"params={self.params:,} macs={self.macs:,.0f}"
        )


# ---------------------------------------------------------------------- #
# Factory functions
# ---------------------------------------------------------------------- #
def conv2d(
    name: str,
    in_shape: Shape,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
    groups: int = 1,
    bias: bool = False,
) -> LayerSpec:
    """Standard (possibly grouped) 2-D convolution."""
    if len(in_shape) != 3:
        raise ShapeError(f"conv2d expects a (C, H, W) input shape, got {in_shape}")
    in_channels, height, width = in_shape
    if in_channels % groups != 0 or out_channels % groups != 0:
        raise ShapeError(
            f"channels ({in_channels}->{out_channels}) not divisible by groups={groups}"
        )
    if padding is None:
        padding = kernel // 2
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    params = out_channels * (in_channels // groups) * kernel * kernel
    if bias:
        params += out_channels
    macs = params_macs = (
        out_channels * (in_channels // groups) * kernel * kernel * out_h * out_w
    )
    del params_macs
    return LayerSpec(
        name=name,
        kind="conv",
        in_shape=in_shape,
        out_shape=(out_channels, out_h, out_w),
        params=params,
        macs=float(macs),
        metadata={"kernel": kernel, "stride": stride, "groups": groups},
    )


def depthwise_conv2d(
    name: str,
    in_shape: Shape,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
) -> LayerSpec:
    """Depthwise convolution (groups == channels)."""
    in_channels = in_shape[0]
    spec = conv2d(
        name,
        in_shape,
        out_channels=in_channels,
        kernel=kernel,
        stride=stride,
        padding=padding,
        groups=in_channels,
    )
    return LayerSpec(
        name=spec.name,
        kind="dwconv",
        in_shape=spec.in_shape,
        out_shape=spec.out_shape,
        params=spec.params,
        macs=spec.macs,
        metadata=spec.metadata,
    )


def pointwise_conv2d(name: str, in_shape: Shape, out_channels: int) -> LayerSpec:
    """1x1 convolution."""
    return conv2d(name, in_shape, out_channels, kernel=1, stride=1, padding=0)


def linear(name: str, in_features: int, out_features: int, bias: bool = True) -> LayerSpec:
    """Fully-connected layer."""
    params = in_features * out_features + (out_features if bias else 0)
    return LayerSpec(
        name=name,
        kind="linear",
        in_shape=(in_features,),
        out_shape=(out_features,),
        params=params,
        macs=float(in_features * out_features),
    )


def batch_norm(name: str, shape: Shape) -> LayerSpec:
    """Batch normalisation over the channel dimension."""
    channels = shape[0]
    elems = _shape_elems(shape)
    return LayerSpec(
        name=name,
        kind="bn",
        in_shape=shape,
        out_shape=shape,
        params=2 * channels,
        macs=float(2 * elems),
    )


def relu(name: str, shape: Shape) -> LayerSpec:
    """ReLU / ReLU6 activation (element-wise, no parameters)."""
    return LayerSpec(
        name=name,
        kind="relu",
        in_shape=shape,
        out_shape=shape,
        params=0,
        macs=float(_shape_elems(shape)),
    )


def max_pool(name: str, in_shape: Shape, kernel: int, stride: int | None = None) -> LayerSpec:
    """Max pooling."""
    return _pool(name, in_shape, kernel, stride, pool_kind="max")


def avg_pool(name: str, in_shape: Shape, kernel: int, stride: int | None = None) -> LayerSpec:
    """Average pooling."""
    return _pool(name, in_shape, kernel, stride, pool_kind="avg")


def _pool(
    name: str, in_shape: Shape, kernel: int, stride: int | None, pool_kind: str
) -> LayerSpec:
    if len(in_shape) != 3:
        raise ShapeError(f"pool expects a (C, H, W) input shape, got {in_shape}")
    channels, height, width = in_shape
    if stride is None:
        stride = kernel
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    macs = channels * out_h * out_w * kernel * kernel
    return LayerSpec(
        name=name,
        kind="pool",
        in_shape=in_shape,
        out_shape=(channels, out_h, out_w),
        params=0,
        macs=float(macs),
        metadata={"pool": pool_kind, "kernel": kernel, "stride": stride},
    )


def global_avg_pool(name: str, in_shape: Shape) -> LayerSpec:
    """Global average pooling collapsing the spatial dimensions."""
    if len(in_shape) != 3:
        raise ShapeError(f"global_avg_pool expects (C, H, W), got {in_shape}")
    channels, height, width = in_shape
    return LayerSpec(
        name=name,
        kind="pool",
        in_shape=in_shape,
        out_shape=(channels,),
        params=0,
        macs=float(channels * height * width),
        metadata={"pool": "global_avg"},
    )


def add_residual(name: str, shape: Shape) -> LayerSpec:
    """Element-wise residual addition."""
    return LayerSpec(
        name=name,
        kind="add",
        in_shape=shape,
        out_shape=shape,
        params=0,
        macs=float(_shape_elems(shape)),
    )


def flatten(name: str, in_shape: Shape) -> LayerSpec:
    """Reshape a (C, H, W) activation to a flat feature vector."""
    return LayerSpec(
        name=name,
        kind="reshape",
        in_shape=in_shape,
        out_shape=(_shape_elems(in_shape),),
        params=0,
        macs=0.0,
    )


def mixed_op(
    name: str,
    in_shape: Shape,
    out_shape: Shape,
    candidate_layers: Tuple[LayerSpec, ...],
) -> LayerSpec:
    """A NAS mixed operation executing every candidate op in the supernet.

    During supernet training every candidate path is evaluated (weighted by
    its architecture parameter), so the MACs and parameters are the sums over
    candidates.  One architecture parameter per candidate is added.
    """
    if not candidate_layers:
        raise ShapeError("mixed_op requires at least one candidate layer")
    params = sum(layer.params for layer in candidate_layers) + len(candidate_layers)
    macs = sum(layer.macs for layer in candidate_layers)
    return LayerSpec(
        name=name,
        kind="mixed",
        in_shape=in_shape,
        out_shape=out_shape,
        params=params,
        macs=float(macs),
        metadata={"num_candidates": len(candidate_layers)},
    )


def scaled_channels(channels: int, width_mult: float, divisor: int = 8) -> int:
    """Round ``channels * width_mult`` to the nearest multiple of ``divisor``.

    Mirrors the ``_make_divisible`` helper used by MobileNet-family models.
    """
    scaled = channels * width_mult
    rounded = max(divisor, int(scaled + divisor / 2) // divisor * divisor)
    # Do not shrink by more than 10 %.
    if rounded < 0.9 * scaled:
        rounded += divisor
    return int(rounded)


def human_flops(flops: float) -> str:
    """Format a FLOP count as the paper does (e.g. ``87.98 M``)."""
    for unit, scale in (("T", 1e12), ("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if flops >= scale:
            return f"{flops / scale:.2f} {unit}"
    return f"{flops:.0f}"


def human_params(params: float) -> str:
    """Format a parameter count as the paper does (e.g. ``2.24 M``)."""
    if params >= 1e6:
        return f"{params / 1e6:.2f} M"
    if params >= 1e3:
        return f"{params / 1e3:.2f} K"
    return f"{params:.0f}"


def total_macs(layers) -> float:
    """Sum of MACs over an iterable of :class:`LayerSpec`."""
    return float(sum(layer.macs for layer in layers))


def total_params(layers) -> int:
    """Sum of parameters over an iterable of :class:`LayerSpec`."""
    return int(sum(layer.params for layer in layers))


def check_chain(layers) -> None:
    """Validate that consecutive layers have compatible shapes.

    Layers of kind ``add`` take the same shape in and out and may follow any
    layer with that output shape; all other layers must consume exactly the
    previous layer's output shape.
    """
    previous: LayerSpec | None = None
    for layer in layers:
        if previous is not None and layer.in_shape != previous.out_shape:
            raise ShapeError(
                f"layer {layer.name!r} expects input shape {layer.in_shape} but "
                f"previous layer {previous.name!r} produces {previous.out_shape}"
            )
        previous = layer


def iter_describe(layers) -> str:
    """Multi-line description of a layer chain."""
    return "\n".join(layer.describe() for layer in layers)


def geometric_mean(values) -> float:
    """Geometric mean helper used by several analysis routines."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
