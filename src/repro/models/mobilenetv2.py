"""MobileNetV2 teacher model (paper Table I, NAS workload).

The paper uses a pre-trained MobileNetV2 as the teacher for block-wisely
supervised NAS (following DNA).  We build the standard architecture
(Sandler et al., CVPR 2018) for both the ImageNet (224x224) and the CIFAR-10
(32x32) input resolutions, then group its inverted-residual stages into six
distillation blocks — the block count used in the paper's Fig. 5 schedules.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.models import layers as L
from repro.models.blocks import BlockSpec
from repro.models.network import NetworkSpec

#: Inverted-residual stage settings: (expansion, out_channels, repeats, stride).
INVERTED_RESIDUAL_SETTINGS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

#: Stage index (into the settings above, with -1 = stem) at which each of the
#: six distillation blocks begins.  Chosen to follow DNA's six-block split.
BLOCK_STAGE_GROUPS: Tuple[Tuple[int, ...], ...] = (
    (-1, 0, 1),   # stem + 16-channel stage + 24-channel stage
    (2,),         # 32-channel stage
    (3,),         # 64-channel stage
    (4,),         # 96-channel stage
    (5,),         # 160-channel stage
    (6, 7),       # 320-channel stage + head conv + classifier (7 = head marker)
)


def _dataset_input(dataset: str) -> Tuple[Tuple[int, int, int], int, int]:
    """Return (input_shape, num_classes, stem_stride) for a dataset name."""
    dataset = dataset.lower()
    if dataset == "cifar10":
        return (3, 32, 32), 10, 1
    if dataset == "imagenet":
        return (3, 224, 224), 1000, 2
    raise ConfigurationError(f"unknown dataset {dataset!r}; expected 'cifar10' or 'imagenet'")


def _inverted_residual(
    name: str,
    in_shape: Tuple[int, int, int],
    out_channels: int,
    expansion: int,
    stride: int,
    kernel: int = 3,
) -> List[L.LayerSpec]:
    """Layers of one MobileNetV2 inverted-residual unit."""
    in_channels = in_shape[0]
    hidden = in_channels * expansion
    layer_list: List[L.LayerSpec] = []
    shape = in_shape
    if expansion != 1:
        expand = L.pointwise_conv2d(f"{name}.expand", shape, hidden)
        layer_list.append(expand)
        layer_list.append(L.batch_norm(f"{name}.expand_bn", expand.out_shape))
        layer_list.append(L.relu(f"{name}.expand_relu", expand.out_shape))
        shape = expand.out_shape
    dw = L.depthwise_conv2d(f"{name}.dw", shape, kernel=kernel, stride=stride)
    layer_list.append(dw)
    layer_list.append(L.batch_norm(f"{name}.dw_bn", dw.out_shape))
    layer_list.append(L.relu(f"{name}.dw_relu", dw.out_shape))
    project = L.pointwise_conv2d(f"{name}.project", dw.out_shape, out_channels)
    layer_list.append(project)
    layer_list.append(L.batch_norm(f"{name}.project_bn", project.out_shape))
    if stride == 1 and in_channels == out_channels:
        layer_list.append(L.add_residual(f"{name}.residual", project.out_shape))
    return layer_list


def _build_stage_layers(
    dataset: str, width_mult: float
) -> Tuple[List[List[L.LayerSpec]], Tuple[int, int, int], int]:
    """Build per-stage layer lists.

    Returns ``(stages, input_shape, num_classes)`` where ``stages`` has one
    entry for the stem (index 0 corresponds to stage ``-1`` in
    :data:`BLOCK_STAGE_GROUPS`), one per inverted-residual stage, and one for
    the head (1x1 conv + pooling + classifier).
    """
    input_shape, num_classes, stem_stride = _dataset_input(dataset)
    stages: List[List[L.LayerSpec]] = []

    stem_channels = L.scaled_channels(32, width_mult)
    stem_conv = L.conv2d("stem.conv", input_shape, stem_channels, kernel=3, stride=stem_stride)
    stem = [
        stem_conv,
        L.batch_norm("stem.bn", stem_conv.out_shape),
        L.relu("stem.relu", stem_conv.out_shape),
    ]
    stages.append(stem)
    shape = stem_conv.out_shape

    for stage_index, (expansion, channels, repeats, stride) in enumerate(
        INVERTED_RESIDUAL_SETTINGS
    ):
        out_channels = L.scaled_channels(channels, width_mult)
        # CIFAR-10 variant keeps the first two downsampling stages at stride 1
        # so the 32x32 input is not reduced too aggressively.
        effective_stride = stride
        if dataset.lower() == "cifar10" and stage_index == 1:
            effective_stride = 1
        stage_layers: List[L.LayerSpec] = []
        for repeat in range(repeats):
            unit_stride = effective_stride if repeat == 0 else 1
            unit = _inverted_residual(
                f"stage{stage_index}.unit{repeat}",
                shape,
                out_channels,
                expansion,
                unit_stride,
            )
            stage_layers.extend(unit)
            shape = unit[-1].out_shape
        stages.append(stage_layers)

    head_channels = L.scaled_channels(1280, max(1.0, width_mult))
    head_conv = L.pointwise_conv2d("head.conv", shape, head_channels)
    gap = L.global_avg_pool("head.gap", head_conv.out_shape)
    classifier = L.linear("head.classifier", head_channels, num_classes)
    head = [
        head_conv,
        L.batch_norm("head.bn", head_conv.out_shape),
        L.relu("head.relu", head_conv.out_shape),
        gap,
        classifier,
    ]
    stages.append(head)
    return stages, input_shape, num_classes


def build_mobilenetv2(
    dataset: str = "cifar10",
    width_mult: float = 1.0,
    num_blocks: int = 6,
) -> NetworkSpec:
    """Build the MobileNetV2 teacher grouped into distillation blocks.

    Parameters
    ----------
    dataset:
        ``"cifar10"`` (32x32 input, 10 classes) or ``"imagenet"`` (224x224,
        1000 classes).
    width_mult:
        Channel width multiplier; 1.0 reproduces the paper's teacher.
    num_blocks:
        Number of distillation blocks; the paper (and DNA) use 6.
    """
    if num_blocks != len(BLOCK_STAGE_GROUPS):
        raise ConfigurationError(
            f"MobileNetV2 teacher supports {len(BLOCK_STAGE_GROUPS)} blocks, "
            f"requested {num_blocks}"
        )
    stages, input_shape, num_classes = _build_stage_layers(dataset, width_mult)
    # Stage list layout: stages[0] is the stem ('-1'), stages[1..7] are the
    # seven inverted-residual stages, stages[8] is the head (marker '7').
    blocks: List[BlockSpec] = []
    for block_index, group in enumerate(BLOCK_STAGE_GROUPS):
        block_layers: List[L.LayerSpec] = []
        for stage_marker in group:
            if stage_marker == -1:
                block_layers.extend(stages[0])
            elif stage_marker == 7:
                block_layers.extend(stages[8])
            else:
                block_layers.extend(stages[stage_marker + 1])
        blocks.append(
            BlockSpec(
                name=f"mbv2.block{block_index}",
                index=block_index,
                layers=tuple(block_layers),
            )
        )
    return NetworkSpec(
        name=f"MobileNetV2-{dataset.lower()}",
        blocks=tuple(blocks),
        input_shape=input_shape,
        num_classes=num_classes,
        metadata={"dataset": dataset.lower(), "width_mult": width_mult},
    )
