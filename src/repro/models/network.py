"""Network specifications: an ordered chain of distillation blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.errors import ShapeError
from repro.models.blocks import BlockSpec
from repro.models.layers import human_flops, human_params


@dataclass(frozen=True)
class NetworkSpec:
    """An ordered chain of blocks forming a complete network.

    The chain is validated so that each block consumes exactly the previous
    block's output shape — the property teacher relaying relies on when it
    forwards intermediate activations between devices.
    """

    name: str
    blocks: Tuple[BlockSpec, ...]
    input_shape: Tuple[int, ...]
    num_classes: int
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ShapeError(f"network {self.name!r} has no blocks")
        if self.blocks[0].in_shape != self.input_shape:
            raise ShapeError(
                f"network {self.name!r}: first block expects {self.blocks[0].in_shape} "
                f"but the network input shape is {self.input_shape}"
            )
        for previous, current in zip(self.blocks, self.blocks[1:]):
            if current.in_shape != previous.out_shape:
                raise ShapeError(
                    f"network {self.name!r}: block {current.index} expects "
                    f"{current.in_shape} but block {previous.index} produces "
                    f"{previous.out_shape}"
                )
        for expected_index, block in enumerate(self.blocks):
            if block.index != expected_index:
                raise ShapeError(
                    f"network {self.name!r}: block at position {expected_index} has "
                    f"index {block.index}"
                )

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[BlockSpec]:
        return iter(self.blocks)

    def block(self, index: int) -> BlockSpec:
        """Return block ``index`` (negative indices are not allowed)."""
        if index < 0 or index >= len(self.blocks):
            raise IndexError(f"block index {index} out of range [0, {len(self.blocks)})")
        return self.blocks[index]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------------ #
    # Aggregate costs
    # ------------------------------------------------------------------ #
    @property
    def params(self) -> int:
        return int(sum(block.params for block in self.blocks))

    @property
    def macs(self) -> float:
        return float(sum(block.macs for block in self.blocks))

    @property
    def flops(self) -> float:
        return 2.0 * self.macs

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return self.blocks[-1].out_shape

    def block_macs(self) -> Tuple[float, ...]:
        """Per-block MAC counts (used by load-balancing heuristics)."""
        return tuple(block.macs for block in self.blocks)

    def prefix_macs(self, end_block: int) -> float:
        """MACs of blocks ``0 .. end_block`` inclusive.

        Under the DP and LS baselines, training student block ``i`` requires a
        teacher forward pass through this prefix — the redundant work Pipe-BD
        removes.
        """
        if end_block < 0 or end_block >= len(self.blocks):
            raise IndexError(f"end_block {end_block} out of range")
        return float(sum(block.macs for block in self.blocks[: end_block + 1]))

    def redundant_prefix_macs(self) -> float:
        """Total teacher MACs executed per step by the DP baseline.

        Equal to ``sum_i prefix_macs(i)`` — each block's training step runs the
        teacher from the input up to that block.
        """
        return float(
            sum(self.prefix_macs(index) for index in range(len(self.blocks)))
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line summary table of the network's blocks."""
        lines = [
            f"{self.name}: {len(self.blocks)} blocks, "
            f"{human_params(self.params)} params, {human_flops(self.flops)} FLOPs, "
            f"input={self.input_shape}, classes={self.num_classes}"
        ]
        lines.extend(block.describe() for block in self.blocks)
        return "\n".join(lines)

    def repartition(self, boundaries: Sequence[int]) -> "NetworkSpec":
        """Return a new network with the same layers grouped into new blocks.

        ``boundaries`` are exclusive *block-count* end indices over the flat
        layer list obtained by concatenating the current blocks' layers.
        """
        from repro.models.blocks import group_layers_into_blocks

        flat_layers = tuple(
            layer for block in self.blocks for layer in block.layers
        )
        new_blocks = group_layers_into_blocks(
            flat_layers, tuple(boundaries), name_prefix=f"{self.name}.b"
        )
        return NetworkSpec(
            name=self.name,
            blocks=new_blocks,
            input_shape=self.input_shape,
            num_classes=self.num_classes,
            metadata=dict(self.metadata),
        )
