"""Teacher/student pairing for blockwise distillation tasks.

A :class:`DistillationPair` couples a pre-trained teacher network with the
student network trained against it, block by block.  The pairing is validated
so that for every block index ``i`` the student block consumes the teacher
block ``i-1``'s output activation (the relayed tensor) and produces an output
with the same shape as teacher block ``i``'s output (so the blockwise loss
``L(delta_output)`` is well defined).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ShapeError
from repro.models.dsconv import build_dsconv_student
from repro.models.mobilenetv2 import build_mobilenetv2
from repro.models.network import NetworkSpec
from repro.models.proxylessnas import build_proxylessnas_supernet
from repro.models.vgg import build_vgg16


@dataclass(frozen=True)
class DistillationPair:
    """A teacher/student pair for blockwise distillation.

    Attributes
    ----------
    task:
        ``"nas"`` or ``"compression"``.
    teacher / student:
        The paired networks; must have the same number of blocks and matching
        block-boundary shapes.
    student_rounds_per_step:
        Forward/backward rounds of the *student* per training step.  NAS runs
        two rounds per step (architecture parameters, then weights — paper
        §VI-A); compression runs one.
    dataset:
        Dataset name, ``"cifar10"`` or ``"imagenet"``.
    """

    task: str
    teacher: NetworkSpec
    student: NetworkSpec
    dataset: str
    student_rounds_per_step: int = 1
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.task not in ("nas", "compression"):
            raise ConfigurationError(f"unknown task {self.task!r}")
        if self.student_rounds_per_step < 1:
            raise ConfigurationError("student_rounds_per_step must be >= 1")
        if self.teacher.num_blocks != self.student.num_blocks:
            raise ShapeError(
                f"teacher has {self.teacher.num_blocks} blocks but student has "
                f"{self.student.num_blocks}"
            )
        for index in range(self.teacher.num_blocks):
            teacher_block = self.teacher.block(index)
            student_block = self.student.block(index)
            if teacher_block.in_shape != student_block.in_shape:
                raise ShapeError(
                    f"block {index}: teacher input {teacher_block.in_shape} != "
                    f"student input {student_block.in_shape}"
                )
            if teacher_block.out_shape != student_block.out_shape:
                raise ShapeError(
                    f"block {index}: teacher output {teacher_block.out_shape} != "
                    f"student output {student_block.out_shape}"
                )

    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        return self.teacher.num_blocks

    @property
    def input_shape(self):
        return self.teacher.input_shape

    def block_pair(self, index: int):
        """Return the (teacher_block, student_block) tuple for ``index``."""
        return self.teacher.block(index), self.student.block(index)

    def describe(self) -> str:
        return (
            f"{self.task} on {self.dataset}: teacher={self.teacher.name} "
            f"({self.teacher.num_blocks} blocks), student={self.student.name}, "
            f"student rounds/step={self.student_rounds_per_step}"
        )


def build_nas_pair(dataset: str = "cifar10") -> DistillationPair:
    """The paper's NAS workload: MobileNetV2 teacher, ProxylessNAS supernet."""
    teacher = build_mobilenetv2(dataset)
    student = build_proxylessnas_supernet(dataset)
    return DistillationPair(
        task="nas",
        teacher=teacher,
        student=student,
        dataset=dataset.lower(),
        student_rounds_per_step=2,
        metadata={"search_backbone": "ProxylessNAS", "teacher": "MobileNetV2"},
    )


def build_compression_pair(dataset: str = "cifar10") -> DistillationPair:
    """The paper's compression workload: VGG-16 teacher, DS-Conv student."""
    teacher = build_vgg16(dataset)
    student = build_dsconv_student(dataset)
    return DistillationPair(
        task="compression",
        teacher=teacher,
        student=student,
        dataset=dataset.lower(),
        student_rounds_per_step=1,
        metadata={"teacher": "VGG-16", "replacement": "DS-Conv"},
    )


def build_pair(task: str, dataset: str) -> DistillationPair:
    """Dispatch on the paper's two workloads."""
    task = task.lower()
    if task == "nas":
        return build_nas_pair(dataset)
    if task == "compression":
        return build_compression_pair(dataset)
    raise ConfigurationError(f"unknown task {task!r}; expected 'nas' or 'compression'")
