"""ProxylessNAS student supernet (paper Table I, NAS workload).

The NAS student is a ProxylessNAS-style supernet: every searchable layer is a
mixed operation whose candidates are MBConv units with kernel size in
``{3, 5, 7}`` and expansion ratio in ``{3, 6}`` (Table I of the paper).  During
block-wisely supervised search (DNA-style) the supernet is trained blockwise
against the MobileNetV2 teacher, so the student's block boundaries — input and
output channel counts and spatial sizes — mirror the teacher's.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.models import layers as L
from repro.models.blocks import BlockSpec
from repro.models.mobilenetv2 import (
    BLOCK_STAGE_GROUPS,
    INVERTED_RESIDUAL_SETTINGS,
    _dataset_input,
    _inverted_residual,
)
from repro.models.network import NetworkSpec

#: Candidate kernel sizes of each mixed operation (paper Table I).
DEFAULT_KERNEL_SIZES: Tuple[int, ...] = (3, 5, 7)
#: Candidate expansion ratios of each mixed operation (paper Table I).
DEFAULT_EXPAND_RATIOS: Tuple[int, ...] = (3, 6)


def _candidate_macs_params(
    in_shape: Tuple[int, int, int],
    out_channels: int,
    stride: int,
    kernel_sizes: Tuple[int, ...],
    expand_ratios: Tuple[int, ...],
) -> Tuple[float, int, Tuple[int, int, int]]:
    """Aggregate MACs/params over all candidate MBConv ops of one layer."""
    total_macs = 0.0
    total_params = 0
    out_shape: Tuple[int, int, int] | None = None
    for kernel in kernel_sizes:
        for expansion in expand_ratios:
            unit = _inverted_residual(
                "candidate", in_shape, out_channels, expansion, stride, kernel=kernel
            )
            total_macs += sum(layer.macs for layer in unit)
            total_params += sum(layer.params for layer in unit)
            out_shape = unit[-1].out_shape
    assert out_shape is not None
    return total_macs, total_params, out_shape


def _mixed_mbconv(
    name: str,
    in_shape: Tuple[int, int, int],
    out_channels: int,
    stride: int,
    kernel_sizes: Tuple[int, ...],
    expand_ratios: Tuple[int, ...],
) -> L.LayerSpec:
    """One searchable layer of the supernet as a single mixed-op LayerSpec."""
    macs, params, out_shape = _candidate_macs_params(
        in_shape, out_channels, stride, kernel_sizes, expand_ratios
    )
    num_candidates = len(kernel_sizes) * len(expand_ratios)
    return L.LayerSpec(
        name=name,
        kind="mixed",
        in_shape=in_shape,
        out_shape=out_shape,
        params=params + num_candidates,
        macs=macs,
        metadata={
            "num_candidates": num_candidates,
            "kernel_sizes": kernel_sizes,
            "expand_ratios": expand_ratios,
        },
    )


def build_proxylessnas_supernet(
    dataset: str = "cifar10",
    kernel_sizes: Tuple[int, ...] = DEFAULT_KERNEL_SIZES,
    expand_ratios: Tuple[int, ...] = DEFAULT_EXPAND_RATIOS,
    num_blocks: int = 6,
    width_mult: float = 1.0,
) -> NetworkSpec:
    """Build the ProxylessNAS student supernet grouped into six blocks.

    The supernet mirrors the teacher's stage layout (stem, seven
    inverted-residual stages, head) so that each student block consumes and
    produces activations with the same shape as the corresponding teacher
    block — the requirement of blockwise distillation.
    """
    if num_blocks != len(BLOCK_STAGE_GROUPS):
        raise ConfigurationError(
            f"ProxylessNAS supernet supports {len(BLOCK_STAGE_GROUPS)} blocks, "
            f"requested {num_blocks}"
        )
    if not kernel_sizes or not expand_ratios:
        raise ConfigurationError("kernel_sizes and expand_ratios must be non-empty")

    input_shape, num_classes, stem_stride = _dataset_input(dataset)

    # Stage construction mirrors the teacher, but every inverted-residual unit
    # beyond the first (fixed, expansion-1) stage becomes a mixed op.
    stages: List[List[L.LayerSpec]] = []
    stem_channels = L.scaled_channels(32, width_mult)
    stem_conv = L.conv2d("s.stem.conv", input_shape, stem_channels, kernel=3, stride=stem_stride)
    stages.append(
        [
            stem_conv,
            L.batch_norm("s.stem.bn", stem_conv.out_shape),
            L.relu("s.stem.relu", stem_conv.out_shape),
        ]
    )
    shape = stem_conv.out_shape

    for stage_index, (expansion, channels, repeats, stride) in enumerate(
        INVERTED_RESIDUAL_SETTINGS
    ):
        out_channels = L.scaled_channels(channels, width_mult)
        effective_stride = stride
        if dataset.lower() == "cifar10" and stage_index == 1:
            effective_stride = 1
        stage_layers: List[L.LayerSpec] = []
        for repeat in range(repeats):
            unit_stride = effective_stride if repeat == 0 else 1
            name = f"s.stage{stage_index}.unit{repeat}"
            if stage_index == 0:
                # The first, expansion-1 stage is not searched (as in
                # ProxylessNAS): keep it as a fixed inverted residual.
                unit = _inverted_residual(name, shape, out_channels, expansion, unit_stride)
                stage_layers.extend(unit)
                shape = unit[-1].out_shape
            else:
                mixed = _mixed_mbconv(
                    name, shape, out_channels, unit_stride, kernel_sizes, expand_ratios
                )
                stage_layers.append(mixed)
                shape = mixed.out_shape
        stages.append(stage_layers)

    head_channels = L.scaled_channels(1280, max(1.0, width_mult))
    head_conv = L.pointwise_conv2d("s.head.conv", shape, head_channels)
    gap = L.global_avg_pool("s.head.gap", head_conv.out_shape)
    classifier = L.linear("s.head.classifier", head_channels, num_classes)
    stages.append(
        [
            head_conv,
            L.batch_norm("s.head.bn", head_conv.out_shape),
            L.relu("s.head.relu", head_conv.out_shape),
            gap,
            classifier,
        ]
    )

    blocks: List[BlockSpec] = []
    for block_index, group in enumerate(BLOCK_STAGE_GROUPS):
        block_layers: List[L.LayerSpec] = []
        for stage_marker in group:
            if stage_marker == -1:
                block_layers.extend(stages[0])
            elif stage_marker == 7:
                block_layers.extend(stages[8])
            else:
                block_layers.extend(stages[stage_marker + 1])
        blocks.append(
            BlockSpec(
                name=f"pnas.block{block_index}",
                index=block_index,
                layers=tuple(block_layers),
                metadata={"searchable": block_index not in (0,)},
            )
        )
    return NetworkSpec(
        name=f"ProxylessNAS-supernet-{dataset.lower()}",
        blocks=tuple(blocks),
        input_shape=input_shape,
        num_classes=num_classes,
        metadata={
            "dataset": dataset.lower(),
            "kernel_sizes": tuple(kernel_sizes),
            "expand_ratios": tuple(expand_ratios),
            "width_mult": width_mult,
        },
    )


def searched_model_macs(supernet: NetworkSpec) -> float:
    """Approximate MACs of a single searched architecture.

    A searched model keeps exactly one candidate per mixed op; dividing each
    mixed op's MACs by its candidate count gives the average single-path cost,
    which is the quantity the paper reports for the final student (Table II).
    """
    total = 0.0
    for block in supernet.blocks:
        for layer in block.layers:
            if layer.kind == "mixed":
                total += layer.macs / layer.metadata.get("num_candidates", 1)
            else:
                total += layer.macs
    return total
