"""VGG-16 teacher model (paper Table I, model-compression workload).

The compression workload distils VGG-16 into depthwise-separable replacement
blocks (Blakeney et al., TPDS 2021).  We build the standard VGG-16
configuration-D architecture for ImageNet (224x224, 4096-wide classifier) and
the common CIFAR-10 adaptation (32x32, 512-wide classifier), grouped into six
distillation blocks: the five convolutional stages plus the classifier.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.models import layers as L
from repro.models.blocks import BlockSpec
from repro.models.network import NetworkSpec

#: VGG-16 configuration D: output channels per conv layer, grouped by stage.
VGG16_STAGES: Tuple[Tuple[int, ...], ...] = (
    (64, 64),
    (128, 128),
    (256, 256, 256),
    (512, 512, 512),
    (512, 512, 512),
)


def _dataset_config(dataset: str) -> Tuple[Tuple[int, int, int], int, Tuple[int, ...]]:
    """Return (input_shape, num_classes, classifier_widths)."""
    dataset = dataset.lower()
    if dataset == "cifar10":
        return (3, 32, 32), 10, (512,)
    if dataset == "imagenet":
        return (3, 224, 224), 1000, (4096, 4096)
    raise ConfigurationError(f"unknown dataset {dataset!r}; expected 'cifar10' or 'imagenet'")


def _conv_stage(
    name: str,
    in_shape: Tuple[int, int, int],
    channels: Tuple[int, ...],
    conv_builder,
) -> List[L.LayerSpec]:
    """One VGG stage: a run of 3x3 convs followed by a 2x2 max pool."""
    stage_layers: List[L.LayerSpec] = []
    shape = in_shape
    for conv_index, out_channels in enumerate(channels):
        conv_layers = conv_builder(f"{name}.conv{conv_index}", shape, out_channels)
        stage_layers.extend(conv_layers)
        shape = conv_layers[-1].out_shape
    pool = L.max_pool(f"{name}.pool", shape, kernel=2, stride=2)
    stage_layers.append(pool)
    return stage_layers


def _standard_conv(name: str, in_shape, out_channels) -> List[L.LayerSpec]:
    """A standard VGG conv unit: 3x3 conv + BN + ReLU."""
    conv = L.conv2d(name, in_shape, out_channels, kernel=3, stride=1)
    return [
        conv,
        L.batch_norm(f"{name}.bn", conv.out_shape),
        L.relu(f"{name}.relu", conv.out_shape),
    ]


def _classifier_layers(
    name_prefix: str,
    in_shape: Tuple[int, int, int],
    hidden_widths: Tuple[int, ...],
    num_classes: int,
) -> List[L.LayerSpec]:
    """Flatten + fully-connected classifier head."""
    flat = L.flatten(f"{name_prefix}.flatten", in_shape)
    layer_list: List[L.LayerSpec] = [flat]
    in_features = flat.out_shape[0]
    for index, width in enumerate(hidden_widths):
        fc = L.linear(f"{name_prefix}.fc{index}", in_features, width)
        layer_list.append(fc)
        layer_list.append(L.relu(f"{name_prefix}.fc{index}_relu", fc.out_shape))
        in_features = width
    layer_list.append(L.linear(f"{name_prefix}.logits", in_features, num_classes))
    return layer_list


def build_vgg16_with_conv(
    dataset: str,
    conv_builder,
    name: str,
    block_name_prefix: str,
) -> NetworkSpec:
    """Build a VGG-16-shaped network with a pluggable conv unit builder.

    Shared by the teacher (:func:`build_vgg16`) and the depthwise-separable
    student (:func:`repro.models.dsconv.build_dsconv_student`), which differ
    only in the conv unit used inside each stage.
    """
    input_shape, num_classes, classifier_widths = _dataset_config(dataset)
    blocks: List[BlockSpec] = []
    shape = input_shape
    for stage_index, channels in enumerate(VGG16_STAGES):
        stage_layers = _conv_stage(
            f"{block_name_prefix}.stage{stage_index}", shape, channels, conv_builder
        )
        blocks.append(
            BlockSpec(
                name=f"{block_name_prefix}.block{stage_index}",
                index=stage_index,
                layers=tuple(stage_layers),
            )
        )
        shape = stage_layers[-1].out_shape
    classifier = _classifier_layers(
        f"{block_name_prefix}.classifier", shape, classifier_widths, num_classes
    )
    blocks.append(
        BlockSpec(
            name=f"{block_name_prefix}.block{len(VGG16_STAGES)}",
            index=len(VGG16_STAGES),
            layers=tuple(classifier),
        )
    )
    return NetworkSpec(
        name=f"{name}-{dataset.lower()}",
        blocks=tuple(blocks),
        input_shape=input_shape,
        num_classes=num_classes,
        metadata={"dataset": dataset.lower()},
    )


def build_vgg16(dataset: str = "cifar10") -> NetworkSpec:
    """Build the VGG-16 teacher grouped into six distillation blocks."""
    return build_vgg16_with_conv(
        dataset, _standard_conv, name="VGG16", block_name_prefix="vgg"
    )
