"""Observability layer: metrics registry, span tracer, structured logs.

Three independent primitives with one shared goal — make the simulator,
store, cluster, tune, and serve layers *inspectable*:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters / gauges / histograms; Prometheus text + JSON renderers).
* :mod:`repro.obs.tracing` — nested wall-time :func:`span` blocks into a
  ring-buffer :class:`SpanRecorder` with chrome-trace export; free when
  no recorder is installed.
* :mod:`repro.obs.logs` — stdlib logging with a JSON formatter and a
  per-request ``request_id`` :mod:`contextvars` variable.

``repro.obs.profiler`` combines them into the ``repro profile`` CLI.
See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.logs import (
    JsonFormatter,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profiler import (
    PROFILE_KINDS,
    ProfileReport,
    format_breakdown,
    profile_workload,
)
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    get_recorder,
    install_recorder,
    span,
    uninstall_recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "Span",
    "SpanRecorder",
    "span",
    "get_recorder",
    "install_recorder",
    "uninstall_recorder",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
    "PROFILE_KINDS",
    "ProfileReport",
    "profile_workload",
    "format_breakdown",
]
