"""Structured logging: stdlib ``logging`` with a JSON formatter and a
per-request ``request_id`` propagated via :mod:`contextvars`.

All library logging goes through ``repro.*`` loggers obtained from
:func:`get_logger`; nothing is configured at import time (library code
must not hijack the host application's logging).  The CLI's global
``--log-level`` / ``--log-json`` flags and the serve transports call
:func:`configure_logging` exactly once to attach a stderr handler with
either the human one-line format or :class:`JsonFormatter`.

Every record formatted by :class:`JsonFormatter` carries the current
``request_id`` (when one is bound), so a single grep over the serve log
reconstructs one request's full story across service, store, and
session layers.  Documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
from contextvars import ContextVar
from typing import Optional

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "request_id_var",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
]

#: The request id bound to the current thread/async context (serve only).
request_id_var: ContextVar[Optional[str]] = ContextVar(
    "repro_request_id", default=None
)

_request_counter_lock = threading.Lock()
_request_counter = 0

#: Attributes every LogRecord carries; anything else is caller-supplied
#: ``extra`` and gets surfaced as a structured field.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


def new_request_id() -> str:
    """A process-unique request id (``req-000001``, ``req-000002``, ...).

    Deterministic per process — a seeded counter, not a UUID — so test
    assertions and trace/log cross-references stay reproducible.
    """
    global _request_counter
    with _request_counter_lock:
        _request_counter += 1
        return f"req-{_request_counter:06d}"


def bind_request_id(request_id: Optional[str]):
    """Bind ``request_id`` to the current context; returns the reset token."""
    return request_id_var.set(request_id)


def current_request_id() -> Optional[str]:
    return request_id_var.get()


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, request_id,
    plus any ``extra={...}`` fields passed at the call site.

    Example:
        >>> import logging
        >>> from repro.obs.logs import JsonFormatter
        >>> record = logging.LogRecord(
        ...     "repro.demo", logging.INFO, __file__, 1, "hello %s", ("world",), None
        ... )
        >>> payload = __import__("json").loads(JsonFormatter().format(record))
        >>> (payload["level"], payload["logger"], payload["message"])
        ('INFO', 'repro.demo', 'hello world')
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = request_id_var.get()
        if request_id is not None:
            payload["request_id"] = request_id
        for key, value in vars(record).items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _HumanFormatter(logging.Formatter):
    """``LEVEL logger: message [request_id]`` — the non-JSON default."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname} {record.name}: {record.getMessage()}"
        request_id = request_id_var.get()
        if request_id is not None:
            base = f"{base} [{request_id}]"
        if record.exc_info and record.exc_info[0] is not None:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str) -> logging.Logger:
    """A namespaced library logger (``repro.<name>`` unless already so)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "WARNING",
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger.

    Idempotent: reconfiguring replaces the handler installed by a prior
    call instead of stacking duplicates.  Returns the ``repro`` logger.
    """
    root = logging.getLogger("repro")
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_format else _HumanFormatter())
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
