"""The process-wide metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` instance (the module-level default returned
by :func:`get_registry`) collects every runtime metric of the library —
session runs, store scans, cluster events, per-endpoint serve latencies —
and renders them as Prometheus text (``GET /v1/metrics``) or JSON.

Design rules:

* **Thread-safe and exact** — every metric family guards its samples with
  one lock, so concurrent increments from the ``thread`` execution
  backend's pool (or the serve transports' handler threads) sum exactly;
  ``tests/obs/test_metrics.py`` hammers this with a thread pool.
* **Fixed histogram buckets** — histograms carry immutable, sorted bucket
  boundaries chosen at registration; observation is a bisect plus two
  adds, cheap enough for the warm serve hot path.
* **Get-or-create registration** — :meth:`MetricsRegistry.counter` (and
  friends) return the existing family when the name is already
  registered, so instrumented modules can declare their metrics at import
  time without coordination; re-registering under a different metric type
  or bucket layout is a :class:`~repro.errors.ConfigurationError`.
* **Snapshot / reset** — :meth:`snapshot` returns a point-in-time plain
  dict (the unit of delta-based assertions), :meth:`reset` zeroes every
  sample while keeping the registrations.

Documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Default histogram boundaries (seconds): spans the warm serve hot path
#: (~0.1 ms) through cold multi-second sweeps.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in items)
    return "{" + body + "}"


class _Metric:
    """Base family: one metric name holding samples per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def reset(self) -> None:
        raise NotImplementedError

    def samples(self) -> dict:
        """JSON-ready snapshot of every label set's value."""
        raise NotImplementedError

    def render(self) -> List[str]:
        """Prometheus text lines for this family (HELP/TYPE included)."""
        raise NotImplementedError

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing sum per label set.

    Example:
        >>> from repro.obs.metrics import Counter
        >>> counter = Counter("demo_total")
        >>> counter.inc(); counter.inc(2, endpoint="/v1/plan")
        >>> (counter.value(), counter.value(endpoint="/v1/plan"))
        (1.0, 2.0)
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set of the family."""
        with self._lock:
            return sum(self._values.values())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "": value
                for key, value in sorted(self._values.items())
            }

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(key)} {_format(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down (in-flight requests, heap depth).

    Example:
        >>> from repro.obs.metrics import Gauge
        >>> gauge = Gauge("demo_in_flight")
        >>> gauge.inc(); gauge.inc(); gauge.dec()
        >>> gauge.value()
        1.0
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: str) -> None:
        """Raise the gauge to ``value`` if it is below it (peak tracking)."""
        key = _label_key(labels)
        with self._lock:
            if value > self._values.get(key, float("-inf")):
                self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "": value
                for key, value in sorted(self._values.items())
            }

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(key)} {_format(value)}")
        return lines


class _HistogramSample:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative histogram with fixed bucket boundaries per label set.

    Example:
        >>> from repro.obs.metrics import Histogram
        >>> histogram = Histogram("demo_seconds", buckets=(0.1, 1.0))
        >>> for value in (0.05, 0.5, 5.0):
        ...     histogram.observe(value)
        >>> histogram.count(), round(histogram.sum(), 2)
        (3, 5.55)
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {self.name!r} needs >= 1 bucket")
        if len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {self.name!r} has duplicate bucket boundaries"
            )
        self.buckets = bounds
        self._samples: Dict[LabelKey, _HistogramSample] = {}

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        key = _label_key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = _HistogramSample(len(self.buckets))
            if index < len(self.buckets):
                sample.bucket_counts[index] += 1
            sample.sum += value
            sample.count += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return sample.count if sample else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return sample.sum if sample else 0.0

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def samples(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "": {
                    "count": sample.count,
                    "sum": sample.sum,
                    "buckets": {
                        _format(bound): count
                        for bound, count in zip(
                            self.buckets, _cumulative(sample.bucket_counts)
                        )
                    },
                }
                for key, sample in sorted(self._samples.items())
            }

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = [
                (key, list(sample.bucket_counts), sample.sum, sample.count)
                for key, sample in sorted(self._samples.items())
            ]
        for key, bucket_counts, total, count in items:
            running = 0
            for bound, bucket_count in zip(self.buckets, bucket_counts):
                running += bucket_count
                labels = _render_labels(key, [("le", _format(bound))])
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        if not items:
            lines.append(f"{self.name}_count 0")
        return lines


def _cumulative(counts: Iterable[int]) -> List[int]:
    out: List[int] = []
    running = 0
    for count in counts:
        running += count
        out.append(running)
    return out


def _format(value: float) -> str:
    """Prometheus-friendly number: integral floats render without ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Process-wide family registry with get-or-create registration.

    Example:
        >>> from repro.obs.metrics import MetricsRegistry
        >>> registry = MetricsRegistry()
        >>> requests = registry.counter("requests_total", "served requests")
        >>> requests.inc(endpoint="/v1/plan")
        >>> 'requests_total{endpoint="/v1/plan"} 1' in registry.render_prometheus()
        True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {kind.kind}"
                    )
                return existing
            metric = self._metrics[name] = factory()
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, buckets), Histogram
        )
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(sorted(float(b) for b in buckets)):
            raise ConfigurationError(
                f"histogram {name!r} is already registered with buckets "
                f"{metric.buckets}; re-registration must match"
            )
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Zero every sample; registrations (names, buckets) survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def snapshot(self) -> dict:
        """Point-in-time JSON-ready view: ``{name: {kind, samples}}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {"kind": metric.kind, "help": metric.help, "samples": metric.samples()}
            for name, metric in metrics
        }

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: The process-wide default registry every instrumented module records to.
_DEFAULT = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/v1/metrics`` renders)."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one.

    Intended for tests that need a clean slate without disturbing the
    module-level metric handles other modules already hold (prefer
    :meth:`MetricsRegistry.reset` + delta assertions where possible).
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous
