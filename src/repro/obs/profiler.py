"""The profiling harness behind ``repro profile <kind>``.

:func:`profile_workload` installs a fresh :class:`SpanRecorder`, runs a
workload callable under one root span (``profile.<kind>``), and returns
a :class:`ProfileReport`: wall time, span-tree coverage of that wall
time, per-span-name breakdown rows (count / total / self time), and the
chrome-trace document for ``--trace-out``.

Coverage is the fraction of measured wall time accounted for by the
recorded root spans — the acceptance bar is ≥95%, i.e. the tracer must
not lose meaningful time to its own bookkeeping.  The breakdown's
``self_s`` column is the direct input to ROADMAP items 2 and 3: it is
what says whether a slow sweep is estimator math, shard scanning, or
neither.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List

from repro.errors import ConfigurationError
from repro.obs.tracing import SpanRecorder, span

__all__ = ["PROFILE_KINDS", "ProfileReport", "profile_workload", "format_breakdown"]

#: Workload kinds the CLI knows how to build (see ``repro profile -h``).
PROFILE_KINDS = ("run", "sweep", "cluster", "tune")


@dataclass
class ProfileReport:
    """Everything one profiling run produced."""

    kind: str
    wall_s: float
    coverage: float
    span_count: int
    dropped_spans: int
    breakdown: List[dict] = field(default_factory=list)
    chrome_trace: dict = field(default_factory=dict)
    result: object = None

    def to_dict(self) -> dict:
        """JSON payload for ``repro profile`` (trace + result excluded)."""
        return {
            "kind": self.kind,
            "wall_s": round(self.wall_s, 6),
            "coverage": round(self.coverage, 4),
            "span_count": self.span_count,
            "dropped_spans": self.dropped_spans,
            "breakdown": [
                {
                    "name": row["name"],
                    "count": row["count"],
                    "total_ms": round(row["total_s"] * 1e3, 3),
                    "self_ms": round(row["self_s"] * 1e3, 3),
                }
                for row in self.breakdown
            ],
        }


def profile_workload(
    kind: str,
    workload: Callable[[], object],
    capacity: int = 65536,
) -> ProfileReport:
    """Run ``workload`` under a fresh recorder and measure where time went.

    Example:
        >>> import time
        >>> from repro.obs.profiler import profile_workload
        >>> from repro.obs.tracing import span
        >>> def workload():
        ...     with span("work.step"):
        ...         time.sleep(0.01)
        ...         return 42
        >>> report = profile_workload("run", workload)
        >>> (report.result, report.coverage > 0.95, report.span_count)
        (42, True, 2)
    """
    if kind not in PROFILE_KINDS:
        raise ConfigurationError(
            f"unknown profile kind {kind!r}; choose from {', '.join(PROFILE_KINDS)}"
        )
    recorder = SpanRecorder(capacity=capacity)
    with recorder:
        t0 = time.perf_counter()
        with span(f"profile.{kind}"):
            result = workload()
        wall_s = time.perf_counter() - t0
    covered_s = sum(root.duration_s for root in recorder.roots())
    coverage = min(1.0, covered_s / wall_s) if wall_s > 0 else 1.0
    return ProfileReport(
        kind=kind,
        wall_s=wall_s,
        coverage=coverage,
        span_count=len(recorder.spans()),
        dropped_spans=recorder.dropped,
        breakdown=recorder.breakdown(),
        chrome_trace=recorder.chrome_trace(),
        result=result,
    )


def format_breakdown(report: ProfileReport) -> str:
    """The human table printed to stderr by ``repro profile``."""
    headers = ["span", "count", "total ms", "self ms", "% wall"]
    rows = []
    for row in report.breakdown:
        share = row["total_s"] / report.wall_s if report.wall_s > 0 else 0.0
        rows.append(
            [
                row["name"],
                str(row["count"]),
                f"{row['total_s'] * 1e3:.3f}",
                f"{row['self_s'] * 1e3:.3f}",
                f"{share:6.1%}",
            ]
        )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render(headers), "  ".join("-" * w for w in widths)]
    lines.extend(render(row) for row in rows)
    lines.append(
        f"wall {report.wall_s * 1e3:.3f} ms · coverage {report.coverage:.1%} · "
        f"{report.span_count} spans ({report.dropped_spans} dropped)"
    )
    return "\n".join(lines)
