"""Nested wall-time span tracing with a ring-buffer recorder.

The tracer is the "where did the time go" half of the observability
layer (the metrics registry is the "how much / how many" half).  Any
instrumented code path wraps itself in::

    with span("store.scan", shard="ab"):
        ...

and when a :class:`SpanRecorder` is installed the block becomes a
:class:`Span` — name, tags, start/duration, parent link — appended to a
bounded ring buffer.  When no recorder is installed (the default, and
the serve hot path's steady state unless profiling is requested),
``span()`` returns a shared no-op context manager whose enter/exit is a
couple of attribute lookups, so instrumentation stays within the ≤5%
overhead budget enforced by ``benchmarks/bench_obs_overhead.py``.

Determinism: span ids come from a seeded :class:`itertools.count`, not
from time or randomness, so two identical runs produce identical span
trees (asserted property-style in ``tests/obs/test_tracing.py``).
Nesting is tracked with a :class:`contextvars.ContextVar`, so the parent
chain is correct across threads and async contexts without locking on
the hot path.

Export formats: :meth:`SpanRecorder.chrome_trace` emits the Chrome
``chrome://tracing`` / Perfetto JSON event list, and
:meth:`SpanRecorder.breakdown` aggregates per-name totals with
self-time (total minus direct children) for the ``repro profile``
table.  Documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanRecorder",
    "span",
    "get_recorder",
    "install_recorder",
    "uninstall_recorder",
]


@dataclass
class Span:
    """One completed (or in-flight) timed block of work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    tags: Dict[str, object] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": dict(self.tags),
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }


#: The innermost active span id for the current thread/async context.
_current_span_id: ContextVar[Optional[int]] = ContextVar(
    "repro_current_span_id", default=None
)


class _ActiveSpan:
    """Context manager recording one span into the installed recorder."""

    __slots__ = ("_recorder", "_span", "_token", "_t0")

    def __init__(self, recorder: "SpanRecorder", name: str, tags: Dict[str, object]):
        self._recorder = recorder
        self._span = Span(
            span_id=recorder._next_id(),
            parent_id=_current_span_id.get(),
            name=name,
            tags=tags,
        )

    def __enter__(self) -> Span:
        self._token = _current_span_id.set(self._span.span_id)
        self._t0 = time.perf_counter()
        self._span.start_s = self._t0 - self._recorder.epoch_s
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        _current_span_id.reset(self._token)
        self._span.duration_s = duration
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._recorder._record(self._span)


class _NullSpan:
    """Shared no-op context manager for the recorder-disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()

#: The installed recorder, or ``None`` (tracing disabled — the default).
_recorder: Optional["SpanRecorder"] = None
_recorder_lock = threading.Lock()


class SpanRecorder:
    """Bounded ring buffer of completed spans with deterministic ids.

    Example:
        >>> from repro.obs.tracing import SpanRecorder, span
        >>> recorder = SpanRecorder(capacity=128)
        >>> with recorder:
        ...     with span("outer"):
        ...         with span("inner", shard="ab"):
        ...             pass
        >>> [(s.span_id, s.parent_id, s.name) for s in recorder.spans()]
        [(2, 1, 'inner'), (1, None, 'outer')]
    """

    def __init__(self, capacity: int = 4096, seed: int = 1) -> None:
        if capacity < 1:
            raise ValueError("SpanRecorder capacity must be >= 1")
        self.capacity = capacity
        self.seed = seed
        self.epoch_s = time.perf_counter()
        self._ids = itertools.count(seed)
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    # -- recording ---------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def _record(self, completed: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(completed)

    # -- installation ------------------------------------------------
    def __enter__(self) -> "SpanRecorder":
        install_recorder(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall_recorder(self)

    # -- inspection --------------------------------------------------
    def spans(self) -> List[Span]:
        """Recorded spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def roots(self) -> List[Span]:
        """Spans whose parent was never recorded (top-level blocks)."""
        with self._lock:
            spans = list(self._spans)
        recorded = {s.span_id for s in spans}
        return [s for s in spans if s.parent_id not in recorded]

    def children(self, span_id: Optional[int]) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        return [s for s in spans if s.parent_id == span_id]

    # -- exports -----------------------------------------------------
    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON document (load in Perfetto/
        ``chrome://tracing``).  Timestamps are microseconds relative to
        the recorder's epoch; every span is one complete ``"X"`` event.
        """
        events = []
        for s in sorted(self.spans(), key=lambda s: (s.start_s, s.span_id)):
            args = {str(k): v for k, v in s.tags.items()}
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": round(s.start_s * 1e6, 3),
                    "dur": round(s.duration_s * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def breakdown(self) -> List[dict]:
        """Per-name aggregate rows sorted by total time, descending.

        ``self_s`` is the time spent in spans of that name *excluding*
        their direct children — the column that says where to optimize.
        """
        spans = self.spans()
        child_time: Dict[Optional[int], float] = {}
        for s in spans:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration_s
        rows: Dict[str, dict] = {}
        for s in spans:
            row = rows.setdefault(
                s.name, {"name": s.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += s.duration_s
            row["self_s"] += max(0.0, s.duration_s - child_time.get(s.span_id, 0.0))
        return sorted(
            rows.values(), key=lambda row: (-row["total_s"], row["name"])
        )


def span(name: str, **tags: object):
    """Time a block of work under ``name`` when tracing is enabled.

    Returns a context manager.  With no recorder installed this is the
    shared no-op span — safe (and cheap) to leave in hot paths.
    """
    recorder = _recorder
    if recorder is None:
        return _NULL_SPAN
    return _ActiveSpan(recorder, name, tags)


def get_recorder() -> Optional[SpanRecorder]:
    """The currently installed recorder, or ``None`` when disabled."""
    return _recorder


def install_recorder(recorder: SpanRecorder) -> SpanRecorder:
    """Make ``recorder`` the process-wide span sink; returns it."""
    global _recorder
    with _recorder_lock:
        _recorder = recorder
    return recorder


def uninstall_recorder(recorder: Optional[SpanRecorder] = None) -> None:
    """Disable tracing.  When ``recorder`` is given, uninstall only if it
    is the one installed (lets nested ``with SpanRecorder()`` blocks
    restore correctly without clobbering an outer recorder)."""
    global _recorder
    with _recorder_lock:
        if recorder is None or _recorder is recorder:
            _recorder = None
