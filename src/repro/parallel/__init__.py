"""Scheduling strategies for parallel blockwise distillation.

This subpackage implements every strategy the paper evaluates:

* ``DP`` — the data-parallel baseline of DNA (§II-B, Fig. 3a).
* ``LS`` — the layerwise-scheduling baseline of Blakeney et al. (§II-B).
* ``TR`` — teacher relaying (§IV-A, Fig. 3b).
* ``TR+DPU`` — teacher relaying + decoupled parameter update (§IV-B, Fig. 3c).
* ``TR+IR`` — internal relaying (§VII-A).
* ``TR+DPU+AHD`` — full Pipe-BD with automatic hybrid distribution
  (§IV-C, Fig. 3d).

All strategies produce a :class:`~repro.parallel.plan.SchedulePlan`, which the
:class:`~repro.parallel.executor.ScheduleExecutor` lowers onto the
discrete-event simulator.
"""

from repro.parallel.plan import SchedulePlan, StageAssignment
from repro.parallel.registry import (
    REGISTRY,
    Strategy,
    StrategyRegistry,
    register_strategy,
)
from repro.parallel.profiler import Profiler, ProfileTable
from repro.parallel.partition import contiguous_partitions, compositions
from repro.parallel.estimator import StageTimeEstimator
from repro.parallel.baseline_dp import build_dp_plan
from repro.parallel.baseline_ls import build_ls_plan
from repro.parallel.teacher_relay import build_tr_plan
from repro.parallel.decoupled import build_tr_dpu_plan
from repro.parallel.internal_relay import build_ir_plan
from repro.parallel.hybrid import build_ahd_plan
from repro.parallel.executor import ScheduleExecutor, ExecutionResult

__all__ = [
    "SchedulePlan",
    "StageAssignment",
    "REGISTRY",
    "Strategy",
    "StrategyRegistry",
    "register_strategy",
    "Profiler",
    "ProfileTable",
    "contiguous_partitions",
    "compositions",
    "StageTimeEstimator",
    "build_dp_plan",
    "build_ls_plan",
    "build_tr_plan",
    "build_tr_dpu_plan",
    "build_ir_plan",
    "build_ahd_plan",
    "ScheduleExecutor",
    "ExecutionResult",
]
