"""DP baseline: data-parallel blockwise distillation (paper §II-B, Fig. 3a).

The state-of-the-art baseline (DNA's official implementation) trains student
blocks one at a time: block ``i`` is trained for its full epoch budget with
all devices in a data-parallel group, each device loading its own shard of
the batch and running the teacher from block 0 up to block ``i`` to produce
the distillation input.  Then training moves to block ``i+1``.

This is the strategy whose three inefficiencies — redundant teacher
execution, extra data loading, and small per-device batches — motivate
Pipe-BD (§III).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan


def build_dp_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
) -> SchedulePlan:
    """Build the DP baseline plan.

    There is nothing to search: every device participates in one
    data-parallel group and the batch is split evenly.
    """
    if batch_size < server.num_devices:
        raise ScheduleError(
            f"batch size {batch_size} is smaller than the device count "
            f"{server.num_devices}; the DP baseline cannot shard it"
        )
    return SchedulePlan(
        kind="data_parallel",
        strategy="DP",
        batch_size=batch_size,
        num_devices=server.num_devices,
        num_blocks=pair.num_blocks,
        decoupled_update=False,
        metadata={
            "per_device_batch": batch_size // server.num_devices,
            "description": "sequential block-by-block training, data parallel across all devices",
        },
    )
