"""LS baseline: layerwise scheduling with bin packing (paper §II-B).

The alternative baseline (Blakeney et al., TPDS 2021) treats the training of
each block as an independent task and bin-packs the tasks onto devices to
balance the load.  Each device trains its assigned blocks with the *full*
batch (no data parallelism, no gradient communication), but still pays the
redundant teacher prefix execution for every assigned block and loads the
data once per device.

The paper observes that LS beats DP on CIFAR-10 but loses on ImageNet, where
"the composition of the neural networks ... typically has a few heavy
blocks" and bin packing cannot split them (§VII-A) — a behaviour this
implementation reproduces because the block cost used for packing includes
the teacher prefix, which is dominated by block 0 at ImageNet resolution.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.partition import lpt_bin_packing
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable


def block_task_cost(pair: DistillationPair, profile: ProfileTable, block_id: int, batch: int) -> float:
    """Per-step cost of training one block on a single device with the full batch.

    Includes the teacher forward over blocks ``0..block_id`` (the redundant
    prefix) plus the student's forward/backward rounds and update.
    """
    teacher_prefix = sum(
        profile.teacher_time(prefix_block, batch) for prefix_block in range(block_id + 1)
    )
    return teacher_prefix + profile.student_step_time(block_id, batch)


def build_ls_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    profile: ProfileTable,
) -> SchedulePlan:
    """Build the LS baseline plan by LPT bin packing of per-block task costs."""
    if not profile.has(0, batch_size):
        raise ScheduleError(
            f"profile table has no entries at the full batch size {batch_size}; "
            "profile with extra_batches=(batch_size,)"
        )
    costs: Tuple[float, ...] = tuple(
        block_task_cost(pair, profile, block_id, batch_size)
        for block_id in range(pair.num_blocks)
    )
    bins = lpt_bin_packing(costs, server.num_devices)
    device_blocks: Dict[int, Tuple[int, ...]] = {
        device: blocks for device, blocks in enumerate(bins) if blocks
    }
    return SchedulePlan(
        kind="layerwise",
        strategy="LS",
        batch_size=batch_size,
        num_devices=server.num_devices,
        num_blocks=pair.num_blocks,
        decoupled_update=True,  # devices are fully independent
        device_blocks=device_blocks,
        metadata={
            "block_costs": costs,
            "description": "bin-packed independent block tasks, full batch per device",
        },
    )
