"""Decoupled parameter update (paper §IV-B, Fig. 3c).

With teacher relaying alone, every device waits at a step barrier until all
devices have finished their backward pass before updating weights and
starting the next step; the wait for the relayed activation at the start of
each step therefore shows up as a bubble.  Decoupled parameter update removes
the barrier: as soon as a device's backward pass finishes it updates its own
student blocks and immediately begins the next step's teacher execution.

This is safe because student blocks have no dependency on each other's weight
parameters — a property specific to blockwise distillation that
:mod:`repro.distill.trainer` verifies numerically.

At the plan level DPU is simply the ``decoupled_update`` flag on a
teacher-relaying plan; the executor turns the flag into the presence or
absence of cross-device step-barrier dependencies.
"""

from __future__ import annotations

from repro.data.dataset import DatasetSpec
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable
from repro.parallel.teacher_relay import build_tr_plan


def build_tr_dpu_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    profile: ProfileTable,
    dataset: DatasetSpec,
) -> SchedulePlan:
    """Teacher relaying with decoupled parameter updates (TR+DPU)."""
    return build_tr_plan(
        pair=pair,
        server=server,
        batch_size=batch_size,
        profile=profile,
        dataset=dataset,
        decoupled_update=True,
    )


def with_decoupled_update(plan: SchedulePlan, decoupled: bool = True) -> SchedulePlan:
    """Return a copy of a pipeline plan with the DPU flag set as requested."""
    strategy = plan.strategy
    if decoupled and not plan.decoupled_update and strategy == "TR":
        strategy = "TR+DPU"
    if not decoupled and plan.decoupled_update and strategy == "TR+DPU":
        strategy = "TR"
    return SchedulePlan(
        kind=plan.kind,
        strategy=strategy,
        batch_size=plan.batch_size,
        num_devices=plan.num_devices,
        num_blocks=plan.num_blocks,
        decoupled_update=decoupled,
        stages=plan.stages,
        device_blocks=plan.device_blocks,
        metadata=dict(plan.metadata),
    )
