"""Analytical stage-time estimates used by the planners.

Both the TR planner (choosing the best contiguous block-to-device split) and
the AHD search (additionally splitting stages along the batch dimension) need
to score candidate assignments quickly.  The estimator computes, for a stage
``(blocks, device group)`` at a global batch size, the per-step busy time of
one device in the group: teacher forward, student rounds, weight update,
gradient all-reduce (if the stage is replicated), and the data-loading time
if the stage contains block 0.

In steady state with decoupled parameter updates, the pipeline's throughput
is set by the slowest stage (§IV-C: "the system throughput is determined by
the throughput of the slowest device"), so a plan's score is simply the
maximum stage time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.data.dataset import DatasetSpec
from repro.data.loader import DataLoadModel
from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.layers import BYTES_PER_ELEMENT
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan, StageAssignment
from repro.parallel.profiler import ProfileTable


@dataclass(frozen=True)
class StageTimeEstimate:
    """Decomposed per-step time of one stage."""

    teacher: float
    student: float
    update: float
    allreduce: float
    data_load: float
    relay: float

    @property
    def compute(self) -> float:
        return self.teacher + self.student + self.update

    @property
    def total(self) -> float:
        """Per-step busy time.

        Data loading and activation relaying overlap with compute (paper
        §IV-A); they only matter if they exceed the compute time, so the
        stage time is the max of the compute path and each overlapped path.
        """
        overlapped = max(self.data_load, self.relay)
        return max(self.compute + self.allreduce, overlapped)


class StageTimeEstimator:
    """Scores stage assignments against a profile table."""

    def __init__(
        self,
        pair: DistillationPair,
        server: ServerSpec,
        dataset: DatasetSpec,
        profile: ProfileTable,
    ) -> None:
        self.pair = pair
        self.server = server
        self.dataset = dataset
        self.profile = profile
        self.loader = DataLoadModel(dataset=dataset, host=server.host)

    # ------------------------------------------------------------------ #
    def stage_time(
        self,
        block_ids: Sequence[int],
        num_replicas: int,
        global_batch: int,
        concurrent_loaders: int = 1,
    ) -> StageTimeEstimate:
        """Per-step time of a stage handling ``block_ids`` on ``num_replicas`` devices."""
        if num_replicas <= 0:
            raise ScheduleError("num_replicas must be positive")
        if not block_ids:
            raise ScheduleError("a stage must contain at least one block")
        micro_batch = max(1, -(-global_batch // num_replicas))  # ceil division

        teacher_time = 0.0
        student_time = 0.0
        update_time = 0.0
        grad_bytes = 0.0
        for block_id in block_ids:
            entry = self.profile.lookup(block_id, micro_batch)
            teacher_time += entry.teacher_forward
            student_time += self.pair.student_rounds_per_step * entry.student_training
            update_time += entry.weight_update
            grad_bytes += self.pair.student.block(block_id).params * BYTES_PER_ELEMENT

        allreduce_time = 0.0
        if num_replicas > 1:
            allreduce_time = self.server.interconnect.allreduce_time(grad_bytes, num_replicas)

        data_load_time = 0.0
        if 0 in block_ids:
            data_load_time = self.loader.batch_load_time(
                micro_batch, concurrent_loaders=max(concurrent_loaders, num_replicas)
            )

        relay_time = 0.0
        last_block = max(block_ids)
        if last_block < self.pair.num_blocks - 1:
            boundary_bytes = (
                self.pair.teacher.block(last_block).output_bytes_per_sample * micro_batch
            )
            relay_time = self.server.interconnect.transfer_time(boundary_bytes)

        return StageTimeEstimate(
            teacher=teacher_time,
            student=student_time,
            update=update_time,
            allreduce=allreduce_time,
            data_load=data_load_time,
            relay=relay_time,
        )

    # ------------------------------------------------------------------ #
    def plan_step_time(self, plan: SchedulePlan) -> float:
        """Estimated steady-state step time of a pipeline plan (max stage time)."""
        if plan.kind != "pipeline":
            raise ScheduleError("plan_step_time only applies to pipeline plans")
        first_stage_replicas = plan.stages[0].num_devices
        times = []
        for stage in plan.stages:
            estimate = self.stage_time(
                stage.block_ids,
                stage.num_devices,
                plan.batch_size,
                concurrent_loaders=first_stage_replicas,
            )
            times.append(estimate.total)
        return max(times)

    def stage_estimates(self, plan: SchedulePlan) -> Tuple[StageTimeEstimate, ...]:
        """Per-stage estimates of a pipeline plan, in stage order."""
        if plan.kind != "pipeline":
            raise ScheduleError("stage_estimates only applies to pipeline plans")
        first_stage_replicas = plan.stages[0].num_devices
        return tuple(
            self.stage_time(
                stage.block_ids,
                stage.num_devices,
                plan.batch_size,
                concurrent_loaders=first_stage_replicas,
            )
            for stage in plan.stages
        )


def stage_assignments_from_partition(
    partition: Sequence[Sequence[int]], device_counts: Sequence[int]
) -> Tuple[StageAssignment, ...]:
    """Build stage assignments from a block partition and per-stage device counts.

    Devices are assigned contiguously in stage order: stage 0 gets devices
    ``0 .. device_counts[0]-1`` and so on — matching the paper's Fig. 3d where
    early (heavier) stages get the lower-ranked devices.
    """
    if len(partition) != len(device_counts):
        raise ScheduleError("partition and device_counts must have equal length")
    stages = []
    next_device = 0
    for stage_id, (blocks, count) in enumerate(zip(partition, device_counts)):
        if count <= 0:
            raise ScheduleError(f"stage {stage_id} has non-positive device count")
        devices = tuple(range(next_device, next_device + count))
        next_device += count
        stages.append(
            StageAssignment(stage_id=stage_id, block_ids=tuple(blocks), device_ids=devices)
        )
    return tuple(stages)
