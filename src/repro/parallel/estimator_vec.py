"""Vectorized stage-time estimation: whole candidate batches in one numpy pass.

:class:`~repro.parallel.estimator.StageTimeEstimator` scores one stage per
call; the TR and AHD planners score *thousands* of candidate stages per plan
build, and the successive-halving tuner scores every grid point before it
simulates anything.  This module is the batch twin: it pregenerates the
per-(block, batch) profile numbers into dense arrays once, then evaluates an
entire batch of ``(blocks, device-group, batch-size)`` stage candidates in a
single array pass, returning a :class:`StageTimeBatch` that decomposes
exactly like :class:`~repro.parallel.estimator.StageTimeEstimate`
(teacher / student / update / allreduce / data_load / relay).

**Bit-exactness.**  The arrays reproduce the scalar estimator's arithmetic
operation-for-operation — per-block sums accumulate in block order from 0.0
(a fixed-slot loop, never ``np.sum``'s pairwise reduction), and the
interconnect / loader formulas keep the scalar evaluation order — so
vectorized and scalar estimates are *identical floats*, not merely close.
``tests/parallel/test_estimator_equivalence.py`` pins this property; the
golden plan JSONs in ``tests/parallel/golden/`` depend on it.

**numpy stays optional.**  Importing this module (and everything that routes
through it) works without numpy: :func:`vector_enabled` reports whether the
fast path is available, and the planners fall back to the scalar loop when
it is not (or when ``REPRO_NO_VECTOR=1`` forces the fallback, as the
equivalence benchmark does).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError, ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.layers import BYTES_PER_ELEMENT
from repro.models.pairs import DistillationPair
from repro.parallel.estimator import StageTimeEstimate
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable

try:  # pragma: no cover - exercised by the numpy-optional subprocess gate
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

HAVE_NUMPY = np is not None

__all__ = [
    "HAVE_NUMPY",
    "SearchGrid",
    "SearchSegment",
    "StageTimeBatch",
    "VectorStageEstimator",
    "groups_from_sizes",
    "maybe_vector_estimator",
    "partition_grid",
    "search_grid",
    "vector_enabled",
]


def vector_enabled() -> bool:
    """Whether the vectorized fast path is available and not disabled.

    Example:
        >>> from repro.parallel.estimator_vec import vector_enabled
        >>> isinstance(vector_enabled(), bool)
        True
    """
    return HAVE_NUMPY and not os.environ.get("REPRO_NO_VECTOR")


@dataclass(frozen=True)
class StageTimeBatch:
    """Decomposed per-step times of a batch of stages (struct of arrays).

    Mirrors :class:`~repro.parallel.estimator.StageTimeEstimate` field by
    field; index ``i`` of every array describes candidate stage ``i``.
    """

    teacher: "np.ndarray"
    student: "np.ndarray"
    update: "np.ndarray"
    allreduce: "np.ndarray"
    data_load: "np.ndarray"
    relay: "np.ndarray"

    def __len__(self) -> int:
        return len(self.teacher)

    @property
    def compute(self) -> "np.ndarray":
        return self.teacher + self.student + self.update

    @property
    def total(self) -> "np.ndarray":
        """Per-stage busy time, same max-of-paths rule as the scalar total."""
        overlapped = np.maximum(self.data_load, self.relay)
        return np.maximum(self.compute + self.allreduce, overlapped)

    def estimate(self, index: int) -> StageTimeEstimate:
        """The scalar-typed estimate of one stage in the batch."""
        return StageTimeEstimate(
            teacher=float(self.teacher[index]),
            student=float(self.student[index]),
            update=float(self.update[index]),
            allreduce=float(self.allreduce[index]),
            data_load=float(self.data_load[index]),
            relay=float(self.relay[index]),
        )

    def estimates(self) -> Tuple[StageTimeEstimate, ...]:
        return tuple(self.estimate(index) for index in range(len(self)))


class VectorStageEstimator:
    """Batch twin of :class:`~repro.parallel.estimator.StageTimeEstimator`.

    Pregenerates the profile table into ``(num_batches, num_blocks)`` arrays
    once, then answers whole candidate batches with a handful of array ops.

    Example:
        >>> from repro.core.config import ExperimentConfig
        >>> from repro.core.session import Session
        >>> from repro.parallel.estimator import StageTimeEstimator
        >>> from repro.parallel.estimator_vec import VectorStageEstimator
        >>> session = Session()
        >>> config = ExperimentConfig(batch_size=128, simulated_steps=4)
        >>> pair = session.pair(config)
        >>> args = (pair, session.server(config), session.dataset(config),
        ...         session.profile(config))
        >>> vector, scalar = VectorStageEstimator(*args), StageTimeEstimator(*args)
        >>> batch = vector.stage_time_batch([0], [pair.num_blocks], [2], 128)
        >>> batch.estimate(0) == scalar.stage_time(
        ...     tuple(range(pair.num_blocks)), 2, 128)
        True
    """

    def __init__(
        self,
        pair: DistillationPair,
        server: ServerSpec,
        dataset: DatasetSpec,
        profile: ProfileTable,
    ) -> None:
        if np is None:  # pragma: no cover - numpy-optional gate
            raise ConfigurationError(
                "VectorStageEstimator needs numpy; install it or use the "
                "scalar StageTimeEstimator"
            )
        self.pair = pair
        self.server = server
        self.dataset = dataset
        self.profile = profile

        num_blocks = pair.num_blocks
        batches = profile.batches()
        self._batches = np.asarray(batches, dtype=np.int64)
        rounds = pair.student_rounds_per_step
        teacher = np.empty((len(batches), num_blocks))
        student = np.empty_like(teacher)
        update = np.empty_like(teacher)
        for row, batch in enumerate(batches):
            for block_id in range(num_blocks):
                entry = profile.lookup(block_id, batch)
                teacher[row, block_id] = entry.teacher_forward
                # Same expression as the scalar accumulation term:
                # rounds * (student_forward + student_backward).
                student[row, block_id] = rounds * entry.student_training
                update[row, block_id] = entry.weight_update
        self._teacher = teacher
        self._student = student
        self._update = update
        self._grad_bytes = np.array(
            [
                pair.student.block(block_id).params * BYTES_PER_ELEMENT
                for block_id in range(num_blocks)
            ],
            dtype=np.float64,
        )
        self._out_bytes = np.array(
            [
                pair.teacher.block(block_id).output_bytes_per_sample
                for block_id in range(num_blocks)
            ],
            dtype=np.float64,
        )

        interconnect = server.interconnect
        self._link_latency = interconnect.latency_s
        self._link_bandwidth = interconnect.bandwidth
        host = server.host
        self._loader_throughput = host.loader_throughput
        self._per_batch_overhead = host.per_batch_overhead_s
        self._num_cores = host.num_cores
        self._decoded_per_sample = float(dataset.decoded_bytes_per_sample)
        self._disk_per_sample = dataset.disk_bytes_per_sample
        self._decode_cpu = dataset.per_sample_decode_cpu_s

    # ------------------------------------------------------------------ #
    def _batch_rows(self, micro: "np.ndarray") -> "np.ndarray":
        """Map per-stage micro-batches to profile-table rows, or raise."""
        rows = np.searchsorted(self._batches, micro)
        rows_clipped = np.minimum(rows, len(self._batches) - 1)
        missing = self._batches[rows_clipped] != micro
        if missing.any():
            batch = int(micro[np.argmax(missing)])
            raise ConfigurationError(
                f"no profile entry at batch {batch}; "
                f"profiled batches: {sorted(int(b) for b in self._batches)}"
            )
        return rows_clipped

    def stage_time_batch(
        self,
        starts: Sequence[int],
        lengths: Sequence[int],
        replicas: Sequence[int],
        global_batch: int,
        concurrent_loaders=1,
    ) -> StageTimeBatch:
        """Per-step times of ``len(starts)`` contiguous stage candidates.

        Candidate ``i`` runs blocks ``starts[i] .. starts[i]+lengths[i]-1``
        on ``replicas[i]`` devices at ``global_batch``;
        ``concurrent_loaders`` may be a scalar or a per-candidate array (the
        planners pass each candidate's first-stage replica count, exactly as
        :meth:`StageTimeEstimator.stage_time` receives it per call).
        """
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        replicas = np.asarray(replicas, dtype=np.int64)
        if starts.shape != lengths.shape or starts.shape != replicas.shape:
            raise ScheduleError("starts, lengths and replicas must align")
        if (replicas <= 0).any():
            raise ScheduleError("num_replicas must be positive")
        if (lengths <= 0).any():
            raise ScheduleError("a stage must contain at least one block")

        num_blocks = self.pair.num_blocks
        micro = np.maximum(1, -((-global_batch) // replicas))
        rows = self._batch_rows(micro)

        # Per-block sums accumulated in block order from 0.0 — the same
        # addition sequence as the scalar `for block_id in block_ids` loop,
        # so the sums are bit-identical (np.sum's pairwise reduction is not).
        teacher = np.zeros(starts.shape)
        student = np.zeros(starts.shape)
        update = np.zeros(starts.shape)
        grad_bytes = np.zeros(starts.shape)
        max_len = int(lengths.max())
        zero = 0.0
        for slot in range(max_len):
            active = slot < lengths
            block = np.minimum(starts + slot, num_blocks - 1)
            teacher += np.where(active, self._teacher[rows, block], zero)
            student += np.where(active, self._student[rows, block], zero)
            update += np.where(active, self._update[rows, block], zero)
            grad_bytes += np.where(active, self._grad_bytes[block], zero)

        # Ring all-reduce, same operation order as InterconnectSpec.
        n = replicas.astype(np.float64)
        volume = 2.0 * (n - 1.0) / n * grad_bytes
        allreduce_raw = 2.0 * (n - 1.0) * self._link_latency + volume / self._link_bandwidth
        allreduce = np.where((replicas > 1) & (grad_bytes != 0.0), allreduce_raw, 0.0)

        # Data loading, only for the stage holding block 0 (contiguous
        # stages hold block 0 iff they start at it).
        loaders = np.maximum(np.asarray(concurrent_loaders, dtype=np.int64), replicas)
        micro_f = micro.astype(np.float64)
        decoded = self._decoded_per_sample * micro_f
        on_disk = self._disk_per_sample * micro_f
        io_time = np.maximum(decoded, on_disk) / self._loader_throughput
        cpu_time = micro_f * self._decode_cpu / self._num_cores
        load = self._per_batch_overhead + loaders * np.maximum(io_time, cpu_time)
        data_load = np.where(starts == 0, load, 0.0)

        # Boundary-activation relay for every stage but the last.
        last = starts + lengths - 1
        boundary = self._out_bytes[np.minimum(last, num_blocks - 1)] * micro_f
        transfer = self._link_latency + boundary / self._link_bandwidth
        relay = np.where(
            (last < num_blocks - 1) & (boundary != 0.0), transfer, 0.0
        )

        return StageTimeBatch(
            teacher=teacher,
            student=student,
            update=update,
            allreduce=allreduce,
            data_load=data_load,
            relay=relay,
        )

    # ------------------------------------------------------------------ #
    # Whole-plan helpers (drop-in twins of the scalar estimator methods)
    # ------------------------------------------------------------------ #
    def _plan_batch(self, plan: SchedulePlan) -> StageTimeBatch:
        if plan.kind != "pipeline":
            raise ScheduleError("stage estimates only apply to pipeline plans")
        starts = [stage.first_block for stage in plan.stages]
        lengths = [len(stage.block_ids) for stage in plan.stages]
        replicas = [stage.num_devices for stage in plan.stages]
        return self.stage_time_batch(
            starts,
            lengths,
            replicas,
            plan.batch_size,
            concurrent_loaders=plan.stages[0].num_devices,
        )

    def stage_estimates(self, plan: SchedulePlan) -> Tuple[StageTimeEstimate, ...]:
        """Per-stage estimates of a pipeline plan, in stage order."""
        return self._plan_batch(plan).estimates()

    def plan_step_time(self, plan: SchedulePlan) -> float:
        """Estimated steady-state step time of a pipeline plan (max stage time)."""
        return float(self._plan_batch(plan).total.max())

    # ------------------------------------------------------------------ #
    # Candidate-grid scoring (the planner inner loops)
    # ------------------------------------------------------------------ #
    def score_candidates(
        self,
        stage_starts: "np.ndarray",
        stage_lengths: "np.ndarray",
        stage_replicas: "np.ndarray",
        global_batch: int,
    ) -> "np.ndarray":
        """Step times of ``(num_candidates, k)``-shaped candidate grids.

        Every candidate is a ``k``-stage pipeline plan; the step time is the
        maximum stage total, exactly as
        :meth:`StageTimeEstimator.plan_step_time` computes it for decoupled
        pipelines.  The data-loading term uses each candidate's first-stage
        replica count, matching the scalar call convention.
        """
        num_candidates, k = stage_starts.shape
        loaders = np.repeat(stage_replicas[:, 0], k)
        batch = self.stage_time_batch(
            stage_starts.reshape(-1),
            stage_lengths.reshape(-1),
            stage_replicas.reshape(-1),
            global_batch,
            concurrent_loaders=loaders,
        )
        return batch.total.reshape(num_candidates, k).max(axis=1)

    def score_search_space(
        self, num_devices: int, global_batch: int
    ) -> List[Tuple[SearchSegment, "np.ndarray"]]:
        """Step times of the *entire* AHD search space in one estimator pass.

        Returns ``(segment, step_times)`` pairs, one per stage count k;
        ``step_times[i]`` is candidate ``i``'s estimated step time in the
        scalar enumeration order (partition-major, composition-minor).
        """
        grid = search_grid(self.pair.num_blocks, num_devices)
        batch = self.stage_time_batch(
            grid.starts,
            grid.lengths,
            grid.replicas,
            global_batch,
            concurrent_loaders=grid.loaders,
        )
        totals = batch.total
        scored = []
        for segment in grid.segments:
            k = segment.num_stages
            span = totals[
                segment.flat_offset : segment.flat_offset + segment.num_candidates * k
            ]
            scored.append((segment, span.reshape(segment.num_candidates, k).max(axis=1)))
        return scored


@lru_cache(maxsize=256)
def partition_grid(num_blocks: int, num_stages: int) -> Tuple["np.ndarray", "np.ndarray"]:
    """``(starts, sizes)`` arrays of every contiguous block partition.

    Row ``p`` describes partition ``p`` in the exact order
    :func:`~repro.parallel.partition.contiguous_partitions` yields them —
    the planners rely on this to keep argmin winner selection identical to
    the scalar first-strict-improvement loop.  Cached (the grid depends
    only on the two counts) and returned read-only.
    """
    from repro.parallel.partition import compositions

    sizes = np.asarray(list(compositions(num_blocks, num_stages)), dtype=np.int64)
    starts = np.zeros_like(sizes)
    if num_stages > 1:
        np.cumsum(sizes[:, :-1], axis=1, out=starts[:, 1:])
    starts.flags.writeable = False
    sizes.flags.writeable = False
    return starts, sizes


@dataclass(frozen=True)
class SearchSegment:
    """One stage-count slice of a flattened AHD candidate grid."""

    num_stages: int
    num_candidates: int
    num_compositions: int
    flat_offset: int


@dataclass(frozen=True)
class SearchGrid:
    """The whole AHD candidate space, flattened for one estimator pass.

    ``starts``/``lengths``/``replicas``/``loaders`` hold every stage of
    every candidate for every stage count, concatenated k-ascending;
    ``segments`` records where each stage count's candidates live.
    """

    starts: "np.ndarray"
    lengths: "np.ndarray"
    replicas: "np.ndarray"
    loaders: "np.ndarray"
    segments: Tuple[SearchSegment, ...]


@lru_cache(maxsize=256)
def search_grid(num_blocks: int, num_devices: int) -> SearchGrid:
    """The flattened (partition x device-composition) grid for all stage counts.

    Candidate order within each segment is partition-major and
    composition-minor — exactly the scalar triple-loop enumeration order —
    so first-minimum argmin over the scored grid reproduces the scalar
    first-strict-improvement winner.
    """
    from repro.parallel.partition import compositions

    starts_all: List["np.ndarray"] = []
    lengths_all: List["np.ndarray"] = []
    replicas_all: List["np.ndarray"] = []
    loaders_all: List["np.ndarray"] = []
    segments: List[SearchSegment] = []
    offset = 0
    for num_stages in range(1, min(num_blocks, num_devices) + 1):
        part_starts, part_sizes = partition_grid(num_blocks, num_stages)
        comps = np.asarray(list(compositions(num_devices, num_stages)), dtype=np.int64)
        num_parts, num_comps = len(part_sizes), len(comps)
        starts = np.repeat(part_starts, num_comps, axis=0)
        lengths = np.repeat(part_sizes, num_comps, axis=0)
        replicas = np.tile(comps, (num_parts, 1))
        num_candidates = len(starts)
        starts_all.append(starts.reshape(-1))
        lengths_all.append(lengths.reshape(-1))
        replicas_all.append(replicas.reshape(-1))
        loaders_all.append(np.repeat(replicas[:, 0], num_stages))
        segments.append(
            SearchSegment(
                num_stages=num_stages,
                num_candidates=num_candidates,
                num_compositions=num_comps,
                flat_offset=offset,
            )
        )
        offset += num_candidates * num_stages
    grid = SearchGrid(
        starts=np.concatenate(starts_all),
        lengths=np.concatenate(lengths_all),
        replicas=np.concatenate(replicas_all),
        loaders=np.concatenate(loaders_all),
        segments=tuple(segments),
    )
    for array in (grid.starts, grid.lengths, grid.replicas, grid.loaders):
        array.flags.writeable = False
    return grid


def groups_from_sizes(sizes_row: Sequence[int]) -> Tuple[Tuple[int, ...], ...]:
    """Contiguous block-id groups for one partition-sizes row."""
    groups = []
    next_block = 0
    for size in sizes_row:
        size = int(size)
        groups.append(tuple(range(next_block, next_block + size)))
        next_block += size
    return tuple(groups)


# Identity-keyed estimator cache: planners and the tune evaluator call into
# the vectorized path once per plan build / grid point, almost always with
# the same Session-memoised (pair, server, dataset, profile) objects.  The
# cache holds strong references to its key objects, so an entry can never
# alias a recycled id() while it is live.
_ESTIMATOR_CACHE: List[tuple] = []
_ESTIMATOR_CACHE_MAX = 16


def maybe_vector_estimator(
    pair: DistillationPair,
    server: ServerSpec,
    dataset: DatasetSpec,
    profile: ProfileTable,
) -> Optional[VectorStageEstimator]:
    """A :class:`VectorStageEstimator` when the fast path is on, else None.

    The planners call this once per plan build; a ``None`` return routes
    them to the scalar fallback loop (no numpy, or ``REPRO_NO_VECTOR=1``).
    Estimators are cached by argument identity, so repeated builds against
    the same Session-memoised specs skip the table pregeneration.
    """
    if not vector_enabled():
        return None
    for entry in _ESTIMATOR_CACHE:
        if (
            entry[0] is pair
            and entry[1] is server
            and entry[2] is dataset
            and entry[3] is profile
        ):
            return entry[4]
    estimator = VectorStageEstimator(pair, server, dataset, profile)
    _ESTIMATOR_CACHE.append((pair, server, dataset, profile, estimator))
    if len(_ESTIMATOR_CACHE) > _ESTIMATOR_CACHE_MAX:
        _ESTIMATOR_CACHE.pop(0)
    return estimator
