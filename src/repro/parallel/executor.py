"""Lowering schedule plans onto the discrete-event simulator.

The :class:`ScheduleExecutor` turns a :class:`~repro.parallel.plan.SchedulePlan`
into a task graph (data loads, teacher forwards, student forwards/backwards,
activation transfers, gradient all-reduces, weight updates, and — for
non-decoupled plans — step barriers), runs it with the
:class:`~repro.sim.engine.SimulationEngine`, and converts the resulting trace
into the quantities the paper reports:

* per-epoch elapsed time (Table II),
* per-step time and breakdowns (Fig. 2),
* per-rank peak memory (Fig. 7).

The DP baseline trains blocks one after another, so it is executed as one
simulation per block and the results are summed; pipeline plans (TR and its
variants) and the LS baseline are executed as a single multi-step simulation
from which the steady-state step time is extracted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.dataset import DatasetSpec
from repro.data.loader import DataLoadModel
from repro.errors import ScheduleError
from repro.hardware.cost_model import CostModel
from repro.hardware.server import ServerSpec
from repro.models.layers import BYTES_PER_ELEMENT
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan, jsonable, plan_from_dict
from repro.sim.engine import SimulationEngine
from repro.sim.events import TaskKind
from repro.sim.metrics import BREAKDOWN_CATEGORIES, compute_breakdown
from repro.sim.resources import collective, device_compute, device_link, host_loader
from repro.sim.trace import Trace

#: Default number of training steps simulated to reach steady state.
DEFAULT_SIMULATED_STEPS = 10
#: Warm-up steps excluded from the steady-state step-time measurement.
WARMUP_STEPS = 2


@dataclass
class ExecutionResult:
    """Measured outcome of executing one plan on the simulated server."""

    plan: SchedulePlan
    epoch_time: float
    step_time: float
    steps_per_epoch: int
    breakdown: Dict[int, Dict[str, float]]
    peak_memory_bytes: Dict[int, float]
    trace: Optional[Trace] = None
    metadata: dict = field(default_factory=dict)

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    def total_breakdown(self) -> Dict[str, float]:
        """Breakdown summed over devices (seconds of device-time per epoch)."""
        totals = {category: 0.0 for category in BREAKDOWN_CATEGORIES}
        for per_device in self.breakdown.values():
            for category, value in per_device.items():
                totals[category] = totals.get(category, 0.0) + value
        return totals

    def max_memory_gb(self) -> float:
        """Largest per-rank allocation in GB (the paper's Fig. 7 'Max.' bar)."""
        if not self.peak_memory_bytes:
            return 0.0
        return max(self.peak_memory_bytes.values()) / 1e9

    def describe(self) -> str:
        return (
            f"{self.strategy}: epoch={self.epoch_time:.2f}s "
            f"step={self.step_time * 1e3:.2f}ms "
            f"max_mem={self.max_memory_gb():.2f}GB"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable summary (the trace is intentionally omitted).

        Carries the full plan and raw peak-memory bytes so
        :meth:`from_dict` can rebuild an equivalent result — this is the
        record shape the persistent experiment store shards hold.
        """
        return {
            "strategy": self.strategy,
            "plan_kind": self.plan.kind,
            "plan": self.plan.to_dict(),
            "batch_size": self.plan.batch_size,
            "num_devices": self.plan.num_devices,
            "epoch_time_s": self.epoch_time,
            "step_time_s": self.step_time,
            "steps_per_epoch": self.steps_per_epoch,
            "breakdown_s": {
                str(device): {name: categories[name] for name in sorted(categories)}
                for device, categories in sorted(self.breakdown.items())
            },
            "peak_memory_bytes": {
                str(device): bytes_
                for device, bytes_ in sorted(self.peak_memory_bytes.items())
            },
            "peak_memory_gb": {
                str(device): bytes_ / 1e9
                for device, bytes_ in sorted(self.peak_memory_bytes.items())
            },
            "max_memory_gb": self.max_memory_gb(),
            "metadata": jsonable(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionResult":
        """Rebuild a result from :meth:`to_dict` (store hydration path).

        The trace is gone (it was never serialised), but every quantity the
        analysis layer consumes — epoch/step time, breakdowns, peak memory,
        the validated plan — round-trips exactly.
        """
        return cls(
            plan=plan_from_dict(payload["plan"]),
            epoch_time=payload["epoch_time_s"],
            step_time=payload["step_time_s"],
            steps_per_epoch=payload["steps_per_epoch"],
            breakdown={
                int(device): dict(categories)
                for device, categories in payload["breakdown_s"].items()
            },
            peak_memory_bytes={
                int(device): bytes_
                for device, bytes_ in payload["peak_memory_bytes"].items()
            },
            trace=None,
            metadata=payload.get("metadata", {}),
        )


class ScheduleExecutor:
    """Executes schedule plans for one (pair, server, dataset) combination."""

    def __init__(
        self,
        pair: DistillationPair,
        server: ServerSpec,
        dataset: DatasetSpec,
        simulated_steps: int = DEFAULT_SIMULATED_STEPS,
    ) -> None:
        if simulated_steps < WARMUP_STEPS + 2:
            raise ScheduleError(
                f"simulated_steps must be at least {WARMUP_STEPS + 2}, got {simulated_steps}"
            )
        self.pair = pair
        self.server = server
        self.dataset = dataset
        self.simulated_steps = simulated_steps
        self.cost_model: CostModel = server.cost_model()
        self.loader = DataLoadModel(dataset=dataset, host=server.host)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(self, plan: SchedulePlan) -> ExecutionResult:
        """Execute a plan and return its measured result."""
        if plan.num_blocks != self.pair.num_blocks:
            raise ScheduleError(
                f"plan covers {plan.num_blocks} blocks but the pair has {self.pair.num_blocks}"
            )
        if plan.num_devices != self.server.num_devices:
            raise ScheduleError(
                f"plan targets {plan.num_devices} devices but the server has "
                f"{self.server.num_devices}"
            )
        if plan.kind == "pipeline":
            return self._execute_pipeline(plan)
        if plan.kind == "layerwise":
            return self._execute_layerwise(plan)
        return self._execute_data_parallel(plan)

    # ------------------------------------------------------------------ #
    # Shared duration helpers
    # ------------------------------------------------------------------ #
    def _teacher_time(self, block_ids, batch: int) -> float:
        return sum(
            self.cost_model.block_forward_time(self.pair.teacher.block(block_id), batch)
            for block_id in block_ids
        )

    def _student_forward_time(self, block_ids, batch: int) -> float:
        rounds = self.pair.student_rounds_per_step
        return rounds * sum(
            self.cost_model.block_forward_time(self.pair.student.block(block_id), batch)
            for block_id in block_ids
        )

    def _student_backward_time(self, block_ids, batch: int) -> float:
        rounds = self.pair.student_rounds_per_step
        return rounds * sum(
            self.cost_model.block_backward_time(self.pair.student.block(block_id), batch)
            for block_id in block_ids
        )

    def _update_time(self, block_ids) -> float:
        return sum(
            self.cost_model.weight_update_time(self.pair.student.block(block_id))
            for block_id in block_ids
        )

    def _grad_bytes(self, block_ids) -> float:
        return float(
            sum(self.pair.student.block(block_id).params for block_id in block_ids)
            * BYTES_PER_ELEMENT
        )

    def _boundary_bytes(self, block_id: int, batch: int) -> float:
        return float(self.pair.teacher.block(block_id).output_bytes_per_sample * batch)

    # ------------------------------------------------------------------ #
    # Pipeline plans (TR, TR+DPU, TR+DPU+AHD, TR+IR)
    # ------------------------------------------------------------------ #
    def _execute_pipeline(self, plan: SchedulePlan) -> ExecutionResult:
        engine = SimulationEngine()
        stages = plan.stages
        steps = self.simulated_steps

        # Per-stage durations (identical for every replica in a stage).
        durations = {}
        for stage in stages:
            micro_batch = stage.per_device_batch(plan.batch_size)
            durations[stage.stage_id] = {
                "micro_batch": micro_batch,
                "teacher": self._teacher_time(stage.block_ids, micro_batch),
                "student_fwd": self._student_forward_time(stage.block_ids, micro_batch),
                "student_bwd": self._student_backward_time(stage.block_ids, micro_batch),
                "update": self._update_time(stage.block_ids),
                "allreduce": (
                    self.server.interconnect.allreduce_time(
                        self._grad_bytes(stage.block_ids), stage.num_devices
                    )
                    if stage.num_devices > 1
                    else 0.0
                ),
                "load": self.loader.batch_load_time(micro_batch, concurrent_loaders=1),
                "recv": (
                    self.server.interconnect.transfer_time(
                        self._boundary_bytes(stage.block_ids[0] - 1, micro_batch)
                    )
                    if stage.block_ids[0] > 0
                    else 0.0
                ),
            }

        teacher_task_ids: Dict[Tuple[int, int], List[int]] = {}
        previous_step_updates: List[int] = []
        last_compute_of_device: Dict[int, int] = {}

        for step in range(steps):
            step_updates: List[int] = []
            for stage in stages:
                timing = durations[stage.stage_id]
                backward_ids: List[int] = []
                pre_update_ids: Dict[int, int] = {}
                for replica_index, device in enumerate(stage.device_ids):
                    barrier_deps = tuple(previous_step_updates) if not plan.decoupled_update else ()

                    # --- input: data load (stage 0) or activation receive --- #
                    if stage.stage_id == 0:
                        input_dep = engine.add_task(
                            name=f"load[s{step},d{device}]",
                            kind=TaskKind.DATA_LOAD,
                            resource=host_loader(),
                            duration=timing["load"],
                            deps=(),
                            step=step,
                            device=device,
                        )
                    else:
                        previous_stage = stages[stage.stage_id - 1]
                        source_device = previous_stage.device_ids[
                            replica_index % previous_stage.num_devices
                        ]
                        producer_ids = teacher_task_ids[(step, stage.stage_id - 1)]
                        input_dep = engine.add_task(
                            name=f"recv[s{step},d{device}]",
                            kind=TaskKind.RECV,
                            resource=device_link(source_device, device),
                            duration=timing["recv"],
                            deps=tuple(producer_ids),
                            step=step,
                            device=device,
                        )

                    # --- teacher forward --- #
                    teacher_id = engine.add_task(
                        name=f"T[s{step},d{device}]",
                        kind=TaskKind.TEACHER_FORWARD,
                        resource=device_compute(device),
                        duration=timing["teacher"],
                        deps=(input_dep,) + barrier_deps,
                        step=step,
                        device=device,
                        block=stage.block_ids[0],
                    )
                    teacher_task_ids.setdefault((step, stage.stage_id), []).append(teacher_id)

                    # --- student forward / backward --- #
                    student_fwd = engine.add_task(
                        name=f"Sf[s{step},d{device}]",
                        kind=TaskKind.STUDENT_FORWARD,
                        resource=device_compute(device),
                        duration=timing["student_fwd"],
                        deps=(teacher_id,),
                        step=step,
                        device=device,
                        block=stage.block_ids[0],
                    )
                    student_bwd = engine.add_task(
                        name=f"Sb[s{step},d{device}]",
                        kind=TaskKind.STUDENT_BACKWARD,
                        resource=device_compute(device),
                        duration=timing["student_bwd"],
                        deps=(student_fwd,),
                        step=step,
                        device=device,
                        block=stage.block_ids[0],
                    )
                    backward_ids.append(student_bwd)
                    pre_update_ids[device] = student_bwd
                    last_compute_of_device[device] = student_bwd

                # --- gradient sharing within a replicated stage --- #
                allreduce_id: Optional[int] = None
                if stage.num_devices > 1 and timing["allreduce"] > 0.0:
                    # The collective runs on its own (NCCL) stream and largely
                    # overlaps with compute, so it is not attributed to any
                    # device's busy-time breakdown (device=-1).
                    allreduce_id = engine.add_task(
                        name=f"allreduce[s{step},stage{stage.stage_id}]",
                        kind=TaskKind.ALLREDUCE,
                        resource=collective(f"stage{stage.stage_id}"),
                        duration=timing["allreduce"],
                        deps=tuple(backward_ids),
                        step=step,
                        device=-1,
                    )

                # --- weight updates --- #
                for device in stage.device_ids:
                    update_deps = [pre_update_ids[device]]
                    if allreduce_id is not None:
                        update_deps.append(allreduce_id)
                    update_id = engine.add_task(
                        name=f"U[s{step},d{device}]",
                        kind=TaskKind.WEIGHT_UPDATE,
                        resource=device_compute(device),
                        duration=timing["update"],
                        deps=tuple(update_deps),
                        step=step,
                        device=device,
                        block=stage.block_ids[0],
                    )
                    step_updates.append(update_id)
                    last_compute_of_device[device] = update_id
            previous_step_updates = step_updates

        trace = engine.run()
        step_time = trace.steady_state_step_time(skip_first=WARMUP_STEPS)
        steps_per_epoch = self.dataset.steps_per_epoch(plan.batch_size)
        epoch_time = step_time * steps_per_epoch
        breakdown = self._scaled_breakdown(trace, epoch_time, steps_per_epoch, steps)
        memory = self._pipeline_memory(plan)
        return ExecutionResult(
            plan=plan,
            epoch_time=epoch_time,
            step_time=step_time,
            steps_per_epoch=steps_per_epoch,
            breakdown=breakdown,
            peak_memory_bytes=memory,
            trace=trace,
            metadata={"simulated_steps": steps},
        )

    # ------------------------------------------------------------------ #
    # Layerwise plans (LS)
    # ------------------------------------------------------------------ #
    def _execute_layerwise(self, plan: SchedulePlan) -> ExecutionResult:
        assert plan.device_blocks is not None
        engine = SimulationEngine()
        steps = self.simulated_steps
        batch = plan.batch_size
        load_time = self.loader.batch_load_time(batch, concurrent_loaders=1)

        for step in range(steps):
            for device, block_ids in sorted(plan.device_blocks.items()):
                max_block = max(block_ids)
                prefix_blocks = tuple(range(max_block + 1))
                load_id = engine.add_task(
                    name=f"load[s{step},d{device}]",
                    kind=TaskKind.DATA_LOAD,
                    resource=host_loader(),
                    duration=load_time,
                    deps=(),
                    step=step,
                    device=device,
                )
                teacher_id = engine.add_task(
                    name=f"T0..{max_block}[s{step},d{device}]",
                    kind=TaskKind.TEACHER_FORWARD,
                    resource=device_compute(device),
                    duration=self._teacher_time(prefix_blocks, batch),
                    deps=(load_id,),
                    step=step,
                    device=device,
                    block=max_block,
                )
                previous = teacher_id
                for block_id in sorted(block_ids):
                    student_fwd = engine.add_task(
                        name=f"Sf{block_id}[s{step},d{device}]",
                        kind=TaskKind.STUDENT_FORWARD,
                        resource=device_compute(device),
                        duration=self._student_forward_time((block_id,), batch),
                        deps=(previous,),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    student_bwd = engine.add_task(
                        name=f"Sb{block_id}[s{step},d{device}]",
                        kind=TaskKind.STUDENT_BACKWARD,
                        resource=device_compute(device),
                        duration=self._student_backward_time((block_id,), batch),
                        deps=(student_fwd,),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    update_id = engine.add_task(
                        name=f"U{block_id}[s{step},d{device}]",
                        kind=TaskKind.WEIGHT_UPDATE,
                        resource=device_compute(device),
                        duration=self._update_time((block_id,)),
                        deps=(student_bwd,),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    previous = update_id

        trace = engine.run()
        step_time = trace.steady_state_step_time(skip_first=WARMUP_STEPS)
        steps_per_epoch = self.dataset.steps_per_epoch(batch)
        epoch_time = step_time * steps_per_epoch
        breakdown = self._scaled_breakdown(trace, epoch_time, steps_per_epoch, steps)
        memory = self._layerwise_memory(plan)
        return ExecutionResult(
            plan=plan,
            epoch_time=epoch_time,
            step_time=step_time,
            steps_per_epoch=steps_per_epoch,
            breakdown=breakdown,
            peak_memory_bytes=memory,
            trace=trace,
            metadata={"simulated_steps": steps},
        )

    # ------------------------------------------------------------------ #
    # Data-parallel plans (DP)
    # ------------------------------------------------------------------ #
    def _execute_data_parallel(self, plan: SchedulePlan) -> ExecutionResult:
        steps = max(4, WARMUP_STEPS + 2)
        micro_batch = max(1, plan.batch_size // plan.num_devices)
        steps_per_epoch = self.dataset.steps_per_epoch(plan.batch_size)
        load_time = self.loader.batch_load_time(micro_batch, concurrent_loaders=1)

        epoch_time = 0.0
        per_block_step_times: List[float] = []
        accumulated: Dict[int, Dict[str, float]] = {
            device: {category: 0.0 for category in BREAKDOWN_CATEGORIES}
            for device in range(plan.num_devices)
        }
        last_trace: Optional[Trace] = None

        for block_id in range(plan.num_blocks):
            engine = SimulationEngine()
            prefix_blocks = tuple(range(block_id + 1))
            teacher_time = self._teacher_time(prefix_blocks, micro_batch)
            student_fwd_time = self._student_forward_time((block_id,), micro_batch)
            student_bwd_time = self._student_backward_time((block_id,), micro_batch)
            update_time = self._update_time((block_id,))
            allreduce_time = self.server.interconnect.allreduce_time(
                self._grad_bytes((block_id,)), plan.num_devices
            )

            previous_step_updates: List[int] = []
            for step in range(steps):
                backward_ids: List[int] = []
                per_device_bwd: Dict[int, int] = {}
                for device in range(plan.num_devices):
                    load_id = engine.add_task(
                        name=f"load[b{block_id},s{step},d{device}]",
                        kind=TaskKind.DATA_LOAD,
                        resource=host_loader(),
                        duration=load_time,
                        deps=(),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    teacher_id = engine.add_task(
                        name=f"T0..{block_id}[s{step},d{device}]",
                        kind=TaskKind.TEACHER_FORWARD,
                        resource=device_compute(device),
                        duration=teacher_time,
                        deps=(load_id,) + tuple(previous_step_updates),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    student_fwd = engine.add_task(
                        name=f"Sf{block_id}[s{step},d{device}]",
                        kind=TaskKind.STUDENT_FORWARD,
                        resource=device_compute(device),
                        duration=student_fwd_time,
                        deps=(teacher_id,),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    student_bwd = engine.add_task(
                        name=f"Sb{block_id}[s{step},d{device}]",
                        kind=TaskKind.STUDENT_BACKWARD,
                        resource=device_compute(device),
                        duration=student_bwd_time,
                        deps=(student_fwd,),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    backward_ids.append(student_bwd)
                    per_device_bwd[device] = student_bwd

                allreduce_id = engine.add_task(
                    name=f"allreduce[b{block_id},s{step}]",
                    kind=TaskKind.ALLREDUCE,
                    resource=collective("dp"),
                    duration=allreduce_time,
                    deps=tuple(backward_ids),
                    step=step,
                    device=-1,
                    block=block_id,
                )
                step_updates: List[int] = []
                for device in range(plan.num_devices):
                    update_id = engine.add_task(
                        name=f"U{block_id}[s{step},d{device}]",
                        kind=TaskKind.WEIGHT_UPDATE,
                        resource=device_compute(device),
                        duration=update_time,
                        deps=(per_device_bwd[device], allreduce_id),
                        step=step,
                        device=device,
                        block=block_id,
                    )
                    step_updates.append(update_id)
                previous_step_updates = step_updates

            trace = engine.run()
            last_trace = trace
            block_step_time = trace.steady_state_step_time(skip_first=WARMUP_STEPS)
            per_block_step_times.append(block_step_time)
            epoch_time += block_step_time * steps_per_epoch
            block_breakdown = self._scaled_breakdown(
                trace, block_step_time * steps_per_epoch, steps_per_epoch, steps
            )
            for device in range(plan.num_devices):
                for category in BREAKDOWN_CATEGORIES:
                    accumulated[device][category] += block_breakdown[device][category]

        total_step_time = sum(per_block_step_times)
        memory = self._data_parallel_memory(plan)
        return ExecutionResult(
            plan=plan,
            epoch_time=epoch_time,
            step_time=total_step_time,
            steps_per_epoch=steps_per_epoch,
            breakdown=accumulated,
            peak_memory_bytes=memory,
            trace=last_trace,
            metadata={
                "simulated_steps_per_block": steps,
                "per_block_step_times": tuple(per_block_step_times),
            },
        )

    # ------------------------------------------------------------------ #
    # Breakdown and memory helpers
    # ------------------------------------------------------------------ #
    def _scaled_breakdown(
        self,
        trace: Trace,
        epoch_time: float,
        steps_per_epoch: int,
        simulated_steps: int,
    ) -> Dict[int, Dict[str, float]]:
        """Scale a simulated-window breakdown to one epoch."""
        raw = compute_breakdown(trace, self.server.num_devices)
        scale = steps_per_epoch / float(simulated_steps)
        scaled: Dict[int, Dict[str, float]] = {}
        for device, categories in raw.items():
            scaled[device] = {}
            busy = 0.0
            for category in ("teacher_exec", "student_exec", "comm", "data_load"):
                scaled[device][category] = categories[category] * scale
                if category != "data_load":
                    busy += scaled[device][category]
            data_wait = min(scaled[device]["data_load"], max(0.0, epoch_time - busy))
            scaled[device]["data_load"] = data_wait
            scaled[device]["idle"] = max(0.0, epoch_time - busy - data_wait)
        return scaled

    def _pipeline_memory(self, plan: SchedulePlan) -> Dict[int, float]:
        memory_model = self.server.memory_model
        result: Dict[int, float] = {}
        for stage in plan.stages:
            micro_batch = stage.per_device_batch(plan.batch_size)
            teacher_blocks = [self.pair.teacher.block(block_id) for block_id in stage.block_ids]
            student_blocks = [self.pair.student.block(block_id) for block_id in stage.block_ids]
            for device in stage.device_ids:
                result[device] = memory_model.device_peak_bytes(
                    teacher_blocks=teacher_blocks,
                    student_blocks=student_blocks,
                    batch=micro_batch,
                )
        for device in range(plan.num_devices):
            result.setdefault(device, memory_model.framework_baseline_bytes)
        return result

    def _layerwise_memory(self, plan: SchedulePlan) -> Dict[int, float]:
        assert plan.device_blocks is not None
        memory_model = self.server.memory_model
        result: Dict[int, float] = {}
        for device, block_ids in plan.device_blocks.items():
            max_block = max(block_ids)
            executed_teacher = [self.pair.teacher.block(i) for i in range(max_block + 1)]
            student_blocks = [self.pair.student.block(block_id) for block_id in block_ids]
            result[device] = memory_model.device_peak_bytes(
                teacher_blocks=executed_teacher,
                student_blocks=student_blocks,
                batch=plan.batch_size,
                resident_teacher_blocks=executed_teacher,
            )
        for device in range(plan.num_devices):
            result.setdefault(device, memory_model.framework_baseline_bytes)
        return result

    def _data_parallel_memory(self, plan: SchedulePlan) -> Dict[int, float]:
        memory_model = self.server.memory_model
        micro_batch = max(1, plan.batch_size // plan.num_devices)
        peak = 0.0
        for block_id in range(plan.num_blocks):
            executed_teacher = [self.pair.teacher.block(i) for i in range(block_id + 1)]
            student_blocks = [self.pair.student.block(block_id)]
            peak = max(
                peak,
                memory_model.device_peak_bytes(
                    teacher_blocks=executed_teacher,
                    student_blocks=student_blocks,
                    batch=micro_batch,
                    resident_teacher_blocks=executed_teacher,
                ),
            )
        return {device: peak for device in range(plan.num_devices)}
