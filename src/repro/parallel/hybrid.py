"""Automatic hybrid distribution (paper §IV-C, Fig. 3d).

AHD adds a second degree of freedom to the block-to-device assignment: a
stage (a contiguous group of blocks) may be replicated over several devices
that split the batch among themselves, trading some per-device utilization
for balance.  The search space is therefore:

    for every number of stages k = 1 .. N
      for every contiguous partition of the B blocks into k groups
        for every composition of the N devices into k positive group sizes

Every candidate is scored with the profiled per-(block, batch) times — the
steady-state throughput of a decoupled pipeline is the maximum stage time —
and the minimum-makespan candidate wins.  The paper argues this exhaustive
search is cheap because B and N are both around ten; :func:`search_space_size`
and the ablation benchmark quantify that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.data.dataset import DatasetSpec
from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.estimator import StageTimeEstimator, stage_assignments_from_partition
from repro.parallel.estimator_vec import (
    groups_from_sizes,
    maybe_vector_estimator,
    partition_grid,
)
from repro.parallel.partition import (
    compositions,
    contiguous_partitions,
    count_contiguous_partitions,
)
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable


@dataclass(frozen=True)
class AHDCandidate:
    """One evaluated point of the AHD search."""

    plan: SchedulePlan
    step_time: float


@dataclass
class AHDSearchResult:
    """Best plan plus the full ranked candidate list (for analysis benches)."""

    best: AHDCandidate
    candidates: Tuple[AHDCandidate, ...]

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


def search_space_size(num_blocks: int, num_devices: int) -> int:
    """Number of (partition, device composition) candidates AHD evaluates."""
    from math import comb

    total = 0
    for num_stages in range(1, min(num_blocks, num_devices) + 1):
        partitions = count_contiguous_partitions(num_blocks, num_stages)
        device_splits = comb(num_devices - 1, num_stages - 1)
        total += partitions * device_splits
    return total


def search_ahd(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    profile: ProfileTable,
    dataset: DatasetSpec,
    keep_candidates: bool = False,
) -> AHDSearchResult:
    """Exhaustively search hybrid block/batch distributions."""
    num_devices = server.num_devices
    num_blocks = pair.num_blocks
    max_stages = min(num_blocks, num_devices)

    def make_plan(partition, device_counts) -> SchedulePlan:
        stages = stage_assignments_from_partition(partition, device_counts)
        return SchedulePlan(
            kind="pipeline",
            strategy="TR+DPU+AHD",
            batch_size=batch_size,
            num_devices=num_devices,
            num_blocks=num_blocks,
            decoupled_update=True,
            stages=stages,
        )

    best: Optional[AHDCandidate] = None
    kept: List[AHDCandidate] = []
    vector = maybe_vector_estimator(pair, server, dataset, profile)
    if vector is not None:
        # One array pass scores the whole (stage-count x partition x
        # device-composition) grid; only the winner (and the kept
        # candidates, when requested) pays plan construction.  The grid
        # rows replicate the scalar triple-loop enumeration order, so
        # first-minimum argmin picks the same winner as the scalar
        # first-strict-improvement loop, at the same float.
        import numpy as np

        best_time = float("inf")
        best_key: Optional[Tuple[int, int, int]] = None
        kept_offsets = {}
        for segment, times in vector.score_search_space(num_devices, batch_size):
            num_stages, num_comps = segment.num_stages, segment.num_compositions
            if keep_candidates:
                kept_offsets[num_stages] = len(kept)
                _, part_sizes = partition_grid(num_blocks, num_stages)
                comps = list(compositions(num_devices, num_stages))
                for index, step_time in enumerate(times):
                    plan = make_plan(
                        groups_from_sizes(part_sizes[index // num_comps]),
                        comps[index % num_comps],
                    )
                    kept.append(AHDCandidate(plan=plan, step_time=float(step_time)))
            local_best = int(np.argmin(times))
            if float(times[local_best]) < best_time:
                best_time = float(times[local_best])
                best_key = (num_stages, local_best, num_comps)
        if best_key is not None:
            num_stages, flat_index, num_comps = best_key
            if keep_candidates:
                best = kept[kept_offsets[num_stages] + flat_index]
            else:
                _, part_sizes = partition_grid(num_blocks, num_stages)
                comps = list(compositions(num_devices, num_stages))
                plan = make_plan(
                    groups_from_sizes(part_sizes[flat_index // num_comps]),
                    comps[flat_index % num_comps],
                )
                best = AHDCandidate(plan=plan, step_time=best_time)
    else:
        estimator = StageTimeEstimator(
            pair=pair, server=server, dataset=dataset, profile=profile
        )
        for num_stages in range(1, max_stages + 1):
            for partition in contiguous_partitions(num_blocks, num_stages):
                for device_counts in compositions(num_devices, num_stages):
                    plan = make_plan(partition, device_counts)
                    step_time = estimator.plan_step_time(plan)
                    candidate = AHDCandidate(plan=plan, step_time=step_time)
                    if keep_candidates:
                        kept.append(candidate)
                    if best is None or step_time < best.step_time:
                        best = candidate
    if best is None:
        raise ScheduleError("AHD search produced no candidates")
    best.plan.metadata["estimated_step_time"] = best.step_time
    best.plan.metadata["search_space_size"] = search_space_size(num_blocks, num_devices)
    best.plan.metadata["profiling_cost_s"] = profile.profiling_cost_s
    kept.sort(key=lambda candidate: candidate.step_time)
    return AHDSearchResult(best=best, candidates=tuple(kept))


def build_ahd_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    profile: ProfileTable,
    dataset: DatasetSpec,
) -> SchedulePlan:
    """Build the full Pipe-BD plan (TR + DPU + AHD)."""
    return search_ahd(pair, server, batch_size, profile, dataset).best.plan
