"""Internal relaying (paper §VII-A, the TR+IR ablation point).

With internal relaying every device trains *all* blocks every step: the batch
is split across devices (data parallelism), each device runs the whole
teacher once, keeps the intermediate activations in its own memory, and uses
them as the inputs of all student blocks.  Gradient sharing is required for
every student block.  This removes the teacher redundancy, the extra data
loading and the load imbalance, but brings back the small per-device batch —
the paper notes it is exactly the special case of TR+DPU+AHD where every
block is split along the batch dimension only.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.plan import SchedulePlan, StageAssignment


def build_ir_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
) -> SchedulePlan:
    """Build the internal-relaying plan: one stage, all blocks, all devices."""
    if batch_size < server.num_devices:
        raise ScheduleError(
            f"batch size {batch_size} is smaller than the device count "
            f"{server.num_devices}; internal relaying cannot shard it"
        )
    stage = StageAssignment(
        stage_id=0,
        block_ids=tuple(range(pair.num_blocks)),
        device_ids=tuple(range(server.num_devices)),
    )
    return SchedulePlan(
        kind="pipeline",
        strategy="TR+IR",
        batch_size=batch_size,
        num_devices=server.num_devices,
        num_blocks=pair.num_blocks,
        decoupled_update=True,
        stages=(stage,),
        metadata={
            "per_device_batch": -(-batch_size // server.num_devices),
            "description": "all blocks on every device, batch split, activations kept in memory",
        },
    )
