"""Contiguous partition enumeration used by TR and AHD.

The paper notes that with ``B`` blocks and ``N`` devices the naive contiguous
distribution has only C(B-1, N-1) choices (§IV-C); automatic hybrid
distribution enlarges that space by also splitting blocks along the batch
dimension.  Both searches need the same primitive: enumerating compositions
(ordered partitions of an integer) and contiguous block groupings.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import ScheduleError


def compositions(total: int, parts: int, minimum: int = 1) -> Iterator[Tuple[int, ...]]:
    """Yield ordered tuples of ``parts`` integers >= ``minimum`` summing to ``total``.

    ``compositions(4, 2)`` yields ``(1, 3), (2, 2), (3, 1)``.
    """
    if parts <= 0:
        raise ScheduleError("parts must be positive")
    if minimum < 0:
        raise ScheduleError("minimum must be non-negative")
    if total < parts * minimum:
        return

    def _recurse(remaining: int, slots: int, prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if slots == 1:
            if remaining >= minimum:
                yield tuple(prefix + [remaining])
            return
        # Leave at least `minimum` for each of the remaining slots.
        for value in range(minimum, remaining - minimum * (slots - 1) + 1):
            yield from _recurse(remaining - value, slots - 1, prefix + [value])

    yield from _recurse(total, parts, [])


def contiguous_partitions(num_blocks: int, num_groups: int) -> Iterator[Tuple[Tuple[int, ...], ...]]:
    """Yield all ways to split blocks ``0..num_blocks-1`` into contiguous groups.

    Each yielded value is a tuple of ``num_groups`` tuples of block ids, in
    order.  There are C(num_blocks-1, num_groups-1) of them.
    """
    if num_blocks <= 0:
        raise ScheduleError("num_blocks must be positive")
    if num_groups <= 0:
        raise ScheduleError("num_groups must be positive")
    if num_groups > num_blocks:
        return
    for sizes in compositions(num_blocks, num_groups):
        groups: List[Tuple[int, ...]] = []
        start = 0
        for size in sizes:
            groups.append(tuple(range(start, start + size)))
            start += size
        yield tuple(groups)


def count_contiguous_partitions(num_blocks: int, num_groups: int) -> int:
    """C(num_blocks - 1, num_groups - 1), the size of the naive search space."""
    from math import comb

    if num_groups > num_blocks or num_groups <= 0:
        return 0
    return comb(num_blocks - 1, num_groups - 1)


def greedy_balanced_partition(
    costs: Tuple[float, ...], num_groups: int
) -> Tuple[Tuple[int, ...], ...]:
    """Best contiguous partition of ``costs`` minimising the maximum group cost.

    Exhaustive over compositions (the search space is tiny for the paper's
    B ~ 6-10, N <= 8), so the result is optimal for contiguous groups.
    """
    if num_groups > len(costs):
        raise ScheduleError(
            f"cannot split {len(costs)} blocks into {num_groups} non-empty groups"
        )
    best_partition: Tuple[Tuple[int, ...], ...] | None = None
    best_cost = float("inf")
    for partition in contiguous_partitions(len(costs), num_groups):
        group_costs = [sum(costs[block] for block in group) for group in partition]
        worst = max(group_costs)
        if worst < best_cost:
            best_cost = worst
            best_partition = partition
    assert best_partition is not None
    return best_partition


def lpt_bin_packing(costs: Tuple[float, ...], num_bins: int) -> Tuple[Tuple[int, ...], ...]:
    """Longest-processing-time-first assignment of items to bins.

    Used by the LS baseline, which "adopts [a] bin packing algorithm to
    balance the workload" (§II-B).  Items (block ids) are sorted by
    decreasing cost and greedily placed on the least-loaded bin.  Returns a
    tuple of per-bin block-id tuples (some bins may be empty).
    """
    if num_bins <= 0:
        raise ScheduleError("num_bins must be positive")
    order = sorted(range(len(costs)), key=lambda index: costs[index], reverse=True)
    bins: List[List[int]] = [[] for _ in range(num_bins)]
    loads = [0.0] * num_bins
    for item in order:
        target = min(range(num_bins), key=lambda bin_index: loads[bin_index])
        bins[target].append(item)
        loads[target] += costs[item]
    return tuple(tuple(sorted(bin_items)) for bin_items in bins)
