"""Schedule plan representation shared by every strategy.

A plan describes *where* each block runs and *how* the batch is split, not
*when* things happen — the executor and the simulator derive the timing.
Three plan kinds cover all six strategies:

* ``"pipeline"`` — blocks are partitioned into contiguous stages, each stage
  owned by a group of devices that split the batch among themselves (TR,
  TR+DPU, TR+DPU+AHD, and IR as the single-stage degenerate case).
* ``"data_parallel"`` — the DP baseline: every device trains every block
  sequentially with the batch split across devices.
* ``"layerwise"`` — the LS baseline: blocks are bin-packed onto devices; each
  device trains its blocks with the full batch and no communication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ScheduleError

PLAN_KINDS = ("pipeline", "data_parallel", "layerwise")


@dataclass(frozen=True)
class StageAssignment:
    """One pipeline stage: a contiguous run of blocks on a device group."""

    stage_id: int
    block_ids: Tuple[int, ...]
    device_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.block_ids:
            raise ScheduleError(f"stage {self.stage_id} has no blocks")
        if not self.device_ids:
            raise ScheduleError(f"stage {self.stage_id} has no devices")
        if list(self.block_ids) != list(range(self.block_ids[0], self.block_ids[-1] + 1)):
            raise ScheduleError(
                f"stage {self.stage_id} blocks {self.block_ids} are not contiguous"
            )
        if len(set(self.device_ids)) != len(self.device_ids):
            raise ScheduleError(f"stage {self.stage_id} has duplicate devices")

    @property
    def num_devices(self) -> int:
        return len(self.device_ids)

    @property
    def first_block(self) -> int:
        return self.block_ids[0]

    @property
    def last_block(self) -> int:
        return self.block_ids[-1]

    def per_device_batch(self, global_batch: int) -> int:
        """Per-device micro-batch when the stage splits the global batch."""
        return max(1, math.ceil(global_batch / self.num_devices))

    def describe(self) -> str:
        blocks = ",".join(str(b) for b in self.block_ids)
        devices = ",".join(str(d) for d in self.device_ids)
        return f"stage{self.stage_id}[blocks {blocks} -> devices {devices}]"


@dataclass(frozen=True)
class SchedulePlan:
    """A complete scheduling decision for one training run."""

    kind: str
    strategy: str
    batch_size: int
    num_devices: int
    num_blocks: int
    decoupled_update: bool = False
    stages: Tuple[StageAssignment, ...] = ()
    device_blocks: Optional[Dict[int, Tuple[int, ...]]] = None
    metadata: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ScheduleError(f"unknown plan kind {self.kind!r}")
        if self.batch_size <= 0:
            raise ScheduleError("batch_size must be positive")
        if self.num_devices <= 0 or self.num_blocks <= 0:
            raise ScheduleError("num_devices and num_blocks must be positive")
        if self.kind == "pipeline":
            self._validate_pipeline()
        elif self.kind == "layerwise":
            self._validate_layerwise()
        else:
            if self.stages or self.device_blocks:
                raise ScheduleError("data_parallel plans carry no stages or device_blocks")

    def _validate_pipeline(self) -> None:
        if not self.stages:
            raise ScheduleError("pipeline plan requires at least one stage")
        covered_blocks = [block for stage in self.stages for block in stage.block_ids]
        if sorted(covered_blocks) != list(range(self.num_blocks)):
            raise ScheduleError(
                f"pipeline stages cover blocks {sorted(covered_blocks)}, expected "
                f"0..{self.num_blocks - 1} exactly once"
            )
        expected_start = 0
        for stage in self.stages:
            if stage.first_block != expected_start:
                raise ScheduleError(
                    f"stage {stage.stage_id} starts at block {stage.first_block}, "
                    f"expected {expected_start} (stages must be in block order)"
                )
            expected_start = stage.last_block + 1
        used_devices = [device for stage in self.stages for device in stage.device_ids]
        if len(set(used_devices)) != len(used_devices):
            raise ScheduleError("a device appears in more than one pipeline stage")
        for device in used_devices:
            if device < 0 or device >= self.num_devices:
                raise ScheduleError(f"device id {device} out of range")

    def _validate_layerwise(self) -> None:
        if not self.device_blocks:
            raise ScheduleError("layerwise plan requires device_blocks")
        covered = [block for blocks in self.device_blocks.values() for block in blocks]
        if sorted(covered) != list(range(self.num_blocks)):
            raise ScheduleError(
                f"layerwise assignment covers blocks {sorted(covered)}, expected "
                f"0..{self.num_blocks - 1} exactly once"
            )
        for device in self.device_blocks:
            if device < 0 or device >= self.num_devices:
                raise ScheduleError(f"device id {device} out of range")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_of_block(self, block_id: int) -> StageAssignment:
        """Pipeline stage containing a block."""
        self._require_kind("pipeline")
        for stage in self.stages:
            if block_id in stage.block_ids:
                return stage
        raise ScheduleError(f"block {block_id} not covered by any stage")

    def stage_of_device(self, device_id: int) -> Optional[StageAssignment]:
        """Pipeline stage a device participates in, or None if the device is idle."""
        self._require_kind("pipeline")
        for stage in self.stages:
            if device_id in stage.device_ids:
                return stage
        return None

    def active_devices(self) -> Tuple[int, ...]:
        """Devices that actually do work under this plan."""
        if self.kind == "pipeline":
            return tuple(device for stage in self.stages for device in stage.device_ids)
        if self.kind == "layerwise":
            assert self.device_blocks is not None
            return tuple(sorted(self.device_blocks))
        return tuple(range(self.num_devices))

    def per_device_batch(self) -> Dict[int, int]:
        """Per-device batch size for every active device."""
        result: Dict[int, int] = {}
        if self.kind == "pipeline":
            for stage in self.stages:
                micro_batch = stage.per_device_batch(self.batch_size)
                for device in stage.device_ids:
                    result[device] = micro_batch
        elif self.kind == "layerwise":
            assert self.device_blocks is not None
            for device in self.device_blocks:
                result[device] = self.batch_size
        else:
            micro_batch = max(1, math.ceil(self.batch_size / self.num_devices))
            for device in range(self.num_devices):
                result[device] = micro_batch
        return result

    def describe(self) -> str:
        """Multi-line, human-readable description of the plan."""
        lines = [
            f"{self.strategy} ({self.kind}), batch={self.batch_size}, "
            f"devices={self.num_devices}, blocks={self.num_blocks}, "
            f"decoupled_update={self.decoupled_update}"
        ]
        if self.kind == "pipeline":
            lines.extend("  " + stage.describe() for stage in self.stages)
        elif self.kind == "layerwise":
            assert self.device_blocks is not None
            for device in sorted(self.device_blocks):
                blocks = ",".join(str(b) for b in self.device_blocks[device])
                lines.append(f"  device {device}: blocks {blocks} (full batch)")
        else:
            lines.append(
                f"  all devices train every block sequentially with batch "
                f"{self.batch_size}//{self.num_devices}"
            )
        return "\n".join(lines)

    def _require_kind(self, kind: str) -> None:
        if self.kind != kind:
            raise ScheduleError(f"operation requires a {kind!r} plan, this is {self.kind!r}")

    # ------------------------------------------------------------------ #
    # Serialisation (persistent experiment store, benchmark artifacts)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable view; ``plan_from_dict`` round-trips it."""
        return {
            "kind": self.kind,
            "strategy": self.strategy,
            "batch_size": self.batch_size,
            "num_devices": self.num_devices,
            "num_blocks": self.num_blocks,
            "decoupled_update": self.decoupled_update,
            "stages": [
                {
                    "stage_id": stage.stage_id,
                    "block_ids": list(stage.block_ids),
                    "device_ids": list(stage.device_ids),
                }
                for stage in self.stages
            ],
            "device_blocks": (
                {str(device): list(blocks) for device, blocks in self.device_blocks.items()}
                if self.device_blocks is not None
                else None
            ),
            "metadata": jsonable(self.metadata),
        }


def jsonable(value):
    """Recursively convert tuples to lists (keys sorted) for JSON payloads.

    Dict keys are emitted in sorted order so a payload serialises to the
    same bytes whether it was just computed or hydrated from the store's
    canonical (key-sorted) JSON lines.

    Example:
        >>> from repro.parallel.plan import jsonable
        >>> jsonable({"split": (3, 5), "name": "ahd"})
        {'name': 'ahd', 'split': [3, 5]}
    """
    if isinstance(value, dict):
        return {
            key: jsonable(value[key]) for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value


def plan_from_dict(payload: dict) -> SchedulePlan:
    """Rebuild a validated :class:`SchedulePlan` from :meth:`SchedulePlan.to_dict`.

    Validation runs again on the reconstructed plan, so a tampered or
    truncated store record fails loudly instead of producing timings for a
    plan that could never have been scheduled.

    Example:
        >>> from repro.parallel.plan import SchedulePlan, plan_from_dict
        >>> plan = SchedulePlan(kind="data_parallel", strategy="DP",
        ...                     batch_size=128, num_devices=4, num_blocks=5)
        >>> plan_from_dict(plan.to_dict()) == plan
        True
    """
    stages = tuple(
        StageAssignment(
            stage_id=stage["stage_id"],
            block_ids=tuple(stage["block_ids"]),
            device_ids=tuple(stage["device_ids"]),
        )
        for stage in payload.get("stages", [])
    )
    device_blocks = payload.get("device_blocks")
    return SchedulePlan(
        kind=payload["kind"],
        strategy=payload["strategy"],
        batch_size=payload["batch_size"],
        num_devices=payload["num_devices"],
        num_blocks=payload["num_blocks"],
        decoupled_update=payload.get("decoupled_update", False),
        stages=stages,
        device_blocks=(
            {int(device): tuple(blocks) for device, blocks in device_blocks.items()}
            if device_blocks is not None
            else None
        ),
        metadata=payload.get("metadata", {}),
    )
