"""Simulated per-block profiling (paper §V-B).

Before training, Pipe-BD "runs 100 steps of each block with feasible batch
sizes to obtain execution times under the current environment" and makes its
scheduling decision from those measurements.  Here the measurements come from
the hardware cost model instead of real kernels, but the interface — a table
of per-(block, batch) teacher and student times plus the one-off profiling
cost — is the same, so the AHD search and its overhead analysis work exactly
as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair

#: Number of timed steps per (block, batch) point, as in the paper.
DEFAULT_PROFILE_STEPS = 100


@dataclass(frozen=True)
class ProfileEntry:
    """Measured times for one block at one per-device batch size."""

    block_id: int
    batch: int
    teacher_forward: float
    student_forward: float
    student_backward: float
    weight_update: float

    @property
    def student_training(self) -> float:
        """One student round: forward + backward."""
        return self.student_forward + self.student_backward


@dataclass
class ProfileTable:
    """Lookup table of profiled execution times."""

    pair: DistillationPair
    entries: Dict[Tuple[int, int], ProfileEntry] = field(default_factory=dict)
    profiling_cost_s: float = 0.0

    def add(self, entry: ProfileEntry) -> None:
        self.entries[(entry.block_id, entry.batch)] = entry

    def lookup(self, block_id: int, batch: int) -> ProfileEntry:
        key = (block_id, batch)
        if key not in self.entries:
            raise ConfigurationError(
                f"no profile entry for block {block_id} at batch {batch}; "
                f"profiled batches: {sorted({b for _, b in self.entries})}"
            )
        return self.entries[key]

    def has(self, block_id: int, batch: int) -> bool:
        return (block_id, batch) in self.entries

    def batches(self) -> Tuple[int, ...]:
        return tuple(sorted({batch for _, batch in self.entries}))

    # ------------------------------------------------------------------ #
    # Derived step-time helpers used by the planners
    # ------------------------------------------------------------------ #
    def teacher_time(self, block_id: int, batch: int) -> float:
        return self.lookup(block_id, batch).teacher_forward

    def student_step_time(self, block_id: int, batch: int) -> float:
        """Student compute per training step, including NAS's two rounds."""
        entry = self.lookup(block_id, batch)
        rounds = self.pair.student_rounds_per_step
        return rounds * entry.student_training + entry.weight_update

    def block_step_time(self, block_id: int, batch: int) -> float:
        """Teacher forward + student step for one block."""
        return self.teacher_time(block_id, batch) + self.student_step_time(block_id, batch)


class Profiler:
    """Produces a :class:`ProfileTable` for a (pair, server) combination."""

    def __init__(
        self,
        pair: DistillationPair,
        server: ServerSpec,
        profile_steps: int = DEFAULT_PROFILE_STEPS,
    ) -> None:
        if profile_steps <= 0:
            raise ConfigurationError("profile_steps must be positive")
        self.pair = pair
        self.server = server
        self.profile_steps = profile_steps
        self._cost_model = server.cost_model()

    # ------------------------------------------------------------------ #
    def feasible_batches(self, global_batch: int) -> Tuple[int, ...]:
        """Per-device batch sizes AHD may use: ``ceil(batch / k)`` for k=1..N."""
        if global_batch <= 0:
            raise ConfigurationError("global_batch must be positive")
        batches = {
            max(1, math.ceil(global_batch / replicas))
            for replicas in range(1, self.server.num_devices + 1)
        }
        return tuple(sorted(batches))

    def profile(self, global_batch: int, extra_batches: Tuple[int, ...] = ()) -> ProfileTable:
        """Profile every block at every feasible per-device batch size.

        The returned table also records the simulated wall-clock cost of the
        profiling run itself (``profile_steps`` steps per point), which the
        paper argues is amortised over training (§IV-C) — the ablation bench
        checks that claim.
        """
        batches = tuple(sorted(set(self.feasible_batches(global_batch)) | set(extra_batches)))
        table = ProfileTable(pair=self.pair)
        total_cost = 0.0
        for block_id in range(self.pair.num_blocks):
            teacher_block = self.pair.teacher.block(block_id)
            student_block = self.pair.student.block(block_id)
            for batch in batches:
                entry = ProfileEntry(
                    block_id=block_id,
                    batch=batch,
                    teacher_forward=self._cost_model.block_forward_time(teacher_block, batch),
                    student_forward=self._cost_model.block_forward_time(student_block, batch),
                    student_backward=self._cost_model.block_backward_time(student_block, batch),
                    weight_update=self._cost_model.weight_update_time(student_block),
                )
                table.add(entry)
                total_cost += self.profile_steps * (
                    entry.teacher_forward + entry.student_training + entry.weight_update
                )
        table.profiling_cost_s = total_cost
        return table
