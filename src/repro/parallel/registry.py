"""Strategy plugin registry.

Every scheduling strategy — the six the paper evaluates and any user-defined
one — is an object satisfying the :class:`Strategy` protocol, registered under
a unique name.  The registry is the single source of truth consulted by
:mod:`repro.core.ablation`, the :class:`~repro.core.session.Session` facade,
config validation, benchmarks and analysis, so a new scheduler plugs in
without editing core code:

    from repro.parallel.registry import register_strategy

    @register_strategy
    class MyScheduler:
        name = "MY-SCHED"
        requires_profile = False

        def build(self, pair, server, batch_size, dataset, profile=None):
            ...return a SchedulePlan...

    ExperimentConfig(strategy="MY-SCHED")   # now valid everywhere

Registration order is preserved; the built-in strategies register below in
the order the paper plots them, so ``registry.names()`` starts with
``("DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD")``.

Documented in ``docs/API.md`` (strategy registry) and ``docs/ARCHITECTURE.md``
(the registries).
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.data.dataset import DatasetSpec
from repro.errors import ConfigurationError, ScheduleError
from repro.registry import NamedRegistry, make_register
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.baseline_dp import build_dp_plan
from repro.parallel.baseline_ls import build_ls_plan
from repro.parallel.decoupled import build_tr_dpu_plan
from repro.parallel.hybrid import build_ahd_plan
from repro.parallel.internal_relay import build_ir_plan
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable
from repro.parallel.teacher_relay import build_tr_plan


@runtime_checkable
class Strategy(Protocol):
    """A pluggable scheduling strategy.

    ``name`` is the registry key (and the string used in configs, result
    mappings and report tables); ``requires_profile`` tells callers whether
    :meth:`build` needs a non-``None`` profile table.  Strategies may also
    declare ``decoupled_recovery: bool`` — whether their sub-pipelines
    checkpoint and recover independently on a fault (DPU/LS-style) — which
    the cluster fault layer's :class:`~repro.cluster.faults.RecoveryModel`
    consults; omitting it means coupled (whole-gang critical-path replay).
    """

    name: str
    requires_profile: bool

    def build(
        self,
        pair: DistillationPair,
        server: ServerSpec,
        batch_size: int,
        dataset: DatasetSpec,
        profile: Optional[ProfileTable] = None,
    ) -> SchedulePlan:
        """Produce the schedule plan for one experiment cell."""
        ...


class StrategyRegistry(NamedRegistry[Strategy]):
    """Ordered name -> :class:`Strategy` mapping with validated registration.

    Example:
        >>> from repro.parallel.registry import REGISTRY
        >>> REGISTRY.get("DP").requires_profile
        False
        >>> "TR+DPU+AHD" in REGISTRY
        True
    """

    kind = "strategy"
    kind_plural = "strategies"

    def validate(self, name: str, strategy: Strategy) -> None:
        if not isinstance(getattr(strategy, "requires_profile", None), bool):
            raise ConfigurationError(
                f"strategy {name!r} must expose a boolean 'requires_profile'"
            )
        if not callable(getattr(strategy, "build", None)):
            raise ConfigurationError(f"strategy {name!r} must expose a callable 'build'")

    def requires_profile(self, name: str) -> bool:
        """Whether a strategy's :meth:`~Strategy.build` needs a profile table.

        Example:
            >>> from repro.parallel.registry import REGISTRY
            >>> REGISTRY.requires_profile("LS")
            True
        """
        return self.get(name).requires_profile


#: The process-wide registry every subsystem consults.
REGISTRY = StrategyRegistry()


#: Register a strategy class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_strategy = make_register(REGISTRY)


def _require_profile(name: str, profile: Optional[ProfileTable]) -> ProfileTable:
    if profile is None:
        raise ScheduleError(
            f"strategy {name!r} requires a profile table; profile the pair first "
            "(see repro.core.ablation.make_profile) or go through build_plan/Session"
        )
    return profile


# ---------------------------------------------------------------------- #
# Built-in strategies, registered in the order the paper plots them.
# ---------------------------------------------------------------------- #
@register_strategy
class DPStrategy:
    """Data-parallel baseline (DNA; §II-B, Fig. 3a)."""

    name = "DP"
    requires_profile = False
    decoupled_recovery = False  # synchronous all-reduce gang

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_dp_plan(pair, server, batch_size)


@register_strategy
class LSStrategy:
    """Layerwise-scheduling baseline (Blakeney et al.; §II-B)."""

    name = "LS"
    requires_profile = True
    decoupled_recovery = True  # devices train independent students

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_ls_plan(pair, server, batch_size, _require_profile(self.name, profile))


@register_strategy
class TRStrategy:
    """Teacher relaying (§IV-A, Fig. 3b)."""

    name = "TR"
    requires_profile = True
    decoupled_recovery = False  # per-step barrier couples the gang

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_tr_plan(
            pair,
            server,
            batch_size,
            _require_profile(self.name, profile),
            dataset,
            decoupled_update=False,
        )


@register_strategy
class TRDPUStrategy:
    """Teacher relaying + decoupled parameter update (§IV-B, Fig. 3c)."""

    name = "TR+DPU"
    requires_profile = True
    decoupled_recovery = True  # decoupled updates, per-stage checkpoints

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_tr_dpu_plan(
            pair, server, batch_size, _require_profile(self.name, profile), dataset
        )


@register_strategy
class TRIRStrategy:
    """Internal relaying (§VII-A)."""

    name = "TR+IR"
    requires_profile = False
    decoupled_recovery = True  # internal relay keeps devices independent

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_ir_plan(pair, server, batch_size)


@register_strategy
class PipeBDStrategy:
    """Full Pipe-BD: TR + DPU + automatic hybrid distribution (§IV-C, Fig. 3d)."""

    name = "TR+DPU+AHD"
    requires_profile = True
    decoupled_recovery = True  # decoupled updates, per-stage checkpoints

    def build(self, pair, server, batch_size, dataset, profile=None) -> SchedulePlan:
        return build_ahd_plan(
            pair, server, batch_size, _require_profile(self.name, profile), dataset
        )
