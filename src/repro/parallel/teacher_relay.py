"""Teacher relaying (paper §IV-A, Fig. 3b).

Teacher relaying distributes the teacher and student blocks exclusively over
the devices in contiguous groups; each device executes its teacher blocks on
the full batch and relays the boundary activation to the next device, which
uses it as the input of both its teacher and student blocks.  This removes
the redundant teacher prefix execution and the per-block data loading, and
every device now works on the full batch (better utilization).

Block-to-device assignment uses the "naive distribution" of §IV-C: the best
*contiguous* split of blocks over devices (one device per stage), chosen
exhaustively from the C(B-1, N-1) candidates using profiled block times.
Without AHD there is no batch splitting, which is exactly why imbalanced
workloads (ImageNet's heavy block 0) leave bubbles that DPU alone cannot
remove.
"""

from __future__ import annotations

from repro.data.dataset import DatasetSpec
from repro.errors import ScheduleError
from repro.hardware.server import ServerSpec
from repro.models.pairs import DistillationPair
from repro.parallel.estimator import StageTimeEstimator, stage_assignments_from_partition
from repro.parallel.estimator_vec import (
    groups_from_sizes,
    maybe_vector_estimator,
    partition_grid,
)
from repro.parallel.partition import contiguous_partitions
from repro.parallel.plan import SchedulePlan
from repro.parallel.profiler import ProfileTable


def build_tr_plan(
    pair: DistillationPair,
    server: ServerSpec,
    batch_size: int,
    profile: ProfileTable,
    dataset: DatasetSpec,
    decoupled_update: bool = False,
) -> SchedulePlan:
    """Build a teacher-relaying plan with the best contiguous block split."""
    num_devices = server.num_devices
    num_blocks = pair.num_blocks
    num_stages = min(num_devices, num_blocks)
    if num_stages < 1:
        raise ScheduleError("need at least one device and one block")
    strategy = "TR+DPU" if decoupled_update else "TR"

    def make_plan(partition) -> SchedulePlan:
        stages = stage_assignments_from_partition(partition, [1] * num_stages)
        return SchedulePlan(
            kind="pipeline",
            strategy=strategy,
            batch_size=batch_size,
            num_devices=num_devices,
            num_blocks=num_blocks,
            decoupled_update=decoupled_update,
            stages=stages,
        )

    vector = maybe_vector_estimator(pair, server, dataset, profile)
    if vector is not None:
        # One array pass over all C(B-1, k-1) contiguous splits; argmin
        # returns the first minimum, matching the scalar loop's
        # first-strict-improvement winner.  Only the winner pays the
        # SchedulePlan validation cost.
        import numpy as np

        starts, sizes = partition_grid(num_blocks, num_stages)
        replicas = np.ones_like(starts)
        times = vector.score_candidates(starts, sizes, replicas, batch_size)
        best_index = int(np.argmin(times))
        best_time = float(times[best_index])
        best_plan = make_plan(groups_from_sizes(sizes[best_index]))
    else:
        estimator = StageTimeEstimator(
            pair=pair, server=server, dataset=dataset, profile=profile
        )
        best_plan = None
        best_time = float("inf")
        for partition in contiguous_partitions(num_blocks, num_stages):
            candidate = make_plan(partition)
            step_time = estimator.plan_step_time(candidate)
            if step_time < best_time:
                best_time = step_time
                best_plan = candidate
        assert best_plan is not None
    best_plan.metadata["estimated_step_time"] = best_time
    best_plan.metadata["description"] = (
        "contiguous block groups, one device per stage, activations relayed"
    )
    return best_plan
