"""Generic ordered name -> member registry shared by the plugin points.

Both plugin surfaces of the library — scheduling strategies
(:mod:`repro.parallel.registry`) and cluster placement policies
(:mod:`repro.cluster.scheduler`) — need the same machinery: validated
registration under a unique string name, preserved registration order,
helpful unknown-name errors, ``replace=True`` overrides and test-friendly
unregistration.  :class:`NamedRegistry` owns that machinery once; each
plugin point subclasses it with its member-specific validation hook and
human-readable noun.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Tuple, TypeVar

from repro.errors import ConfigurationError

Member = TypeVar("Member")


class NamedRegistry(Generic[Member]):
    """Ordered ``name -> member`` mapping with validated registration."""

    #: Human-readable noun used in error messages ("strategy", "policy", ...).
    kind = "member"
    #: Plural form for known-name listings.
    kind_plural = "members"

    def __init__(self) -> None:
        self._members: Dict[str, Member] = {}

    # ------------------------------------------------------------------ #
    def validate(self, name: str, member: Member) -> None:
        """Member-specific checks; subclasses raise on malformed members."""

    def register(self, member: Member, *, replace: bool = False) -> Member:
        """Register a member under its ``name`` attribute."""
        name = getattr(member, "name", None)
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"{self.kind} {member!r} must expose a non-empty string 'name'"
            )
        self.validate(name, member)
        if name in self._members and not replace:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered; pass replace=True "
                "to override"
            )
        self._members[name] = member
        return member

    def unregister(self, name: str) -> None:
        """Remove a member (used by tests and plugin teardown)."""
        if name not in self._members:
            raise ConfigurationError(f"{self.kind} {name!r} is not registered")
        del self._members[name]

    def get(self, name: str) -> Member:
        """Look up a member, with a helpful error naming the known set."""
        try:
            return self._members[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known {self.kind_plural}: "
                f"{self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._members)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: object) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)


def make_register(registry: NamedRegistry):
    """Build the ``@register_x`` decorator for a registry.

    The returned function registers a member class or instance (decorating
    a class instantiates it with no arguments and registers the instance;
    the class itself is returned so it stays importable/testable) and
    accepts ``replace=True`` to override an existing name.
    """

    def register(member=None, *, replace: bool = False):
        def _register(obj):
            instance = obj() if isinstance(obj, type) else obj
            registry.register(instance, replace=replace)
            return obj

        if member is None:
            return _register
        return _register(member)

    register.__doc__ = (
        f"Register a {registry.kind} class or instance (usable as a decorator).\n\n"
        "Decorating a class instantiates it with no arguments and registers\n"
        "the instance; the class itself is returned so it stays\n"
        "importable/testable.  Pass replace=True to override an existing name."
    )
    return register
