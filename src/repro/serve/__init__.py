"""Planner-as-a-service: the HTTP layer over Session / tune / cluster.

``repro.serve`` exposes the whole planning stack as a versioned JSON API:

* ``POST /v1/plan`` / ``/v1/sweep`` / ``/v1/tune`` / ``/v1/cluster`` —
  the four compute surfaces, mirroring the ``python -m repro`` CLI
  payloads byte-for-byte (deterministic sections);
* ``POST /v1/precompute`` — warm the shared experiment store for a grid,
  so subsequent queries answer with **zero simulations**;
* ``GET /v1/healthz`` / ``/v1/store/stats`` — operability.

Layering: :class:`PlannerService` (transport-agnostic handlers over one
:class:`~repro.core.session.Session`) is wrapped by three interchangeable
frontends — :func:`create_app` (FastAPI, optional dependency, lazily
imported), :func:`~repro.serve.http.start_server` (stdlib threaded HTTP,
zero dependencies) and :class:`~repro.serve.client.LocalClient`
(in-process, for tests/docs/benchmarks).  Importing this package never
imports FastAPI; calling :func:`create_app` without it raises a
:class:`~repro.errors.ReproError` naming the install command.

Start a server from the CLI::

    python -m repro serve --host 127.0.0.1 --port 8023 --store /tmp/store

Documented in ``docs/SERVING.md``.
"""

from repro.serve.app import create_app
from repro.serve.client import LocalClient
from repro.serve.http import PlannerHTTPServer, start_server
from repro.serve.service import ARRIVAL_KINDS, PlannerService, ServeError

__all__ = [
    "ARRIVAL_KINDS",
    "LocalClient",
    "PlannerHTTPServer",
    "PlannerService",
    "ServeError",
    "create_app",
    "start_server",
]
