"""The FastAPI application factory (lazy — FastAPI is an optional extra).

:func:`create_app` builds a FastAPI app whose every route is a thin
adapter over :meth:`PlannerService.dispatch_raw`; validation, error
mapping and payload construction all live in the service, so the FastAPI
transport, the stdlib fallback (:mod:`repro.serve.http`) and the
in-process :class:`~repro.serve.client.LocalClient` answer
byte-identically.  FastAPI itself is imported inside the factory:
``import repro.serve`` works on a bare install, and calling
``create_app`` without FastAPI raises a :class:`~repro.errors.ReproError`
that says exactly what to install.

Documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.serve.service import PlannerService
from repro.version import __version__

__all__ = ["create_app"]

_INSTALL_HINT = (
    "the serve HTTP app needs FastAPI, which is not installed; "
    "`pip install fastapi uvicorn` (both are in requirements.txt) or use "
    "the dependency-free fallback: `python -m repro serve --http stdlib` / "
    "repro.serve.http.start_server()"
)


def create_app(service: Optional[PlannerService] = None, **service_kwargs):
    """Build the FastAPI app over one planner service.

    ``service_kwargs`` (``store=``, ``backend=``) construct a fresh
    :class:`PlannerService` when none is given.  Raises
    :class:`~repro.errors.ReproError` with an install hint when FastAPI is
    missing.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse, PlainTextResponse
        from starlette.concurrency import run_in_threadpool
    except ImportError as error:
        raise ReproError(_INSTALL_HINT) from error

    if service is None:
        service = PlannerService(**service_kwargs)
    elif service_kwargs:
        raise ReproError(
            "pass either a service instance or store=/backend= kwargs, not both"
        )

    app = FastAPI(
        title="repro planner",
        description=(
            "Planner-as-a-service over the Pipe-BD reproduction: plan, "
            "sweep, tune and fleet-simulate over HTTP, answering hot "
            "queries from the experiment store with zero simulations."
        ),
        version=__version__,
    )
    app.state.service = service

    def _make_endpoint(method: str, path: str):
        async def endpoint(request: Request):
            raw = await request.body() if method == "POST" else b""
            # dispatch_raw is synchronous and can simulate for seconds;
            # calling it inline would block the event loop and take the
            # liveness endpoints down with it.  Hand it to the threadpool
            # so /v1/healthz answers while a compute dispatch runs.
            status, payload = await run_in_threadpool(
                service.dispatch_raw, method, path, raw
            )
            if isinstance(payload, str):
                # /v1/metrics: Prometheus text exposition, not JSON.
                return PlainTextResponse(payload, status_code=status)
            return JSONResponse(payload, status_code=status)

        endpoint.__name__ = (
            f"{method.lower()}_{path.strip('/').replace('/', '_') or 'root'}"
        )
        return endpoint

    for path in service.paths():
        for method in service.methods_for(path):
            app.add_api_route(path, _make_endpoint(method, path), methods=[method])

    # Unknown paths / wrong methods fall through to Starlette; reshape its
    # bodies into the service's error envelope so clients see one format.
    from starlette.exceptions import HTTPException as StarletteHTTPException

    @app.exception_handler(StarletteHTTPException)
    async def _http_error(request: Request, exc: StarletteHTTPException):
        status, payload = service.dispatch_raw(
            request.method, request.url.path, b""
        )
        if status in (404, 405):
            return JSONResponse(payload, status_code=status)
        return JSONResponse(  # pragma: no cover - non-routing HTTP errors
            {
                "error": {
                    "status": exc.status_code,
                    "type": "http",
                    "message": str(exc.detail),
                }
            },
            status_code=exc.status_code,
        )

    return app
