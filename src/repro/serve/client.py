"""An in-process client for the planner service (no sockets, no FastAPI).

:class:`LocalClient` speaks the exact ``dispatch`` protocol the HTTP
transports use, with the small ``.get`` / ``.post(json=...)`` /
``.status_code`` / ``.json()`` surface of ``httpx`` / ``requests``
clients — so the test-suite, the docs examples and the latency benchmark
run identically whether FastAPI's ``TestClient`` is installed (CI) or not
(a bare ``requirements.txt``-less interpreter).

Example:
    >>> from repro.serve import PlannerService
    >>> from repro.serve.client import LocalClient
    >>> client = LocalClient(PlannerService())
    >>> client.get("/v1/healthz").status_code
    200
"""

from __future__ import annotations

import json as _json
from typing import Optional

from repro.serve.service import PlannerService

__all__ = ["ClientResponse", "LocalClient"]


class ClientResponse:
    """Minimal response object mirroring the httpx/requests surface."""

    def __init__(self, status_code: int, payload) -> None:
        self.status_code = status_code
        self._payload = payload

    def json(self) -> dict:
        if isinstance(self._payload, str):
            # /v1/metrics serves Prometheus text, not JSON — same error an
            # httpx client would raise on a text/plain body.
            raise ValueError("response payload is text, not JSON; use .text")
        return self._payload

    @property
    def text(self) -> str:
        if isinstance(self._payload, str):
            return self._payload
        return _json.dumps(self._payload, indent=2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientResponse(status_code={self.status_code})"


class LocalClient:
    """Call a :class:`PlannerService` directly, request/response style."""

    def __init__(self, service: PlannerService) -> None:
        self.service = service

    def get(self, path: str) -> ClientResponse:
        return ClientResponse(*self.service.dispatch("GET", path, None))

    def post(self, path: str, json: Optional[dict] = None) -> ClientResponse:
        return ClientResponse(*self.service.dispatch("POST", path, json))
