"""Dependency-free HTTP transport for the planner service.

A thin :class:`~http.server.ThreadingHTTPServer` that forwards every
request to :meth:`PlannerService.dispatch_raw`.  It exists so ``repro
serve`` (and the load-test harness, and CI smoke jobs) work on a bare
python install; when FastAPI + uvicorn are available the CLI prefers
them (``--http uvicorn``), and both transports answer byte-identically
because all behaviour lives in the service.

Example:
    >>> from repro.serve import PlannerService
    >>> from repro.serve.http import start_server
    >>> server = start_server(PlannerService(), host="127.0.0.1", port=0)
    >>> server.bound_port > 0
    True
    >>> server.shutdown(); server.server_close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import PlannerService

__all__ = ["PlannerHTTPServer", "start_server"]


class _PlannerRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP requests into service dispatches (no logic here)."""

    server: "PlannerHTTPServer"
    protocol_version = "HTTP/1.1"

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        status, payload = self.server.service.dispatch_raw(method, self.path, raw)
        if isinstance(payload, str):
            # /v1/metrics: the Prometheus text exposition, not JSON.
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting only
            super().log_message(format, *args)


class PlannerHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`PlannerService`."""

    daemon_threads = True

    def __init__(
        self,
        service: PlannerService,
        host: str = "127.0.0.1",
        port: int = 8023,
        quiet: bool = True,
    ) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__((host, port), _PlannerRequestHandler)

    @property
    def bound_port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self.server_address[1]


def start_server(
    service: PlannerService,
    host: str = "127.0.0.1",
    port: int = 8023,
    quiet: bool = True,
    background: bool = True,
) -> PlannerHTTPServer:
    """Bind a planner server; with ``background=True`` it serves on a thread.

    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = PlannerHTTPServer(service, host=host, port=port, quiet=quiet)
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        server._thread = thread
    return server
