"""Typed request/response models for the planner-as-a-service API.

Every ``POST`` endpoint of :mod:`repro.serve.service` validates its JSON
body through one of the pydantic models below before any domain code
runs.  The split of responsibilities is deliberate:

* **shape** errors — wrong types, unknown fields, missing documents — are
  caught here and surface as HTTP **422** with pydantic's error detail;
* **domain** errors — unknown strategies/policies/objectives/presets,
  infeasible configurations — are left to the registries and
  :class:`~repro.core.config.ExperimentConfig` and surface as HTTP
  **400** with the registry's valid choices.

Request models mirror the ``python -m repro`` CLI flags one-to-one
(``PlanRequest`` ≙ ``repro run``, ``SweepRequest`` ≙ ``repro sweep``, …),
so a serve payload and a CLI invocation with identical inputs produce
byte-identical deterministic sections (asserted in
``tests/serve/test_parity.py``).  Response *envelopes* are typed too —
:func:`response_model_for` lets tests validate that the plain-dict payloads
the service emits conform — but the service returns plain dicts so the
deterministic sections round-trip the existing ``to_dict`` payloads
byte-for-byte instead of being re-serialised by a model.

Documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from pydantic import BaseModel, ConfigDict, Field

__all__ = [
    "PlanRequest",
    "SweepRequest",
    "ClusterRequest",
    "TuneRequest",
    "PrecomputeRequest",
    "RequestWarmCold",
    "ResponseMeta",
    "ErrorBody",
    "ErrorResponse",
    "HealthResponse",
    "StoreStatsResponse",
    "PlanResponse",
    "SweepResponse",
    "ClusterResponse",
    "TuneResponse",
    "PrecomputeResponse",
    "REQUEST_MODELS",
    "response_model_for",
]


class _StrictModel(BaseModel):
    """Base for request bodies: unknown fields are a 422, not a silent no-op."""

    model_config = ConfigDict(extra="forbid")


class PlanRequest(_StrictModel):
    """One experiment cell — the body of ``POST /v1/plan`` (≙ ``repro run``)."""

    task: str = "nas"
    dataset: str = "cifar10"
    server: str = "a6000"
    num_gpus: int = 4
    batch_size: int = 256
    strategy: str = "TR+DPU+AHD"
    steps: int = 10


class SweepRequest(_StrictModel):
    """A grid of cells — the body of ``POST /v1/sweep`` (≙ ``repro sweep``).

    Scalar fields seed the base config; each list field, when given, becomes
    a sweep axis (the grid is the cartesian product, exactly as the CLI).
    """

    task: str = "nas"
    dataset: str = "cifar10"
    server: str = "a6000"
    num_gpus: int = 4
    batch_size: int = 256
    steps: int = 10
    batch_sizes: Optional[List[int]] = None
    gpu_counts: Optional[List[int]] = None
    datasets: Optional[List[str]] = None
    servers: Optional[List[str]] = None
    tasks: Optional[List[str]] = None
    strategies: Optional[List[str]] = None
    backend: Optional[str] = None


class ClusterRequest(_StrictModel):
    """A fleet replay — the body of ``POST /v1/cluster`` (≙ ``repro cluster``).

    ``workload`` / ``fault_trace`` accept *inline* JSON documents of the
    shapes ``Workload.save`` / ``FaultTrace.save`` write — the HTTP API has
    no filesystem, so traces travel in the request body.
    """

    nodes: Optional[str] = None
    policy: str = "all"
    num_jobs: int = 200
    arrival: str = "poisson"
    rate: float = 0.5
    burst_size: int = 8
    burst_gap: float = 120.0
    seed: int = 0
    workload: Optional[Dict[str, Any]] = None
    faults: Optional[str] = None
    fault_trace: Optional[Dict[str, Any]] = None
    elastic: str = "restart"
    fault_seed: int = 0
    #: Tenant roster shorthand (``"name:k=v,...;..."``); generates a
    #: multi-tenant workload.  Mutually exclusive with ``workload`` —
    #: inline workload documents carry their own tenant roster.
    tenants: Optional[str] = None
    #: Spot-market price curve: a preset name or ``"t:mult,...[@period]"``.
    price_curve: Optional[str] = None
    #: Seconds past arrival that deadline tenants' jobs must finish by.
    deadline_slack: float = 900.0


class TuneRequest(_StrictModel):
    """An autotuning run — the body of ``POST /v1/tune`` (≙ ``repro tune``)."""

    objective: str = "epoch_time"
    driver: str = "successive-halving"
    budget: int = 64
    seed: int = 0
    steps: int = 10
    strategies: Optional[List[str]] = None
    batch_sizes: Optional[List[int]] = None
    gpu_counts: Optional[List[int]] = None
    servers: Optional[List[str]] = None
    tasks: Optional[List[str]] = None
    datasets: Optional[List[str]] = None
    policies: Optional[List[str]] = None
    nodes: Optional[str] = None
    deadline: Optional[float] = None
    faults: Optional[str] = None
    fault_trace: Optional[Dict[str, Any]] = None
    elastic: str = "restart"
    fault_seed: int = 0
    #: Tenant roster for the SLO objectives' contended probe (shorthand).
    tenants: Optional[str] = None
    #: Price curve metering the probe's GPU-seconds (preset or spec).
    price_curve: Optional[str] = None
    #: Deadline slack for the probe's deadline tenants, in seconds.
    deadline_slack: Optional[float] = None


class PrecomputeRequest(_StrictModel):
    """A warming grid — the body of ``POST /v1/precompute``.

    The grid is the cartesian product of every axis crossed with every
    strategy; the service drives it through the session's execution
    backend and writes every fresh simulation through the shared store, so
    subsequent ``/v1/plan`` / ``/v1/sweep`` / ``/v1/tune`` queries covering
    these cells answer with zero simulations.
    """

    tasks: List[str] = Field(default_factory=lambda: ["nas"])
    datasets: List[str] = Field(default_factory=lambda: ["cifar10"])
    servers: List[str] = Field(default_factory=lambda: ["a6000"])
    gpu_counts: List[int] = Field(default_factory=lambda: [4])
    batch_sizes: List[int] = Field(default_factory=lambda: [256])
    strategies: Optional[List[str]] = None
    steps: int = 10
    backend: Optional[str] = None


#: Request model per POST route, used by the service dispatcher.
REQUEST_MODELS: Dict[str, type] = {
    "/v1/plan": PlanRequest,
    "/v1/sweep": SweepRequest,
    "/v1/cluster": ClusterRequest,
    "/v1/tune": TuneRequest,
    "/v1/precompute": PrecomputeRequest,
}


# ---------------------------------------------------------------------- #
# Response envelopes
# ---------------------------------------------------------------------- #
class RequestWarmCold(BaseModel):
    """Per-request hydration accounting (``meta.request``).

    ``simulations`` is the number of discrete-event simulations this one
    request caused; ``warm`` is true when it caused none — the observable
    form of the "second identical query performs zero simulations"
    guarantee.  ``request_id`` / ``duration_ms`` are stamped by the
    dispatch telemetry wrapper and cross-reference the server's
    structured log lines and ``/v1/metrics`` histograms.
    """

    simulations: int
    store_hits: int
    store_builds: int
    warm: bool
    request_id: str
    duration_ms: float


class ResponseMeta(BaseModel):
    """The ``meta`` section every successful compute response carries."""

    endpoint: str
    request: RequestWarmCold
    session: Dict[str, int]
    store: Optional[Dict[str, Any]] = None


class ErrorBody(BaseModel):
    """The ``error`` object of every non-2xx response."""

    status: int
    type: str
    message: str
    field: Optional[str] = None
    value: Optional[Any] = None
    choices: Optional[List[Any]] = None
    detail: Optional[List[Dict[str, Any]]] = None


class ErrorResponse(BaseModel):
    error: ErrorBody


class PregenInfo(BaseModel):
    """Pregen-artifact facts surfaced by ``/v1/healthz`` when booted
    against a manifest-stamped store."""

    grid: str
    grid_hash: str
    row_count: int
    complete: bool
    version: str


class HealthResponse(BaseModel):
    status: str
    version: str
    uptime_s: float
    requests_served: int
    has_store: bool
    store_root: Optional[str] = None
    store_reader: Optional[str] = None
    pregen: Optional[PregenInfo] = None
    backend: str
    endpoints: List[str]


class StoreStatsResponse(BaseModel):
    has_store: bool
    root: Optional[str] = None
    stats: Optional[Dict[str, Any]] = None
    records_by_kind: Optional[Dict[str, int]] = None
    session: Dict[str, int]


class PlanResponse(BaseModel):
    config: Dict[str, Any]
    result: Dict[str, Any]
    meta: ResponseMeta


class SweepResponse(BaseModel):
    base_config: Dict[str, Any]
    strategies: List[str]
    axes: Dict[str, List[Any]]
    cells: List[Dict[str, Any]]
    meta: ResponseMeta


class ClusterResponse(BaseModel):
    cluster: Dict[str, Any]
    workload: str
    reports: Dict[str, Dict[str, Any]]
    faults: Optional[Dict[str, Any]] = None
    tenants: Optional[List[Dict[str, Any]]] = None
    price_curve: Optional[str] = None
    meta: ResponseMeta


class TuneResponse(BaseModel):
    objective: Dict[str, Any]
    driver: str
    budget: int
    space: Dict[str, Any]
    best: Dict[str, Any]
    frontier: List[Dict[str, Any]]
    measurements: List[Dict[str, Any]]
    trajectory: List[Dict[str, Any]]
    notes: Dict[str, Any]
    evaluator_stats: Dict[str, Any]
    session_stats: Dict[str, Any]
    meta: ResponseMeta


class PrecomputeResponse(BaseModel):
    spec: Dict[str, Any]
    cells: int
    grid_size: int
    simulated: int
    hydrated: int
    store: Dict[str, Any]
    meta: ResponseMeta


_RESPONSE_MODELS: Dict[str, type] = {
    "/v1/healthz": HealthResponse,
    "/v1/store/stats": StoreStatsResponse,
    "/v1/plan": PlanResponse,
    "/v1/sweep": SweepResponse,
    "/v1/cluster": ClusterResponse,
    "/v1/tune": TuneResponse,
    "/v1/precompute": PrecomputeResponse,
}


def response_model_for(path: str) -> type:
    """The typed envelope of one route's 2xx payload (tests validate with it)."""
    return _RESPONSE_MODELS[path]
