"""The planner service: every serve endpoint as transport-agnostic handlers.

:class:`PlannerService` is the single implementation behind all three
frontends — the FastAPI app (:func:`repro.serve.app.create_app`), the
stdlib fallback server (:mod:`repro.serve.http`) and the in-process
:class:`~repro.serve.client.LocalClient` — so their responses are
byte-identical by construction.  A transport turns an HTTP request into
``dispatch(method, path, body)`` and writes back the ``(status, payload)``
it returns; nothing else lives in the transports.

The service holds **one** :class:`~repro.core.session.Session`, optionally
bound to a persistent :class:`~repro.store.store.ExperimentStore` and an
execution backend.  Hot queries therefore answer straight from the store
with **zero simulations**; every compute response embeds a ``meta.request``
section with the per-request :class:`~repro.core.session.SessionStats`
delta (``simulations`` / ``store_hits`` / ``warm``) so that guarantee is
observable in the payload itself.

Error mapping (no endpoint ever leaks a raw traceback):

* ``422`` — request body fails pydantic validation, or an inline
  workload / fault-trace document does not parse;
* ``400`` — domain rejection: unknown strategy / policy / elastic policy /
  objective / driver / backend / preset (the body names the field and the
  registry's valid choices), bad fault specs, infeasible configurations;
* ``404`` / ``405`` — unknown path / wrong method;
* ``500`` — anything unexpected, reduced to a one-line message.

Documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from pydantic import ValidationError

from repro.analysis.store_report import request_warm_cold
from repro.cluster.elastic import ELASTIC_POLICIES
from repro.cluster.faults import FAULT_PRESETS, FaultTrace, parse_fault_spec
from repro.cluster.scheduler import POLICIES
from repro.cluster.spec import cluster_from_shorthand, default_cluster
from repro.cluster.market import PRICE_CURVES, parse_price_curve
from repro.cluster.simulator import run_policy_comparison
from repro.cluster.workload import (
    DEFAULT_MIX,
    Workload,
    arrival_process,
    parse_tenant_shorthand,
    tenant_workload,
)
from repro.core.config import (
    ExperimentConfig,
    VALID_DATASETS,
    VALID_SERVERS,
    VALID_TASKS,
)
from repro.core.session import Session
from repro.errors import ReproError
from repro.obs.logs import bind_request_id, get_logger, new_request_id, request_id_var
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.parallel.registry import REGISTRY
from repro.serve.schemas import (
    ClusterRequest,
    PlanRequest,
    PrecomputeRequest,
    REQUEST_MODELS,
    SweepRequest,
    TuneRequest,
)
from repro.store.backends import BACKENDS, ExecutionBackend
from repro.store.store import ExperimentStore
from repro.version import __version__

#: ``(status, payload)``; the payload is a JSON-ready dict for every
#: endpoint except ``GET /v1/metrics``, whose payload is the Prometheus
#: text exposition as a plain string (transports render it text/plain).
Response = Tuple[int, Union[dict, str]]

_LOG = get_logger("serve")

#: Arrival-process kinds ``/v1/cluster`` generates (mirrors the CLI choices).
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


class ServeError(ReproError):
    """A domain error with a definite HTTP status and structured body."""

    def __init__(
        self,
        status: int,
        type: str,
        message: str,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = {"status": status, "type": type, "message": message}
        for key, value in extra.items():
            if value is not None:
                self.body[key] = value

    def response(self) -> Response:
        return self.status, {"error": self.body}


def _unknown_choice(field: str, value: Any, choices) -> ServeError:
    return ServeError(
        400,
        "unknown_choice",
        f"unknown {field} {value!r}; valid choices: {list(choices)}",
        field=field,
        value=value,
        choices=list(choices),
    )


def _check_choice(field: str, value: Optional[str], choices) -> None:
    if value is not None and value not in choices:
        raise _unknown_choice(field, value, choices)


def _check_choices(field: str, values, choices) -> None:
    for value in values or ():
        _check_choice(field, value, choices)


class PlannerService:
    """The planner-as-a-service application core (one session, many requests).

    Example:
        >>> from repro.serve.service import PlannerService
        >>> service = PlannerService()
        >>> status, payload = service.dispatch("GET", "/v1/healthz", None)
        >>> (status, payload["status"])
        (200, 'ok')
    """

    def __init__(
        self,
        store: Union[ExperimentStore, str, Path, None] = None,
        backend: Union[str, ExecutionBackend] = "inline",
    ) -> None:
        if isinstance(backend, str):
            _check_choice("backend", backend, BACKENDS.names())
        self.session = Session(store=store, backend=backend)
        # One writer at a time: the per-request SessionStats delta must not
        # interleave with another handler's work, and the simulator core is
        # CPU-bound pure python anyway.  The warm hot path holds this lock
        # for microseconds (a shard lookup), so concurrent warm clients
        # still see sub-millisecond service times.  Read-only endpoints
        # (liveness, metrics, store stats) are exempt: a liveness probe
        # must answer while a slow compute dispatch holds the lock, or the
        # orchestrator declares a healthy-but-busy process dead.
        self._lock = threading.Lock()
        self._read_only = {
            ("GET", "/v1/healthz"),
            ("GET", "/v1/metrics"),
            ("GET", "/v1/store/stats"),
        }
        self._started = time.monotonic()
        #: Completed dispatches (any status), reported by /v1/healthz.
        self._requests_served = 0
        self._routes: Dict[Tuple[str, str], Callable[[Optional[dict]], Response]] = {
            ("GET", "/v1/healthz"): self._healthz,
            ("GET", "/v1/metrics"): self._metrics,
            ("GET", "/v1/store/stats"): self._store_stats,
            ("POST", "/v1/plan"): self._plan,
            ("POST", "/v1/sweep"): self._sweep,
            ("POST", "/v1/cluster"): self._cluster,
            ("POST", "/v1/tune"): self._tune,
            ("POST", "/v1/precompute"): self._precompute,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def paths(self) -> Tuple[str, ...]:
        """Every route path, in registration order (healthz lists these)."""
        seen: Dict[str, None] = {}
        for _, path in self._routes:
            seen.setdefault(path)
        return tuple(seen)

    def methods_for(self, path: str) -> Tuple[str, ...]:
        return tuple(method for method, route in self._routes if route == path)

    def dispatch(self, method: str, path: str, body: Optional[dict]) -> Response:
        """Route one request; every failure mode becomes a clean JSON body.

        Every dispatch — success or error — is measured: a per-endpoint
        latency histogram and status-labelled request counter, an
        in-flight gauge, a warm/cold counter for compute endpoints, and a
        process-unique ``request_id`` bound to the logging context and
        echoed (with ``duration_ms``) in the response's ``meta.request``.
        """
        path = path.partition("?")[0].rstrip("/") or "/"
        endpoint = path if path in self.paths() else "unknown"
        registry = get_registry()
        request_id = new_request_id()
        token = bind_request_id(request_id)
        in_flight = registry.gauge(
            "repro_http_in_flight", "requests currently being handled"
        )
        in_flight.inc()
        started = time.perf_counter()
        try:
            with span("serve.dispatch", endpoint=endpoint, method=method.upper()):
                status, payload = self._route(method, path, body)
        finally:
            in_flight.dec()
            request_id_var.reset(token)
        duration_s = time.perf_counter() - started
        registry.histogram(
            "repro_http_request_seconds", "request latency by endpoint"
        ).observe(duration_s, endpoint=endpoint)
        registry.counter(
            "repro_http_requests_total", "dispatched requests by endpoint and status"
        ).inc(endpoint=endpoint, status=str(status))
        if isinstance(payload, dict):
            request_meta = payload.get("meta", {}).get("request")
            if isinstance(request_meta, dict):
                request_meta["request_id"] = request_id
                request_meta["duration_ms"] = round(duration_s * 1e3, 3)
                registry.counter(
                    "repro_http_warm_cold_total",
                    "compute requests by cache temperature",
                ).inc(
                    endpoint=endpoint,
                    temperature="warm" if request_meta.get("warm") else "cold",
                )
        self._requests_served += 1
        _LOG.info(
            "%s %s -> %d in %.1f ms",
            method.upper(),
            path,
            status,
            duration_s * 1e3,
            # The contextvar is already reset (the handler is done); carry
            # the id explicitly so the log line still cross-references.
            extra={
                "endpoint": endpoint,
                "status": status,
                "duration_ms": round(duration_s * 1e3, 3),
                "request_id": request_id,
            },
        )
        return status, payload

    def _route(self, method: str, path: str, body: Optional[dict]) -> Response:
        """The routing core dispatch() wraps with telemetry.

        The session lock is taken here, once, for every compute handler;
        routes in ``self._read_only`` run lock-free so liveness and
        metrics stay responsive while a long simulation is in flight.
        """
        key = (method.upper(), path)
        handler = self._routes.get(key)
        if handler is None:
            if path in self.paths():
                allowed = self.methods_for(path)
                return ServeError(
                    405,
                    "method_not_allowed",
                    f"{method.upper()} is not allowed on {path}; use "
                    f"{' or '.join(allowed)}",
                    choices=list(allowed),
                ).response()
            return ServeError(
                404,
                "not_found",
                f"unknown path {path!r}",
                choices=list(self.paths()),
            ).response()
        try:
            if key in self._read_only:
                return handler(body)
            with self._lock:
                return handler(body)
        except ValidationError as error:
            return ServeError(
                422,
                "validation",
                f"request body for {path} failed validation",
                detail=json.loads(
                    json.dumps(error.errors(include_url=False), default=str)
                ),
            ).response()
        except ServeError as error:
            return error.response()
        except ReproError as error:
            return ServeError(400, "domain", str(error)).response()
        except Exception as error:  # pragma: no cover - defensive safety net
            return ServeError(
                500, "internal", f"{type(error).__name__}: {error}"
            ).response()

    def dispatch_raw(self, method: str, path: str, raw: bytes) -> Response:
        """Dispatch with an undecoded body (the HTTP transports' entry point)."""
        body: Optional[dict] = None
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as error:
                return ServeError(
                    400, "bad_json", f"request body is not valid JSON: {error}"
                ).response()
            if not isinstance(body, dict):
                return ServeError(
                    400,
                    "bad_json",
                    "request body must be a JSON object, got "
                    f"{type(body).__name__}",
                ).response()
        return self.dispatch(method, path, body)

    # ------------------------------------------------------------------ #
    # Meta plumbing
    # ------------------------------------------------------------------ #
    def _finish(self, endpoint: str, payload: dict, before: dict) -> Response:
        """Attach the per-request warm/cold meta section and return 200."""
        delta = self.session.stats.delta(before)
        meta: Dict[str, Any] = {
            "endpoint": endpoint,
            "request": request_warm_cold(delta),
            "session": self.session.stats.to_dict(),
        }
        if self.session.store is not None:
            meta["store"] = self.session.store.disk_summary()
        payload["meta"] = meta
        return 200, payload

    # ------------------------------------------------------------------ #
    # Operability endpoints
    # ------------------------------------------------------------------ #
    def _healthz(self, _body: Optional[dict]) -> Response:
        store = self.session.store
        payload = {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests_served": self._requests_served,
            "has_store": store is not None,
            "store_root": str(store.root) if store is not None else None,
            "store_reader": store.reader_name if store is not None else None,
            "pregen": None,
            "backend": self.session.backend.name,
            "endpoints": list(self.paths()),
        }
        if store is not None:
            from repro.store.pregen import load_manifest

            try:
                manifest = load_manifest(store.root)
            except ReproError:
                # A corrupt manifest must not take /v1/healthz down with it;
                # the liveness probe reports the artifact as absent and the
                # pregen CLI surfaces the real error.
                manifest = None
            if manifest is not None:
                payload["pregen"] = {
                    "grid": manifest.grid.name,
                    "grid_hash": manifest.grid_hash,
                    "row_count": manifest.row_count,
                    "complete": manifest.complete,
                    "version": manifest.version,
                }
        return 200, payload

    def _metrics(self, _body: Optional[dict]) -> Response:
        """The process-wide registry in Prometheus text exposition format."""
        return 200, get_registry().render_prometheus()

    def _store_stats(self, _body: Optional[dict]) -> Response:
        store = self.session.store
        if store is None:
            return 200, {
                "has_store": False,
                "session": self.session.stats.to_dict(),
            }
        overview = store.overview()
        return 200, {
            "has_store": True,
            "root": overview["root"],
            "stats": overview["stats"],
            "records_by_kind": overview["records_by_kind"],
            "session": self.session.stats.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # Compute endpoints
    # ------------------------------------------------------------------ #
    def _plan(self, body: Optional[dict]) -> Response:
        request = PlanRequest.model_validate(body or {})
        _check_choice("task", request.task, VALID_TASKS)
        _check_choice("dataset", request.dataset, VALID_DATASETS)
        _check_choice("server", request.server, VALID_SERVERS)
        _check_choice("strategy", request.strategy, REGISTRY.names())
        config = ExperimentConfig(
            task=request.task,
            dataset=request.dataset,
            server=request.server,
            num_gpus=request.num_gpus,
            batch_size=request.batch_size,
            strategy=request.strategy,
            simulated_steps=request.steps,
        )
        before = self.session.stats.snapshot()
        result = self.session.run(config)
        payload = {"config": config.to_dict(), "result": result.to_dict()}
        return self._finish("/v1/plan", payload, before)

    def _sweep(self, body: Optional[dict]) -> Response:
        request = SweepRequest.model_validate(body or {})
        _check_choices("task", [request.task] + (request.tasks or []), VALID_TASKS)
        _check_choices(
            "dataset", [request.dataset] + (request.datasets or []), VALID_DATASETS
        )
        _check_choices(
            "server", [request.server] + (request.servers or []), VALID_SERVERS
        )
        _check_choices("strategy", request.strategies, REGISTRY.names())
        _check_choice("backend", request.backend, BACKENDS.names())
        base = ExperimentConfig(
            task=request.task,
            dataset=request.dataset,
            server=request.server,
            num_gpus=request.num_gpus,
            batch_size=request.batch_size,
            simulated_steps=request.steps,
        )
        before = self.session.stats.snapshot()
        sweep = self.session.sweep(
            base,
            batch_sizes=request.batch_sizes,
            num_gpus=request.gpu_counts,
            datasets=request.datasets,
            servers=request.servers,
            tasks=request.tasks,
            strategies=request.strategies,
            backend=request.backend,
        )
        return self._finish("/v1/sweep", sweep.to_dict(), before)

    def _resolve_faults(self, request) -> Union[FaultTrace, object, None]:
        """Coerce a request's fault fields to a fault source (or None)."""
        if request.faults and request.fault_trace:
            raise ServeError(
                400,
                "domain",
                "'faults' and 'fault_trace' are mutually exclusive; pass a "
                "generator spec or an inline trace, not both",
            )
        if request.fault_trace is not None:
            try:
                return FaultTrace.from_dict(request.fault_trace)
            except ReproError:
                raise
            except (KeyError, TypeError, ValueError) as error:
                raise ServeError(
                    422,
                    "malformed_document",
                    f"inline fault trace does not parse: {error}; expected "
                    "the JSON shape FaultTrace.save() writes",
                    field="fault_trace",
                ) from error
        if request.faults:
            try:
                return parse_fault_spec(request.faults)
            except ReproError as error:
                raise ServeError(
                    400,
                    "bad_fault_spec",
                    str(error),
                    field="faults",
                    value=request.faults,
                    choices=sorted(FAULT_PRESETS),
                ) from error
        return None

    def _cluster(self, body: Optional[dict]) -> Response:
        request = ClusterRequest.model_validate(body or {})
        if request.policy != "all":
            _check_choice("policy", request.policy, POLICIES.names())
        _check_choice("elastic", request.elastic, ELASTIC_POLICIES.names())
        _check_choice("arrival", request.arrival, ARRIVAL_KINDS)
        cluster = (
            cluster_from_shorthand(request.nodes) if request.nodes else default_cluster()
        )
        if request.tenants and request.workload is not None:
            raise ServeError(
                400,
                "domain",
                "'tenants' and 'workload' are mutually exclusive; inline "
                "workload documents carry their own tenant roster",
                field="tenants",
            )
        try:
            price_curve = parse_price_curve(request.price_curve)
        except ReproError as error:
            raise ServeError(
                400,
                "bad_price_curve",
                str(error),
                field="price_curve",
                value=request.price_curve,
                choices=sorted(PRICE_CURVES),
            ) from error
        if request.workload is not None:
            try:
                workload = Workload.from_dict(request.workload)
            except ReproError:
                raise
            except (KeyError, TypeError, ValueError) as error:
                raise ServeError(
                    422,
                    "malformed_document",
                    f"inline workload does not parse: {error}; expected the "
                    "JSON shape Workload.save() writes",
                    field="workload",
                ) from error
        elif request.tenants:
            workload = tenant_workload(
                parse_tenant_shorthand(request.tenants),
                request.num_jobs,
                rate=request.rate,
                seed=request.seed,
                deadline_slack=request.deadline_slack,
                diurnal=request.arrival == "diurnal",
            )
        else:
            workload = arrival_process(
                request.arrival,
                request.num_jobs,
                rate=request.rate,
                burst_size=request.burst_size,
                burst_gap=request.burst_gap,
                seed=request.seed,
                mix=DEFAULT_MIX,
            )
        faults = self._resolve_faults(request)
        policies = (
            tuple(POLICIES.names()) if request.policy == "all" else (request.policy,)
        )
        before = self.session.stats.snapshot()
        reports = run_policy_comparison(
            cluster,
            workload,
            policies=policies,
            session=self.session,
            faults=faults,
            elastic=request.elastic,
            fault_seed=request.fault_seed,
            price_curve=price_curve,
        )
        payload: Dict[str, Any] = {
            "cluster": cluster.to_dict(),
            "workload": workload.name,
            "reports": {name: report.to_dict() for name, report in reports.items()},
        }
        if workload.tenants:
            payload["tenants"] = [spec.to_dict() for spec in workload.tenants]
        if price_curve is not None:
            payload["price_curve"] = price_curve.name
        if faults is not None:
            payload["faults"] = {
                "spec": (
                    {"trace": faults.name}
                    if isinstance(faults, FaultTrace)
                    else faults.to_dict()
                ),
                "elastic": request.elastic,
                "seed": request.fault_seed,
            }
        return self._finish("/v1/cluster", payload, before)

    def _tune(self, body: Optional[dict]) -> Response:
        from repro.tune.drivers import DRIVERS
        from repro.tune.objective import MinCostUnderDeadline, OBJECTIVES
        from repro.tune.space import TuneSpace, default_space

        request = TuneRequest.model_validate(body or {})
        _check_choice("objective", request.objective, OBJECTIVES.names())
        _check_choice("driver", request.driver, DRIVERS.names())
        _check_choices("strategy", request.strategies, REGISTRY.names())
        _check_choices("server", request.servers, VALID_SERVERS)
        _check_choices("task", request.tasks, VALID_TASKS)
        _check_choices("dataset", request.datasets, VALID_DATASETS)
        _check_choices("policy", request.policies, POLICIES.names())
        _check_choice("elastic", request.elastic, ELASTIC_POLICIES.names())
        if request.deadline is not None and request.objective != "cost":
            raise ServeError(
                400,
                "domain",
                f"'deadline' only applies to the 'cost' objective, not "
                f"{request.objective!r}; drop the field or use objective='cost'",
                field="deadline",
            )
        base = default_space()
        clusters = (cluster_from_shorthand(request.nodes),) if request.nodes else ()
        space = TuneSpace(
            strategies=tuple(request.strategies) if request.strategies else base.strategies,
            batch_sizes=tuple(request.batch_sizes) if request.batch_sizes else base.batch_sizes,
            gpu_counts=tuple(request.gpu_counts) if request.gpu_counts else base.gpu_counts,
            servers=tuple(request.servers) if request.servers else base.servers,
            tasks=tuple(request.tasks) if request.tasks else base.tasks,
            datasets=tuple(request.datasets) if request.datasets else base.datasets,
            policies=tuple(request.policies) if request.policies else (),
            clusters=clusters,
        )
        objective = (
            MinCostUnderDeadline(deadline=request.deadline)
            if request.deadline is not None
            else request.objective
        )
        before = self.session.stats.snapshot()
        result = self.session.tune(
            space,
            objective=objective,
            driver=request.driver,
            budget=request.budget,
            seed=request.seed,
            simulated_steps=request.steps,
            faults=self._resolve_faults(request),
            elastic=request.elastic,
            fault_seed=request.fault_seed,
            tenants=request.tenants,
            price_curve=request.price_curve,
            slo_deadline_slack=(
                request.deadline_slack if request.deadline_slack is not None else 900.0
            ),
        )
        return self._finish("/v1/tune", result.to_dict(), before)

    def _precompute(self, body: Optional[dict]) -> Response:
        request = PrecomputeRequest.model_validate(body or {})
        if self.session.store is None:
            raise ServeError(
                400,
                "no_store",
                "precompute warms the shared experiment store, but this "
                "service has none; start it with --store PATH (or "
                "REPRO_STORE)",
            )
        _check_choices("task", request.tasks, VALID_TASKS)
        _check_choices("dataset", request.datasets, VALID_DATASETS)
        _check_choices("server", request.servers, VALID_SERVERS)
        strategies = (
            list(request.strategies)
            if request.strategies
            else list(REGISTRY.names())
        )
        _check_choices("strategy", strategies, REGISTRY.names())
        _check_choice("backend", request.backend, BACKENDS.names())
        for field in ("tasks", "datasets", "servers", "gpu_counts", "batch_sizes"):
            if not getattr(request, field):
                raise ServeError(
                    400,
                    "domain",
                    f"precompute grid axis {field!r} must be non-empty",
                    field=field,
                )
        base = ExperimentConfig(
            task=request.tasks[0],
            dataset=request.datasets[0],
            server=request.servers[0],
            num_gpus=request.gpu_counts[0],
            batch_size=request.batch_sizes[0],
            strategy=strategies[0],
            simulated_steps=request.steps,
        )
        before = self.session.stats.snapshot()
        sweep = self.session.sweep(
            base,
            batch_sizes=request.batch_sizes,
            num_gpus=request.gpu_counts,
            datasets=request.datasets,
            servers=request.servers,
            tasks=request.tasks,
            strategies=strategies,
            backend=request.backend,
        )
        delta = self.session.stats.delta(before)
        payload = {
            "spec": request.model_dump(),
            "cells": len(sweep.cells),
            "grid_size": len(sweep.cells) * len(sweep.strategies),
            "simulated": delta["runs"],
            "hydrated": delta["store_hits"],
            "store": self.session.store.disk_summary(),
        }
        return self._finish("/v1/precompute", payload, before)
