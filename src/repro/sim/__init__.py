"""Discrete-event simulation substrate.

The executor lowers a schedule plan into a task graph; this subpackage runs
that graph on a set of serial resources (one compute stream per GPU, one
point-to-point channel per device pair, one shared host loader) and records
an execution trace from which epoch times, breakdowns and utilization are
derived.
"""

from repro.sim.events import TaskKind, SimTask
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TaskRecord, Trace
from repro.sim.resources import (
    device_compute,
    device_link,
    host_loader,
    parse_device,
)
from repro.sim.metrics import compute_breakdown, resource_utilization

__all__ = [
    "TaskKind",
    "SimTask",
    "SimulationEngine",
    "TaskRecord",
    "Trace",
    "device_compute",
    "device_link",
    "host_loader",
    "parse_device",
    "compute_breakdown",
    "resource_utilization",
]
