"""A small deterministic discrete-event simulation engine.

The engine executes a static task graph: each :class:`~repro.sim.events.SimTask`
names a serial resource, a duration, and a set of dependencies.  A task may
start once all its dependencies have finished *and* its resource is free;
when several tasks compete for the same resource, the one added to the engine
first wins (insertion order equals program order, which matches how a real
framework would enqueue kernels on a CUDA stream).

The result is a :class:`~repro.sim.trace.Trace` with the start and end time of
every task.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import SimTask, TaskKind
from repro.sim.trace import TaskRecord, Trace


class SimulationEngine:
    """Builds and runs a task graph on serial resources."""

    def __init__(self) -> None:
        self._tasks: List[SimTask] = []

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def add_task(
        self,
        name: str,
        kind: TaskKind,
        resource: str,
        duration: float,
        deps: Iterable[int] = (),
        step: int = -1,
        device: int = -1,
        block: int = -1,
        metadata: Optional[dict] = None,
    ) -> int:
        """Add a task and return its id (usable as a dependency handle)."""
        task_id = len(self._tasks)
        deps_tuple: Tuple[int, ...] = tuple(deps)
        for dep in deps_tuple:
            if dep < 0 or dep >= task_id:
                raise SimulationError(
                    f"task {name!r} depends on unknown task id {dep} "
                    f"(only earlier tasks may be dependencies)"
                )
        task = SimTask(
            task_id=task_id,
            name=name,
            kind=kind,
            resource=resource,
            duration=float(duration),
            deps=deps_tuple,
            step=step,
            device=device,
            block=block,
            metadata=metadata or {},
        )
        self._tasks.append(task)
        return task_id

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def task(self, task_id: int) -> SimTask:
        return self._tasks[task_id]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> Trace:
        """Execute the task graph and return the trace.

        Because dependencies may only point to earlier tasks, the graph is
        acyclic by construction; the engine is therefore a deterministic list
        scheduler.
        """
        if not self._tasks:
            return Trace(records=())

        num_tasks = len(self._tasks)
        remaining_deps = [len(task.deps) for task in self._tasks]
        dependents: List[List[int]] = [[] for _ in range(num_tasks)]
        for task in self._tasks:
            for dep in task.deps:
                dependents[dep].append(task.task_id)

        # Earliest time a task's dependencies are satisfied.
        ready_time = [0.0] * num_tasks
        # Per-resource FIFO of ready tasks, ordered by insertion order.
        resource_queues: Dict[str, List[Tuple[int, float]]] = {}
        # Time each resource becomes free.
        resource_free: Dict[str, float] = {}

        finish_time: List[Optional[float]] = [None] * num_tasks
        start_time: List[Optional[float]] = [None] * num_tasks

        def enqueue(task_id: int, at_time: float) -> None:
            task = self._tasks[task_id]
            queue = resource_queues.setdefault(task.resource, [])
            heapq.heappush(queue, (task_id, at_time))

        for task in self._tasks:
            if remaining_deps[task.task_id] == 0:
                enqueue(task.task_id, 0.0)

        completed = 0
        # Event loop: repeatedly pick, among resources with pending work, the
        # task that can start earliest (ties broken by insertion order so the
        # schedule is deterministic).
        while completed < num_tasks:
            best: Optional[Tuple[float, int, str]] = None
            for resource, queue in resource_queues.items():
                if not queue:
                    continue
                task_id, ready_at = queue[0]
                start_at = max(ready_at, resource_free.get(resource, 0.0))
                candidate = (start_at, task_id, resource)
                if best is None or candidate < best:
                    best = candidate
            if best is None:
                pending = [
                    self._tasks[index].name
                    for index in range(num_tasks)
                    if finish_time[index] is None
                ]
                raise SimulationError(
                    f"simulation deadlocked with {len(pending)} unfinished tasks; "
                    f"first few: {pending[:5]}"
                )
            start_at, task_id, resource = best
            heapq.heappop(resource_queues[resource])
            task = self._tasks[task_id]
            end_at = start_at + task.duration
            start_time[task_id] = start_at
            finish_time[task_id] = end_at
            resource_free[resource] = end_at
            completed += 1
            for dependent in dependents[task_id]:
                remaining_deps[dependent] -= 1
                ready_time[dependent] = max(ready_time[dependent], end_at)
                if remaining_deps[dependent] == 0:
                    enqueue(dependent, ready_time[dependent])

        records = tuple(
            TaskRecord(task=task, start=start_time[task.task_id], end=finish_time[task.task_id])
            for task in self._tasks
        )
        return Trace(records=records)
