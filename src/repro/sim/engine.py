"""A small deterministic discrete-event simulation engine.

The engine executes a static task graph: each :class:`~repro.sim.events.SimTask`
names a serial resource, a duration, and a set of dependencies.  A task may
start once all its dependencies have finished *and* its resource is free;
when several tasks compete for the same resource, the one added to the engine
first wins (insertion order equals program order, which matches how a real
framework would enqueue kernels on a CUDA stream).

The result is a :class:`~repro.sim.trace.Trace` with the start and end time of
every task.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import SimTask, TaskKind
from repro.sim.trace import TaskRecord, Trace


class SimulationEngine:
    """Builds and runs a task graph on serial resources."""

    def __init__(self) -> None:
        self._tasks: List[SimTask] = []

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def add_task(
        self,
        name: str,
        kind: TaskKind,
        resource: str,
        duration: float,
        deps: Iterable[int] = (),
        step: int = -1,
        device: int = -1,
        block: int = -1,
        metadata: Optional[dict] = None,
    ) -> int:
        """Add a task and return its id (usable as a dependency handle)."""
        task_id = len(self._tasks)
        deps_tuple: Tuple[int, ...] = tuple(deps)
        for dep in deps_tuple:
            if dep < 0 or dep >= task_id:
                raise SimulationError(
                    f"task {name!r} depends on unknown task id {dep} "
                    f"(only earlier tasks may be dependencies)"
                )
        task = SimTask(
            task_id=task_id,
            name=name,
            kind=kind,
            resource=resource,
            duration=float(duration),
            deps=deps_tuple,
            step=step,
            device=device,
            block=block,
            metadata=metadata or {},
        )
        self._tasks.append(task)
        return task_id

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def task(self, task_id: int) -> SimTask:
        return self._tasks[task_id]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> Trace:
        """Execute the task graph and return the trace.

        Because dependencies may only point to earlier tasks, the graph is
        acyclic by construction; the engine is therefore a deterministic list
        scheduler.

        The loop keeps one *candidate* per resource — its queue head, stamped
        with the start time it would get right now — in a single global heap,
        and lazily invalidates candidates whose resource state moved on
        (a cheaper-id task arrived, or the resource's free time advanced).
        This pops the same task the previous per-event scan over all
        resources selected — the candidate tuples order exactly like the
        scan's ``(start_at, task_id, resource)`` comparison — at O(log R)
        per event instead of O(R).
        """
        if not self._tasks:
            return Trace(records=())

        tasks = self._tasks
        num_tasks = len(tasks)
        heappush, heappop = heapq.heappush, heapq.heappop

        # Graph structure, flattened once: interned resource indices,
        # durations, dependents adjacency.
        remaining_deps = [len(task.deps) for task in tasks]
        dependents: List[List[int]] = [[] for _ in range(num_tasks)]
        resource_index: Dict[str, int] = {}
        task_resource = [0] * num_tasks
        durations = [0.0] * num_tasks
        for task in tasks:
            task_id = task.task_id
            task_resource[task_id] = resource_index.setdefault(
                task.resource, len(resource_index)
            )
            durations[task_id] = task.duration
            for dep in task.deps:
                dependents[dep].append(task_id)

        # Per-resource FIFO of ready task ids (insertion order == program
        # order == ascending id, so a plain int heap suffices) and the time
        # each resource becomes free.
        queues: List[List[int]] = [[] for _ in range(len(resource_index))]
        free = [0.0] * len(resource_index)
        # Earliest time a task's dependencies are satisfied.
        ready_time = [0.0] * num_tasks

        start_time = [0.0] * num_tasks
        finish_time: List[Optional[float]] = [None] * num_tasks

        for task_id in range(num_tasks):
            if remaining_deps[task_id] == 0:
                heappush(queues[task_resource[task_id]], task_id)

        # One candidate per resource with pending work; stale entries are
        # recognised on pop by re-deriving the head and its start time.
        candidates: List[Tuple[float, int, int]] = [
            (0.0, queue[0], res) for res, queue in enumerate(queues) if queue
        ]
        heapq.heapify(candidates)

        completed = 0
        while completed < num_tasks:
            while candidates:
                start_at, task_id, res = heappop(candidates)
                queue = queues[res]
                if not queue or queue[0] != task_id:
                    continue  # superseded head: a fresher candidate exists
                ready_at, free_at = ready_time[task_id], free[res]
                if start_at != (ready_at if ready_at > free_at else free_at):
                    continue  # stamped before the resource's free time moved
                break
            else:
                pending = [
                    tasks[index].name
                    for index in range(num_tasks)
                    if finish_time[index] is None
                ]
                raise SimulationError(
                    f"simulation deadlocked with {len(pending)} unfinished tasks; "
                    f"first few: {pending[:5]}"
                )
            heappop(queue)
            end_at = start_at + durations[task_id]
            start_time[task_id] = start_at
            finish_time[task_id] = end_at
            free[res] = end_at
            completed += 1
            if queue:
                head = queue[0]
                head_ready = ready_time[head]
                heappush(
                    candidates,
                    (head_ready if head_ready > end_at else end_at, head, res),
                )
            for dependent in dependents[task_id]:
                remaining_deps[dependent] -= 1
                if ready_time[dependent] < end_at:
                    ready_time[dependent] = end_at
                if remaining_deps[dependent] == 0:
                    dep_res = task_resource[dependent]
                    dep_queue = queues[dep_res]
                    heappush(dep_queue, dependent)
                    if dep_queue[0] == dependent:
                        dep_ready, dep_free = ready_time[dependent], free[dep_res]
                        heappush(
                            candidates,
                            (
                                dep_ready if dep_ready > dep_free else dep_free,
                                dependent,
                                dep_res,
                            ),
                        )

        records = tuple(
            TaskRecord(task=task, start=start_time[task.task_id], end=finish_time[task.task_id])
            for task in self._tasks
        )
        return Trace(records=records)
