"""Task and event definitions for the discrete-event simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class TaskKind(str, enum.Enum):
    """Categories of simulated work.

    The categories map onto the breakdown the paper plots in Fig. 2:
    data loading, teacher execution, student execution, and everything else
    (communication, updates) that mostly overlaps or is negligible; whatever
    remains of the makespan is idle time.
    """

    DATA_LOAD = "data_load"
    TEACHER_FORWARD = "teacher_forward"
    STUDENT_FORWARD = "student_forward"
    STUDENT_BACKWARD = "student_backward"
    WEIGHT_UPDATE = "weight_update"
    SEND = "send"
    RECV = "recv"
    ALLREDUCE = "allreduce"
    BARRIER = "barrier"
    VALIDATE = "validate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Task kinds that occupy a GPU compute stream (as opposed to a link or the
#: host loader).
COMPUTE_KINDS = frozenset(
    {
        TaskKind.TEACHER_FORWARD,
        TaskKind.STUDENT_FORWARD,
        TaskKind.STUDENT_BACKWARD,
        TaskKind.WEIGHT_UPDATE,
        TaskKind.VALIDATE,
    }
)

#: Task kinds counted as "student execution" in the Fig. 2 style breakdown.
STUDENT_EXEC_KINDS = frozenset(
    {TaskKind.STUDENT_FORWARD, TaskKind.STUDENT_BACKWARD, TaskKind.WEIGHT_UPDATE}
)


@dataclass(frozen=True)
class SimTask:
    """One unit of simulated work.

    Attributes
    ----------
    task_id:
        Unique integer id assigned by the engine.
    name:
        Human-readable label (shows up in traces and Gantt output).
    kind:
        Task category.
    resource:
        The serial resource that executes the task (e.g. ``"gpu0:compute"``).
    duration:
        Service time in (simulated) seconds.
    deps:
        Ids of tasks that must complete before this task may start.
    step / device / block:
        Optional labels used by metrics and visualisation.
    """

    task_id: int
    name: str
    kind: TaskKind
    resource: str
    duration: float
    deps: Tuple[int, ...] = ()
    step: int = -1
    device: int = -1
    block: int = -1
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration {self.duration}")
