"""Breakdown and utilization metrics computed from traces (paper Fig. 2)."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.sim.events import STUDENT_EXEC_KINDS, TaskKind
from repro.sim.resources import device_compute, parse_device
from repro.sim.trace import Trace

#: Breakdown categories matching the paper's Fig. 2 legend.
BREAKDOWN_CATEGORIES = ("data_load", "teacher_exec", "student_exec", "comm", "idle")


def compute_breakdown(
    trace: Trace, num_devices: int, horizon: float | None = None
) -> Dict[int, Dict[str, float]]:
    """Per-device time breakdown over the trace.

    Returns ``{device_id: {category: seconds}}`` where the categories are
    data loading, teacher execution, student execution (forward + backward +
    update), communication attributed to the device's compute stream (usually
    zero since transfers occupy link resources), and idle time up to
    ``horizon`` (defaults to the trace makespan).

    Data-loading time is attributed to the device that consumes the batch
    (via the task's ``device`` label) because in the real system the loader
    worker blocks that device's training process.
    """
    if horizon is None:
        horizon = trace.makespan
    breakdown: Dict[int, Dict[str, float]] = {
        device: {category: 0.0 for category in BREAKDOWN_CATEGORIES}
        for device in range(num_devices)
    }

    for record in trace:
        device = record.task.device
        kind = record.kind
        if kind == TaskKind.DATA_LOAD:
            if 0 <= device < num_devices:
                breakdown[device]["data_load"] += record.duration
            continue
        try:
            resource_device = parse_device(record.resource)
        except Exception:
            resource_device = device
        if resource_device < 0 or resource_device >= num_devices:
            continue
        if kind == TaskKind.TEACHER_FORWARD:
            breakdown[resource_device]["teacher_exec"] += record.duration
        elif kind in STUDENT_EXEC_KINDS or kind == TaskKind.VALIDATE:
            breakdown[resource_device]["student_exec"] += record.duration
        elif kind in (TaskKind.SEND, TaskKind.RECV, TaskKind.ALLREDUCE, TaskKind.BARRIER):
            breakdown[resource_device]["comm"] += record.duration

    for device in range(num_devices):
        busy = sum(
            breakdown[device][category]
            for category in ("teacher_exec", "student_exec", "comm")
        )
        # Data loading overlaps with compute on a different resource, but when
        # the device is waiting for data it is idle on its compute stream.
        idle = max(0.0, horizon - busy)
        # Attribute the part of idle that is caused by data loading to the
        # data_load category, the rest stays idle.
        data_wait = min(idle, breakdown[device]["data_load"])
        breakdown[device]["data_load"] = data_wait
        breakdown[device]["idle"] = idle - data_wait
    return breakdown


def aggregate_breakdown(breakdown: Dict[int, Dict[str, float]]) -> Dict[str, float]:
    """Sum a per-device breakdown over devices."""
    totals = {category: 0.0 for category in BREAKDOWN_CATEGORIES}
    for per_device in breakdown.values():
        for category, value in per_device.items():
            totals[category] = totals.get(category, 0.0) + value
    return totals


def resource_utilization(
    trace: Trace, resources: Iterable[str], horizon: float | None = None
) -> Dict[str, float]:
    """Fraction of the horizon each resource spends busy."""
    if horizon is None:
        horizon = trace.makespan
    if horizon <= 0:
        return {resource: 0.0 for resource in resources}
    return {
        resource: min(1.0, trace.resource_busy_time(resource) / horizon)
        for resource in resources
    }


def device_utilization(trace: Trace, num_devices: int, horizon: float | None = None) -> Dict[int, float]:
    """Compute-stream utilization per device."""
    named = resource_utilization(
        trace, [device_compute(device) for device in range(num_devices)], horizon
    )
    return {parse_device(resource): value for resource, value in named.items()}
