"""Resource naming conventions for the simulator.

Resources are identified by strings so the engine stays generic:

* ``"gpu{i}:compute"`` — the single compute stream of device ``i``.
* ``"link:{src}->{dst}"`` — the point-to-point channel from ``src`` to ``dst``.
* ``"host:loader"`` — the shared CPU/disk data-loading pipeline.
* ``"collective:{tag}"`` — a virtual resource serialising a collective
  (all-reduce) among a device group.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import SimulationError


def device_compute(device_id: int) -> str:
    """Compute-stream resource of one GPU."""
    if device_id < 0:
        raise SimulationError(f"device id must be non-negative, got {device_id}")
    return f"gpu{device_id}:compute"


def device_link(src: int, dst: int) -> str:
    """Point-to-point channel between two GPUs."""
    if src < 0 or dst < 0:
        raise SimulationError(f"device ids must be non-negative, got {src}->{dst}")
    if src == dst:
        raise SimulationError(f"link endpoints must differ, got {src}->{dst}")
    return f"link:{src}->{dst}"


def host_loader() -> str:
    """The shared host data-loading pipeline."""
    return "host:loader"


def collective(tag: str) -> str:
    """A virtual resource serialising one collective group."""
    return f"collective:{tag}"


def is_compute_resource(resource: str) -> bool:
    """True if the resource is a GPU compute stream."""
    return resource.startswith("gpu") and resource.endswith(":compute")


def parse_device(resource: str) -> int:
    """Extract the device id from a compute-stream resource name."""
    if not is_compute_resource(resource):
        raise SimulationError(f"{resource!r} is not a device compute resource")
    return int(resource[len("gpu") : -len(":compute")])


def all_compute_resources(num_devices: int) -> Tuple[str, ...]:
    """Compute-stream resources of every device in a server."""
    return tuple(device_compute(device_id) for device_id in range(num_devices))
