"""Execution traces produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.events import SimTask, TaskKind


@dataclass(frozen=True)
class TaskRecord:
    """A completed task with its simulated start and end times."""

    task: SimTask
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def resource(self) -> str:
        return self.task.resource

    @property
    def kind(self) -> TaskKind:
        return self.task.kind


@dataclass(frozen=True)
class Trace:
    """The full record of one simulation run."""

    records: Tuple[TaskRecord, ...]

    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Total simulated time from 0 to the last task completion."""
        if not self.records:
            return 0.0
        return max(record.end for record in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------ #
    # Filtering / grouping
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[TaskRecord], bool]) -> "Trace":
        """A sub-trace containing only records matching ``predicate``."""
        return Trace(records=tuple(record for record in self.records if predicate(record)))

    def by_resource(self) -> Dict[str, List[TaskRecord]]:
        """Records grouped by resource, in start-time order."""
        grouped: Dict[str, List[TaskRecord]] = {}
        for record in sorted(self.records, key=lambda r: (r.start, r.task.task_id)):
            grouped.setdefault(record.resource, []).append(record)
        return grouped

    def by_kind(self) -> Dict[TaskKind, List[TaskRecord]]:
        """Records grouped by task kind."""
        grouped: Dict[TaskKind, List[TaskRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.kind, []).append(record)
        return grouped

    def for_step(self, step: int) -> "Trace":
        """Records belonging to one training step."""
        return self.filter(lambda record: record.task.step == step)

    def steps(self) -> Tuple[int, ...]:
        """Sorted step labels present in the trace (excluding unlabeled -1)."""
        return tuple(sorted({r.task.step for r in self.records if r.task.step >= 0}))

    # ------------------------------------------------------------------ #
    # Time accounting
    # ------------------------------------------------------------------ #
    def resource_busy_time(self, resource: str, kinds: Optional[Iterable[TaskKind]] = None) -> float:
        """Total busy time of one resource, optionally restricted to kinds."""
        kind_set = set(kinds) if kinds is not None else None
        total = 0.0
        for record in self.records:
            if record.resource != resource:
                continue
            if kind_set is not None and record.kind not in kind_set:
                continue
            total += record.duration
        return total

    def resource_span(self, resource: str) -> Tuple[float, float]:
        """(first start, last end) of a resource, or (0, 0) if unused."""
        times = [
            (record.start, record.end)
            for record in self.records
            if record.resource == resource
        ]
        if not times:
            return (0.0, 0.0)
        return min(start for start, _ in times), max(end for _, end in times)

    def window(self, start: float, end: float) -> "Trace":
        """Records overlapping the time interval [start, end)."""
        return self.filter(lambda record: record.end > start and record.start < end)

    def kind_time_on_resource(self, resource: str) -> Dict[TaskKind, float]:
        """Busy time per kind on one resource."""
        totals: Dict[TaskKind, float] = {}
        for record in self.records:
            if record.resource != resource:
                continue
            totals[record.kind] = totals.get(record.kind, 0.0) + record.duration
        return totals

    def step_boundaries(self) -> Dict[int, Tuple[float, float]]:
        """Per-step (earliest start, latest end) over labeled records."""
        bounds: Dict[int, Tuple[float, float]] = {}
        for record in self.records:
            step = record.task.step
            if step < 0:
                continue
            if step not in bounds:
                bounds[step] = (record.start, record.end)
            else:
                start, end = bounds[step]
                bounds[step] = (min(start, record.start), max(end, record.end))
        return bounds

    def steady_state_step_time(self, skip_first: int = 1) -> float:
        """Average per-step time ignoring the first ``skip_first`` warm-up steps.

        Measured from consecutive step completion times so pipelined overlap
        between steps is accounted for.
        """
        bounds = self.step_boundaries()
        steps = sorted(bounds)
        if len(steps) <= skip_first + 1:
            if not steps:
                return 0.0
            first, last = steps[0], steps[-1]
            span = bounds[last][1] - bounds[first][0]
            return span / len(steps)
        ends = [bounds[step][1] for step in steps]
        start_index = skip_first
        span = ends[-1] - ends[start_index - 1]
        return span / (len(steps) - start_index)
