"""Persistent experiment store and pluggable execution backends.

* :mod:`repro.store.store` — the content-addressed on-disk store
  (:class:`ExperimentStore`): JSONL shards, atomic writes, schema
  versioning with corruption quarantine, gc and export.
* :mod:`repro.store.keys` — canonical key payloads and content hashing.
* :mod:`repro.store.backends` — the ``inline`` / ``thread`` / ``process``
  execution-backend registry, mirroring the strategy and placement
  registries.

See ``docs/CACHING.md`` for the full guide.
"""

from repro.store.backends import (
    BACKENDS,
    ExecutionBackend,
    register_backend,
    resolve_backend,
)
from repro.store.keys import SCHEMA_VERSION, canonical_json, content_key
from repro.store.store import ExperimentStore, StoreStats, open_store

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExperimentStore",
    "SCHEMA_VERSION",
    "StoreStats",
    "canonical_json",
    "content_key",
    "open_store",
    "register_backend",
    "resolve_backend",
]
