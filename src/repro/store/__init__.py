"""Persistent experiment store and pluggable execution backends.

* :mod:`repro.store.store` — the content-addressed on-disk store
  (:class:`ExperimentStore`): JSONL shards, atomic writes, schema
  versioning with corruption quarantine, gc and export.
* :mod:`repro.store.keys` — canonical key payloads and content hashing.
* :mod:`repro.store.backends` — the ``inline`` / ``thread`` / ``process``
  execution-backend registry, mirroring the strategy and placement
  registries.
* :mod:`repro.store.index` — the ``scan`` / ``sqlite`` reader registry
  and the derived, rebuildable SQLite point-lookup index.
* :mod:`repro.store.pregen` — offline pregeneration of planning tables:
  named grids, manifests, resume semantics (``repro pregen``).

See ``docs/CACHING.md`` and ``docs/PREGEN.md`` for the full guides.
"""

from repro.store.backends import (
    BACKENDS,
    ExecutionBackend,
    register_backend,
    resolve_backend,
)
from repro.store.index import (
    READERS,
    StoreReader,
    build_index,
    drop_index,
    register_reader,
)
from repro.store.keys import SCHEMA_VERSION, canonical_json, content_key
from repro.store.pregen import (
    GRIDS,
    GridSpec,
    Manifest,
    PregenReport,
    load_manifest,
    resolve_grid,
    run_pregen,
)
from repro.store.store import ExperimentStore, StoreStats, open_store

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExperimentStore",
    "GRIDS",
    "GridSpec",
    "Manifest",
    "PregenReport",
    "READERS",
    "SCHEMA_VERSION",
    "StoreReader",
    "StoreStats",
    "build_index",
    "canonical_json",
    "content_key",
    "drop_index",
    "load_manifest",
    "open_store",
    "register_backend",
    "register_reader",
    "resolve_backend",
    "resolve_grid",
    "run_pregen",
]
