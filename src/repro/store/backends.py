"""Execution backends: *where* a batch of experiment cells runs.

The strategy registry decides how a cell is scheduled and the placement
registry decides where a job lands in a fleet; this registry completes the
trio by deciding how the library itself executes a batch of (config,
strategy) cells:

* ``inline`` — serially on the calling thread (default, zero overhead);
* ``thread`` — on a thread pool after a serial cache prewarm, preserving
  the session's exactly-once profile guarantee;
* ``process`` — on a process pool; workers are separate interpreters that
  each open their own :class:`~repro.core.session.Session` against the
  *same* on-disk store, so results flow back both through pickling and
  through concurrent store appends.  This is the backend that exercises
  multi-writer store semantics — and the template for remote executors.

Register a custom backend exactly like a strategy or policy::

    from repro.store.backends import register_backend

    @register_backend
    class SlurmBackend:
        name = "slurm"

        def run_cells(self, session, tasks):
            ...submit, poll, hydrate from the shared store...

    Session(backend="slurm")   # now valid everywhere

Documented in ``docs/CACHING.md`` (backend selection guide).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.parallel.executor import ExecutionResult
from repro.parallel.registry import REGISTRY
from repro.registry import NamedRegistry, make_register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.session import Session

#: One unit of backend work: run ``strategy`` on ``config``'s cell.
CellTask = Tuple[ExperimentConfig, str]


@runtime_checkable
class ExecutionBackend(Protocol):
    """A pluggable executor for batches of experiment cells.

    ``name`` is the registry key (the string accepted by ``Session(backend=...)``
    and ``--backend``); :meth:`run_cells` must return one
    :class:`~repro.parallel.executor.ExecutionResult` per task, in order.
    """

    name: str

    def run_cells(
        self, session: "Session", tasks: Sequence[CellTask]
    ) -> List[ExecutionResult]:
        """Execute every task and return results in task order."""
        ...


class BackendRegistry(NamedRegistry[ExecutionBackend]):
    """Ordered name -> :class:`ExecutionBackend` mapping.

    Example:
        >>> from repro.store.backends import BACKENDS
        >>> BACKENDS.names()
        ('inline', 'thread', 'process')
    """

    kind = "backend"
    kind_plural = "backends"

    def validate(self, name: str, backend: ExecutionBackend) -> None:
        if not callable(getattr(backend, "run_cells", None)):
            raise ConfigurationError(
                f"backend {name!r} must expose a callable 'run_cells'"
            )


#: The process-wide backend registry consulted by Session and the CLI.
BACKENDS = BackendRegistry()

#: Register a backend class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_backend = make_register(BACKENDS)


def resolve_backend(backend) -> ExecutionBackend:
    """Accept a backend by registry name or as a duck-typed instance."""
    if isinstance(backend, str):
        return BACKENDS.get(backend)
    BACKENDS.validate(getattr(backend, "name", "<anonymous>"), backend)
    return backend


def _prewarm(session: "Session", tasks: Sequence[CellTask]) -> None:
    """Serially materialise caches every *cold* task will need.

    Store-warm tasks are skipped entirely: they will hydrate from disk
    without ever touching the executor or profile caches, so prewarming
    them would do work a warm restart exists to avoid.
    """
    by_config: Dict[ExperimentConfig, List[str]] = {}
    for config, strategy in tasks:
        by_config.setdefault(config, []).append(strategy)
    for config, strategies in by_config.items():
        cold = [s for s in strategies if not session.in_store(config, s)]
        if not cold:
            continue
        session.executor(config)
        if any(REGISTRY.requires_profile(strategy) for strategy in cold):
            session.profile(config)


@register_backend
class InlineBackend:
    """Serial execution on the calling thread (the default backend)."""

    name = "inline"

    def run_cells(self, session, tasks):
        return [session.run(config, strategy=strategy) for config, strategy in tasks]


@register_backend
class ThreadBackend:
    """Thread-pool execution after a serial cache prewarm.

    The prewarm keeps the session's exactly-once guarantees trivially true
    (cache fills happen before the pool starts); the pool then only runs
    the pure simulations.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run_cells(self, session, tasks):
        _prewarm(session, tasks)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(
                    lambda task: session.run(task[0], strategy=task[1]), tasks
                )
            )


# ---------------------------------------------------------------------- #
# Process backend: separate interpreters sharing one on-disk store
# ---------------------------------------------------------------------- #
#: Per-worker-process session cache, keyed by store path (or None).
_WORKER_SESSIONS: Dict[Optional[str], "Session"] = {}


def _worker_session(store_path: Optional[str]) -> "Session":
    from repro.core.session import Session

    if store_path not in _WORKER_SESSIONS:
        _WORKER_SESSIONS[store_path] = Session(store=store_path)
    return _WORKER_SESSIONS[store_path]


def _process_worker(payload: Tuple[dict, str, Optional[str]]) -> Tuple[dict, bool]:
    """Run one cell in a worker process; returns (result dict, simulated?).

    The worker's session writes through the shared store (when one is
    configured), so results survive even if the parent dies before
    unpickling — and concurrent workers exercise multi-writer appends.
    The ``simulated`` flag lets the parent fold the worker's work into its
    own counters, keeping warm/cold reporting honest across processes.
    """
    config_dict, strategy, store_path = payload
    session = _worker_session(store_path)
    runs_before = session.stats.runs
    result = session.run(ExperimentConfig(**config_dict), strategy=strategy)
    return result.to_dict(), session.stats.runs > runs_before


@register_backend
class ProcessBackend:
    """Process-pool execution; workers share the session's on-disk store.

    Each worker opens its own session (sessions hold locks and are not
    picklable) against the same store path, runs its cells, and persists
    results before returning them.  After the pool drains, the parent
    refreshes its store index so the workers' appends are visible, then
    back-fills any record that is still missing (store-less sessions).
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run_cells(self, session, tasks):
        store = session.store
        store_path = str(store.root) if store is not None else None
        payloads = [
            (config.to_dict(), strategy, store_path) for config, strategy in tasks
        ]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            raw = list(pool.map(_process_worker, payloads))
        if store is not None:
            store.refresh()
        results = []
        for (config, strategy), (result_dict, simulated) in zip(tasks, raw):
            # Fold the workers' work into the parent's counters so warm/cold
            # reporting stays honest: a cold process-backend sweep must not
            # look like a warm restart.
            if simulated:
                session.stats.runs += 1
                if store is not None:
                    if session.in_store(config, strategy):
                        session.stats.store_builds += 1  # the worker wrote it
                    else:
                        session.put_run(config, strategy, result_dict)
            else:
                session.stats.store_hits += 1
            results.append(ExecutionResult.from_dict(result_dict))
        return results
