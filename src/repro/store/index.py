"""Read-optimized store index: SQLite point lookups beside the shard scanner.

The store's native read path parses a whole JSONL shard on first touch
(:meth:`~repro.store.store.ExperimentStore._load_shard`), which is fine for
a handful of records but shows up in the serve latency profile once a
pregenerated artifact carries tens of thousands of rows — every cold boot
pays an O(shard) parse per prefix before its first hit.  This module adds
a *derived*, rebuildable index so a warm lookup is one SQLite point query:

* :class:`SqliteIndex` — ``<root>/index.sqlite`` in WAL mode, one row per
  record (``key, kind, schema, ts, value`` with the value kept as
  canonical JSON).  The JSONL shards remain the source of truth: the
  index can be deleted and rebuilt at any time (``repro cache index``)
  and ``cache export`` never reads it, so exports stay byte-stable.
* :data:`READERS` — a registry of read strategies mirroring the strategy /
  policy / backend registries: ``scan`` (the original lazy shard parse)
  and ``sqlite`` (point query, falling back to a shard scan on a miss so
  lines appended by an index-unaware writer are still found).
  ``ExperimentStore(reader="auto")`` picks ``sqlite`` automatically when
  the index file exists — which is how a service booted against a
  pregenerated artifact gets the fast path without configuration.

Writers keep the index coherent: :meth:`ExperimentStore.put` inserts into
an attached index inside the same inter-process mutation lock that
serialises the JSONL append, and gc rebuilds it from the surviving
records.  A writer that crashes between the append and the insert leaves
the index one row short, never wrong — the sqlite reader's scan fallback
covers exactly that window.

Documented in ``docs/PREGEN.md`` (index backend) and ``docs/CACHING.md``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Protocol, runtime_checkable

from repro.errors import StoreError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.registry import NamedRegistry, make_register
from repro.store.keys import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.store.store import ExperimentStore

#: File name of the derived SQLite index inside a store root.
INDEX_FILENAME = "index.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key    TEXT PRIMARY KEY,
    kind   TEXT NOT NULL,
    schema INTEGER NOT NULL,
    ts     REAL NOT NULL,
    value  TEXT NOT NULL
) WITHOUT ROWID;
"""


class SqliteIndex:
    """A WAL-mode SQLite mirror of a store's records, keyed by content key.

    One connection per handle, guarded by a lock (point queries hold it
    for microseconds); safe for the multi-threaded serve/backends paths.
    Cross-process write exclusion is inherited from the store's flock —
    every insert happens inside ``_disk_mutation_lock`` — so WAL only has
    to serve concurrent readers, which it does without blocking.

    Example:
        >>> import tempfile
        >>> from repro.store import ExperimentStore
        >>> from repro.store.index import build_index
        >>> store = ExperimentStore(tempfile.mkdtemp())
        >>> _ = store.put("run", {"cell": "demo"}, {"epoch_time_s": 1.5})
        >>> build_index(store)
        1
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False, timeout=30.0
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open store index {self.path} ({error}); delete the "
                "file and rebuild it with 'repro cache index'"
            ) from error

    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[dict]:
        """The record stored under ``key``, or None (no shard touched)."""
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT kind, schema, ts, value FROM records WHERE key = ?",
                    (key,),
                ).fetchone()
            except sqlite3.Error as error:
                raise StoreError(
                    f"store index {self.path} is unreadable ({error}); delete "
                    "it and rebuild with 'repro cache index'"
                ) from error
        if row is None:
            return None
        kind, schema, ts, value = row
        return {
            "key": key,
            "kind": kind,
            "schema": schema,
            "ts": ts,
            "value": json.loads(value),
        }

    def insert(self, record: dict) -> None:
        """Upsert one record (call with the store's mutation lock held)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO records (key, kind, schema, ts, value) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    record["key"],
                    record["kind"],
                    record["schema"],
                    record["ts"],
                    canonical_json(record["value"]),
                ),
            )
            self._conn.commit()

    def replace_all(self, records: Iterable[dict]) -> int:
        """Rebuild the whole table from ``records``; returns the row count.

        One transaction: readers in other processes keep seeing the old
        rows until the commit, never a half-built table.
        """
        rows = [
            (r["key"], r["kind"], r["schema"], r["ts"], canonical_json(r["value"]))
            for r in records
        ]
        with self._lock:
            with self._conn:
                self._conn.execute("DELETE FROM records")
                self._conn.executemany(
                    "INSERT INTO records (key, kind, schema, ts, value) "
                    "VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
        return len(rows)

    def count(self) -> int:
        """Number of indexed records."""
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def index_path(store: "ExperimentStore") -> Path:
    return store.root / INDEX_FILENAME


def build_index(store: "ExperimentStore") -> int:
    """(Re)build a store's SQLite index from its JSONL shards.

    Returns the number of rows indexed and attaches the index to the
    store handle, switching its reads to the ``sqlite`` reader.  Safe to
    run against a live store: the rebuild happens under the store's
    inter-process mutation lock, so no append can slip between the shard
    walk and the commit.
    """
    with span("store.index_build"):
        with store._disk_mutation_lock():
            store.refresh()
            index = store._index_handle or SqliteIndex(index_path(store))
            rows = index.replace_all(store.records())
        store.attach_index(index)
    get_registry().counter(
        "repro_store_index_builds_total", "SQLite index rebuilds"
    ).inc()
    return rows


def drop_index(store: "ExperimentStore") -> None:
    """Detach and delete a store's SQLite index (reads fall back to scans)."""
    handle = store._index_handle
    if handle is not None:
        handle.close()
    store.attach_index(None)
    for suffix in ("", "-wal", "-shm"):
        path = Path(str(index_path(store)) + suffix)
        if path.exists():
            os.unlink(path)


# ---------------------------------------------------------------------- #
# Reader registry
# ---------------------------------------------------------------------- #
@runtime_checkable
class StoreReader(Protocol):
    """A pluggable read strategy for :class:`ExperimentStore` lookups.

    ``name`` is the registry key (the string accepted by
    ``ExperimentStore(reader=...)``); :meth:`lookup` returns the raw
    record dict for a content key, or None.
    """

    name: str

    def lookup(self, store: "ExperimentStore", key: str) -> Optional[dict]:
        """The record stored under ``key``, or None when absent."""
        ...


class ReaderRegistry(NamedRegistry[StoreReader]):
    """Ordered name -> :class:`StoreReader` mapping.

    Example:
        >>> from repro.store.index import READERS
        >>> READERS.names()
        ('scan', 'sqlite')
    """

    kind = "reader"
    kind_plural = "readers"

    def validate(self, name: str, reader: StoreReader) -> None:
        if not callable(getattr(reader, "lookup", None)):
            raise StoreError(f"reader {name!r} must expose a callable 'lookup'")


#: The process-wide reader registry consulted by ``ExperimentStore``.
READERS = ReaderRegistry()

#: Register a reader class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_reader = make_register(READERS)


@register_reader
class ScanReader:
    """The original read path: lazy whole-shard parse, cached in memory."""

    name = "scan"

    def lookup(self, store: "ExperimentStore", key: str) -> Optional[dict]:
        return store._load_shard(store._prefix(key)).get(key)


@register_reader
class SqliteReader:
    """Point lookups against the SQLite index, with a shard-scan fallback.

    The fallback keeps correctness independent of index freshness: a
    record appended by a writer that never attached the index (older
    library, crashed mid-put) misses in SQLite but is still served from
    its shard — at scan cost, which the next ``repro cache index`` run
    repairs.
    """

    name = "sqlite"

    def lookup(self, store: "ExperimentStore", key: str) -> Optional[dict]:
        index = store._index_handle
        if index is None:  # pragma: no cover - defensive; attach precedes use
            return ScanReader().lookup(store, key)
        record = index.lookup(key)
        outcome = "hit"
        if record is None:
            record = store._load_shard(store._prefix(key)).get(key)
            outcome = "fallback" if record is not None else "miss"
        get_registry().counter(
            "repro_store_index_lookups_total", "SQLite index lookups by outcome"
        ).inc(outcome=outcome)
        return record


def resolve_reader(store: "ExperimentStore", reader: str) -> StoreReader:
    """Resolve a reader name (``auto`` picks sqlite when the index exists).

    An explicit ``reader="sqlite"`` against a store with no index file
    builds one on the spot — opting in means opting in to the build cost,
    not to silent scan behaviour.
    """
    if reader == "auto":
        reader = "sqlite" if index_path(store).exists() else "scan"
    resolved = READERS.get(reader)
    if resolved.name == "sqlite" and store._index_handle is None:
        if index_path(store).exists():
            store.attach_index(SqliteIndex(index_path(store)))
        else:
            build_index(store)
    return resolved


def index_summary(store: "ExperimentStore") -> Dict[str, object]:
    """Cheap index facts for ``disk_summary`` payloads (no row counting)."""
    path = index_path(store)
    return {
        "reader": store.reader_name,
        "indexed": path.exists(),
        "index_bytes": path.stat().st_size if path.exists() else 0,
    }


__all__ = [
    "INDEX_FILENAME",
    "READERS",
    "ScanReader",
    "SqliteIndex",
    "SqliteReader",
    "StoreReader",
    "build_index",
    "drop_index",
    "index_path",
    "index_summary",
    "register_reader",
    "resolve_reader",
]
