"""Canonical record keying for the experiment store.

Every store record is addressed by the SHA-256 of a *canonical JSON*
rendering of its key payload — a plain dict naming everything that
determines the record's value (experiment cell, strategy, simulated step
count, seed, and for fleet probes the placement policy and cluster shape).
Canonicalisation (sorted keys, compact separators, no NaN) guarantees the
same logical key always hashes to the same address regardless of dict
insertion order or the process that produced it, which is what lets
``inline``, ``thread`` and ``process`` backends — and entirely separate
OS processes — share one store without coordination.

The key payload also embeds the record ``kind`` (``"run"``,
``"estimate"``, ``"throughput"``) and the store schema version, so a
schema bump re-addresses every record instead of serving stale shapes.

Documented in ``docs/CACHING.md`` (keying scheme).
"""

from __future__ import annotations

import hashlib
import json
from typing import Tuple

from repro.core.config import ExperimentConfig
from repro.version import __version__

#: Version of the record schema; bumped when record payload shapes change.
SCHEMA_VERSION = 1


def canonical_json(payload: dict) -> str:
    """Deterministic JSON rendering: sorted keys, compact, NaN-free.

    Example:
        >>> from repro.store.keys import canonical_json
        >>> canonical_json({"b": 1, "a": [2, 3]})
        '{"a":[2,3],"b":1}'
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(kind: str, payload: dict) -> str:
    """SHA-256 address of a record: hash of (lib, schema, kind, key payload).

    The library version participates in the address: stored results are
    simulation outputs, and a release that refines the cost or simulation
    model must re-address every record rather than silently serve numbers
    the current library would no longer produce.  A version bump therefore
    cold-starts the cache — deliberately trading retention for the
    guarantee that a warm hit is always bit-identical to a fresh run.

    Example:
        >>> from repro.store.keys import content_key
        >>> a = content_key("run", {"x": 1, "y": 2})
        >>> b = content_key("run", {"y": 2, "x": 1})
        >>> (a == b, len(a))
        (True, 64)
    """
    envelope = {
        "lib": __version__,
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "key": payload,
    }
    return hashlib.sha256(canonical_json(envelope).encode("utf-8")).hexdigest()


def run_key(config: ExperimentConfig, strategy: str) -> dict:
    """Key payload for one simulated (cell, strategy, steps, seed) run."""
    return {
        "task": config.task,
        "dataset": config.dataset,
        "server": config.server,
        "num_gpus": config.num_gpus,
        "batch_size": config.batch_size,
        "strategy": strategy,
        "simulated_steps": config.simulated_steps,
        "seed": config.seed,
    }


def estimate_key(cell_signature: Tuple) -> dict:
    """Key payload for an analytic (simulation-free) epoch-time estimate."""
    task, dataset, server, num_gpus, batch_size, strategy = cell_signature
    return {
        "task": task,
        "dataset": dataset,
        "server": server,
        "num_gpus": num_gpus,
        "batch_size": batch_size,
        "strategy": strategy,
    }


def throughput_key(
    cell_signature: Tuple, steps: int, jobs: int, policy: str, cluster_dict: dict
) -> dict:
    """Key payload for a fleet-throughput probe.

    The cluster participates as its full serialised shape, not its name —
    two candidate fleets may share a (default) name yet differ in nodes.
    """
    payload = estimate_key(cell_signature)
    payload.update(
        {
            "simulated_steps": steps,
            "throughput_jobs": jobs,
            "policy": policy,
            "cluster": cluster_dict,
        }
    )
    return payload


def goodput_key(
    cell_signature: Tuple,
    steps: int,
    jobs: int,
    policy: str,
    cluster_dict: dict,
    fault_spec: dict,
    elastic: str,
    fault_seed: int,
    recovery: dict,
) -> dict:
    """Key payload for a fault-injected goodput probe.

    Extends :func:`throughput_key` with everything that changes the
    injected failures or their recovery cost: the full fault-model (or
    trace) spec, the elastic rescheduling policy, the fault seed and the
    recovery-cost parameters.  Two probes differing in any of these are
    different records — a warm replay only hydrates when the *entire*
    fault scenario matches.
    """
    payload = throughput_key(cell_signature, steps, jobs, policy, cluster_dict)
    payload.update(
        {
            "faults": fault_spec,
            "elastic": elastic,
            "fault_seed": fault_seed,
            "recovery": recovery,
        }
    )
    return payload


def slo_key(
    cell_signature: Tuple,
    steps: int,
    jobs: int,
    policy: str,
    cluster_dict: dict,
    tenants: Tuple[dict, ...],
    price_curve: dict,
    deadline_slack: float,
) -> dict:
    """Key payload for a multi-tenant SLO probe.

    Extends :func:`throughput_key` with everything that changes the
    contended-fleet scenario: the full tenant roster (specs serialised,
    order preserved — tenant order seeds the per-tenant arrival streams),
    the price curve and the deadline slack applied to deadline tenants.
    """
    payload = throughput_key(cell_signature, steps, jobs, policy, cluster_dict)
    payload.update(
        {
            "tenants": list(tenants),
            "price_curve": price_curve,
            "deadline_slack": deadline_slack,
        }
    )
    return payload
