"""Offline pregeneration of planning tables as a shipped data asset.

SNIPPETS.md Snippet 1 pregenerates 150 years of astronomy into a JSON
table so runtime lookups are O(1); this module does the same for
planning.  ``repro pregen`` sweeps a named grid — every registered
strategy x batch size x GPU count x server preset — through the existing
execution backends into an :class:`~repro.store.store.ExperimentStore`,
then stamps the artifact with a ``manifest.json`` so a consumer can
verify, resume and pin it:

* **Grid** (:class:`GridSpec`) — the canonical cell enumeration plus a
  deterministic :meth:`~GridSpec.grid_hash` over its canonical-JSON
  spec.  Placement policies are part of the spec (and the hash) because
  the artifact is advertised for a given policy registry, but run
  records are placement-independent, so policies do not multiply cells.
* **Manifest** (:class:`Manifest`) — ``{magic, schema_version, version,
  grid, grid_hash, row_count, complete, keys}`` written atomically to
  the store root.  The explicit content-key list makes gc pinning exact
  (:meth:`ExperimentStore.gc` never evicts a manifest-referenced row)
  and survives library version bumps that re-address fresh records.
* **Resume** (:func:`run_pregen`) — every cell is checked against the
  store first and only missing cells are simulated; interrupting a run
  loses nothing because the store's appends are atomic lines.  A re-run
  against a partial artifact therefore fills exactly the gap.
* **Index** — by default the run finishes by building the SQLite read
  index (:func:`repro.store.index.build_index`), so a
  ``PlannerService`` booted against the artifact gets point-query reads
  without configuration.

The payoff: any Session, tune, or serve instance boots against the
artifact and plans the full canonical grid without ever simulating —
asserted end-to-end by the ``pregen-smoke`` CI job.

Documented in ``docs/PREGEN.md``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from repro.core.config import ExperimentConfig
from repro.errors import StoreError, StoreSchemaError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.store.backends import CellTask, resolve_backend
from repro.store.keys import canonical_json, content_key, run_key
from repro.store.store import ExperimentStore
from repro.version import __version__

#: File name of the pregen manifest inside a store root.
MANIFEST_FILENAME = "manifest.json"

#: Identifies a manifest as ours (a foreign ``manifest.json`` is rejected,
#: never silently trusted for gc pinning).
MANIFEST_MAGIC = "repro-pregen"

#: Version of the manifest shape; bumped when fields change meaning.
MANIFEST_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------- #
# Grid specification
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridSpec:
    """A deterministic enumeration of (cell, strategy) pregen targets.

    Axes mirror :class:`~repro.core.config.ExperimentConfig`; ``policies``
    records the placement registry the artifact was generated for (it
    participates in the grid hash, not in the cell product — run records
    are placement-independent).

    Example:
        >>> from repro.store.pregen import resolve_grid
        >>> grid = resolve_grid("canonical")
        >>> (len(grid.cells()), len(grid.grid_hash()))
        (96, 64)
    """

    name: str
    tasks: Tuple[str, ...] = ("nas",)
    datasets: Tuple[str, ...] = ("cifar10",)
    servers: Tuple[str, ...] = ("a6000", "2080ti")
    gpu_counts: Tuple[int, ...] = (2, 4)
    batch_sizes: Tuple[int, ...] = (128, 256, 384, 512)
    strategies: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = ()
    steps: int = 10
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tasks": list(self.tasks),
            "datasets": list(self.datasets),
            "servers": list(self.servers),
            "gpu_counts": list(self.gpu_counts),
            "batch_sizes": list(self.batch_sizes),
            "strategies": list(self.strategies),
            "policies": list(self.policies),
            "steps": self.steps,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GridSpec":
        try:
            return cls(
                name=payload["name"],
                tasks=tuple(payload["tasks"]),
                datasets=tuple(payload["datasets"]),
                servers=tuple(payload["servers"]),
                gpu_counts=tuple(payload["gpu_counts"]),
                batch_sizes=tuple(payload["batch_sizes"]),
                strategies=tuple(payload["strategies"]),
                policies=tuple(payload["policies"]),
                steps=payload["steps"],
                seed=payload["seed"],
            )
        except (KeyError, TypeError) as error:
            raise StoreError(f"invalid pregen grid spec ({error})") from error

    def grid_hash(self) -> str:
        """SHA-256 over the canonical-JSON spec: same grid, same hash.

        Deliberately does *not* include the library version — the hash
        names the grid, while the store's content keys already re-address
        every record on a version bump.
        """
        envelope = {"pregen_grid": self.to_dict()}
        return hashlib.sha256(
            canonical_json(envelope).encode("utf-8")
        ).hexdigest()

    def cells(self) -> List[CellTask]:
        """Every (config, strategy) target, in deterministic axis order."""
        tasks: List[CellTask] = []
        for task, dataset, server, gpus, batch, strategy in itertools.product(
            self.tasks,
            self.datasets,
            self.servers,
            self.gpu_counts,
            self.batch_sizes,
            self.strategies,
        ):
            config = ExperimentConfig(
                task=task,
                dataset=dataset,
                server=server,
                num_gpus=gpus,
                batch_size=batch,
                simulated_steps=self.steps,
                seed=self.seed,
            )
            tasks.append((config, strategy))
        return tasks

    def cell_keys(self) -> List[str]:
        """The content key of every cell's run record (current lib version)."""
        return [
            content_key("run", run_key(config, strategy))
            for config, strategy in self.cells()
        ]


def _canonical_grid() -> GridSpec:
    """The full published grid: all registered strategies and policies."""
    from repro.cluster import POLICIES
    from repro.parallel.registry import REGISTRY

    return GridSpec(
        name="canonical",
        strategies=REGISTRY.names(),
        policies=POLICIES.names(),
    )


def _smoke_grid() -> GridSpec:
    """A small CI-sized grid (8 cells) sharing the canonical defaults.

    ``steps`` stays at the serve default so a bare ``/v1/plan`` request
    lands on a pregenerated cell.
    """
    return replace(
        _canonical_grid(),
        name="smoke",
        servers=("a6000",),
        batch_sizes=(128, 256),
        strategies=("DP", "TR"),
    )


#: Named grid factories accepted by ``repro pregen --grid``.
GRIDS: Dict[str, Callable[[], GridSpec]] = {
    "canonical": _canonical_grid,
    "smoke": _smoke_grid,
}


def resolve_grid(grid: Union[str, GridSpec]) -> GridSpec:
    """Accept a grid by name or as an explicit :class:`GridSpec`."""
    if isinstance(grid, GridSpec):
        spec = grid
    else:
        if grid not in GRIDS:
            raise StoreError(
                f"unknown pregen grid {grid!r}; choices: {sorted(GRIDS)}"
            )
        spec = GRIDS[grid]()
    _validate_grid(spec)
    return spec


def _validate_grid(spec: GridSpec) -> None:
    """Fail fast on unknown strategies / policies before simulating."""
    from repro.cluster import POLICIES
    from repro.parallel.registry import REGISTRY

    if not spec.strategies:
        raise StoreError(f"pregen grid {spec.name!r} names no strategies")
    for strategy in spec.strategies:
        REGISTRY.get(strategy)
    for policy in spec.policies:
        POLICIES.get(policy)


# ---------------------------------------------------------------------- #
# Manifest
# ---------------------------------------------------------------------- #
@dataclass
class Manifest:
    """The ``manifest.json`` stamped into a pregenerated store root.

    ``keys`` is the explicit, sorted content-key list of every grid cell —
    what :meth:`ExperimentStore.gc` pins, exactly and independently of
    the library version that later runs the gc.
    """

    grid: GridSpec
    grid_hash: str
    row_count: int
    complete: bool
    keys: Tuple[str, ...] = ()
    version: str = __version__
    schema_version: int = MANIFEST_SCHEMA_VERSION
    created_ts: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "magic": MANIFEST_MAGIC,
            "schema_version": self.schema_version,
            "version": self.version,
            "grid": self.grid.to_dict(),
            "grid_hash": self.grid_hash,
            "row_count": self.row_count,
            "complete": self.complete,
            "keys": sorted(self.keys),
            "created_ts": self.created_ts,
        }

    @classmethod
    def from_dict(cls, payload: dict, source: str = "manifest") -> "Manifest":
        if not isinstance(payload, dict) or payload.get("magic") != MANIFEST_MAGIC:
            raise StoreError(
                f"{source} is not a pregen manifest (bad magic); refusing to "
                "trust it for pinning — delete the file if it is stale"
            )
        if payload.get("schema_version") != MANIFEST_SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{source} has manifest schema "
                f"{payload.get('schema_version')!r} but this library reads "
                f"version {MANIFEST_SCHEMA_VERSION}; regenerate the artifact"
            )
        try:
            keys = payload["keys"]
            if not isinstance(keys, list) or not all(
                isinstance(key, str) for key in keys
            ):
                raise StoreError(f"{source} carries a malformed key list")
            return cls(
                grid=GridSpec.from_dict(payload["grid"]),
                grid_hash=payload["grid_hash"],
                row_count=int(payload["row_count"]),
                complete=bool(payload["complete"]),
                keys=tuple(keys),
                version=payload["version"],
                schema_version=payload["schema_version"],
                created_ts=float(payload.get("created_ts", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(f"{source} is malformed ({error})") from error


def manifest_path(root: Union[str, Path]) -> Path:
    return Path(root) / MANIFEST_FILENAME


def load_manifest(root: Union[str, Path]) -> Optional[Manifest]:
    """The manifest in a store root, or None when there is none.

    Raises :class:`~repro.errors.StoreError` on a corrupt or foreign
    ``manifest.json`` — callers (gc pinning above all) must fail loudly
    rather than guess which rows an unreadable manifest meant to pin.
    """
    path = manifest_path(root)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise StoreError(
            f"pregen manifest {path} is unreadable ({error}); delete it or "
            "regenerate the artifact with 'repro pregen'"
        ) from error
    return Manifest.from_dict(payload, source=str(path))


def save_manifest(root: Union[str, Path], manifest: Manifest) -> Path:
    """Atomically write a manifest into a store root; returns its path."""
    path = manifest_path(root)
    ExperimentStore._write_atomic(
        path, json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def manifest_record_keys(root: Union[str, Path]) -> FrozenSet[str]:
    """Content keys pinned by the manifest in ``root`` (empty when none)."""
    manifest = load_manifest(root)
    if manifest is None:
        return frozenset()
    return frozenset(manifest.keys)


# ---------------------------------------------------------------------- #
# The pregen run
# ---------------------------------------------------------------------- #
@dataclass
class PregenReport:
    """What one :func:`run_pregen` call did, JSON-ready for the CLI."""

    grid: str
    grid_hash: str
    total_cells: int
    simulated: int
    skipped: int
    row_count: int
    complete: bool
    duration_s: float
    indexed_rows: Optional[int]
    store_root: str
    manifest: str

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def run_pregen(
    store: ExperimentStore,
    grid: Union[str, GridSpec] = "canonical",
    backend: str = "inline",
    workers: Optional[int] = None,
    max_cells: Optional[int] = None,
    index: bool = True,
) -> PregenReport:
    """Sweep a grid into ``store``, resuming past cells already present.

    ``max_cells`` bounds how many *missing* cells this invocation
    simulates (the deterministic stand-in for an interrupt: the CI smoke
    job generates a partial artifact with it, then proves a plain re-run
    fills exactly the remainder).  ``index=False`` skips the SQLite
    index build; ``workers`` specialises the ``thread`` / ``process``
    backends.

    The manifest is written *before* simulating (``complete=False``, so
    an interrupted artifact is recognisably partial and its rows are
    already pinned against gc) and rewritten atomically at the end.
    """
    from repro.core.session import Session
    from repro.store.backends import ProcessBackend, ThreadBackend
    from repro.store.index import build_index

    if max_cells is not None and max_cells < 0:
        raise StoreError("pregen max_cells must be >= 0")
    spec = resolve_grid(grid)
    resolved = resolve_backend(backend)
    if workers is not None:
        if resolved.name == "thread":
            resolved = ThreadBackend(max_workers=workers)
        elif resolved.name == "process":
            resolved = ProcessBackend(max_workers=workers)

    started = time.perf_counter()
    with span("pregen.run", grid=spec.name, backend=resolved.name):
        store.refresh()
        session = Session(store=store)
        cells = spec.cells()
        keys = spec.cell_keys()
        missing = [
            task for task in cells if not session.in_store(task[0], task[1])
        ]
        skipped = len(cells) - len(missing)
        todo = missing if max_cells is None else missing[:max_cells]

        manifest = Manifest(
            grid=spec,
            grid_hash=spec.grid_hash(),
            row_count=skipped,
            complete=skipped == len(cells),
            keys=tuple(keys),
        )
        save_manifest(store.root, manifest)

        if todo:
            with span("pregen.simulate", cells=len(todo)):
                resolved.run_cells(session, todo)

        present = sum(
            1 for config, strategy in cells if session.in_store(config, strategy)
        )
        manifest.row_count = present
        manifest.complete = present == len(cells)
        save_manifest(store.root, manifest)

        indexed_rows = build_index(store) if index else None

    registry = get_registry()
    counter = registry.counter(
        "repro_pregen_cells_total", "pregen grid cells by outcome"
    )
    counter.inc(len(todo), outcome="simulated")
    counter.inc(skipped, outcome="skipped")
    return PregenReport(
        grid=spec.name,
        grid_hash=manifest.grid_hash,
        total_cells=len(cells),
        simulated=len(todo),
        skipped=skipped,
        row_count=present,
        complete=manifest.complete,
        duration_s=time.perf_counter() - started,
        indexed_rows=indexed_rows,
        store_root=str(store.root),
        manifest=str(manifest_path(store.root)),
    )


__all__ = [
    "GRIDS",
    "GridSpec",
    "MANIFEST_FILENAME",
    "MANIFEST_MAGIC",
    "MANIFEST_SCHEMA_VERSION",
    "Manifest",
    "PregenReport",
    "load_manifest",
    "manifest_path",
    "manifest_record_keys",
    "resolve_grid",
    "run_pregen",
    "save_manifest",
]
