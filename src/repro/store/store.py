"""The on-disk experiment store: content-addressed, shard-per-prefix JSONL.

Layout (all under one root directory)::

    <root>/meta.json            # {"magic": "repro-store", "schema_version": N}
    <root>/shards/<pp>.jsonl    # records whose key starts with hex prefix pp
    <root>/quarantine/<pp>.jsonl# corrupt / wrong-schema lines, moved aside

Each record is one JSON line ``{"key", "kind", "schema", "ts", "value"}``
addressed by the canonical content key of :mod:`repro.store.keys`.  Design
rules, in order of importance:

* **Durability over cleverness** — writes are single ``write()`` appends of
  one ``\\n``-terminated line to an ``O_APPEND`` handle, which POSIX keeps
  atomic at these sizes, so concurrent writers (the ``process`` execution
  backend, parallel CI shards) interleave whole lines, never torn ones.
  Shard *rewrites* (gc, quarantine sweeps) go through a temp file and
  ``os.replace``.
* **Corruption is quarantined, not fatal** — a line that fails to parse, is
  missing fields, or carries a foreign schema version is moved to
  ``quarantine/`` and the shard is rewritten without it; every valid record
  keeps serving.
* **Versioned schema** — ``meta.json`` pins the store's schema version; a
  mismatch raises :class:`~repro.errors.StoreSchemaError` instead of
  silently serving stale shapes.
* **Duplicates are harmless** — two processes racing the same cell append
  identical content under the same key; the reader keeps the last.

Documented in ``docs/CACHING.md`` (store layout and gc policy).
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.errors import StoreError, StoreSchemaError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.store.keys import SCHEMA_VERSION, canonical_json, content_key

#: Bucket boundaries for the lines-scanned-per-shard histogram (records,
#: not seconds — sized for shards from a handful of lines to ~100k).
SCAN_LINE_BUCKETS = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0)

#: Identifies a directory as an experiment store (guards against pointing
#: ``--store`` at an unrelated directory and gc'ing it).
STORE_MAGIC = "repro-store"

#: Fields every record line must carry to be considered valid.
RECORD_FIELDS = ("key", "kind", "schema", "ts", "value")


@dataclass
class StoreStats:
    """Point-in-time snapshot of a store plus its runtime counters.

    Example:
        >>> from repro.store.store import StoreStats
        >>> StoreStats(records=10, hits=30, misses=10).hit_rate()
        0.75
    """

    records: int = 0
    shards: int = 0
    disk_bytes: int = 0
    quarantined_records: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def hit_rate(self) -> float:
        """Warm fraction of lookups served from disk (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        payload = dict(self.__dict__)
        payload["hit_rate"] = self.hit_rate()
        return payload


class ExperimentStore:
    """Content-addressed persistent cache of experiment results.

    Example:
        >>> import tempfile
        >>> from repro.store import ExperimentStore
        >>> store = ExperimentStore(tempfile.mkdtemp())
        >>> key = store.put("run", {"cell": "demo"}, {"epoch_time_s": 1.5})
        >>> store.get("run", {"cell": "demo"})["epoch_time_s"]
        1.5
    """

    def __init__(self, root: Union[str, Path], reader: str = "auto") -> None:
        self.root = Path(root)
        #: Guards the in-memory index and counters only — held briefly, and
        #: never while blocking on disk, so index reads are never stalled by
        #: another process's long-held flock.
        self._lock = threading.RLock()
        #: Serialises this process's *disk mutators* (appends, rewrites) and
        #: carries the cross-process flock.  Lock ordering is always
        #: ``_disk_rlock`` before ``_lock``; nothing acquires them reversed.
        self._disk_rlock = threading.RLock()
        #: Per-shard in-memory index, loaded lazily: prefix -> {key: record}.
        self._index: Dict[str, Dict[str, dict]] = {}
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        #: Re-entrancy depth of the flock (guarded by ``_disk_rlock``, so
        #: only the owning thread can observe or change it).
        self._disk_lock_depth = 0
        self._disk_lock_handle = None
        #: Attached SQLite index handle (None while reading via shard scans).
        self._index_handle = None
        self._open()
        # Resolve the read strategy last: ``auto`` inspects the on-disk
        # layout (picking the SQLite index when one exists), so the store
        # directory must already be validated.
        from repro.store.index import resolve_reader

        self._reader = resolve_reader(self, reader)

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def reader_name(self) -> str:
        """Name of the active read strategy (``"scan"`` or ``"sqlite"``)."""
        return self._reader.name

    def attach_index(self, index) -> None:
        """Attach (or detach, with None) a SQLite index handle.

        With an index attached, reads go through it and every
        :meth:`put` mirrors its append into the index; detaching falls
        reads back to shard scans.  :func:`repro.store.index.build_index`
        and :func:`~repro.store.index.drop_index` are the public entry
        points — they keep the on-disk file and this handle in step.
        """
        from repro.store.index import READERS

        self._index_handle = index
        self._reader = READERS.get("sqlite" if index is not None else "scan")

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def meta_path(self) -> Path:
        return self.root / "meta.json"

    def _open(self) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self.shards_dir.mkdir(exist_ok=True)
            self.quarantine_dir.mkdir(exist_ok=True)
        except OSError as error:
            # e.g. --store pointing at an existing file, or an unwritable
            # parent: surface a library error the CLI reports cleanly
            # instead of a raw FileExistsError traceback.
            raise StoreError(
                f"cannot open experiment store at {self.root} ({error}); "
                "--store must name a writable directory"
            ) from error
        if self.meta_path.exists():
            try:
                meta = json.loads(self.meta_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise StoreError(
                    f"store meta {self.meta_path} is unreadable ({error}); "
                    "delete the directory to start a fresh store"
                ) from error
            if meta.get("magic") != STORE_MAGIC:
                raise StoreError(
                    f"{self.root} is not an experiment store (bad magic in "
                    "meta.json); refusing to touch it"
                )
            if meta.get("schema_version") != SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"store {self.root} has schema version "
                    f"{meta.get('schema_version')!r} but this library writes "
                    f"version {SCHEMA_VERSION}; migrate or use a fresh --store "
                    "path"
                )
        else:
            self._write_atomic(
                self.meta_path,
                json.dumps(
                    {"magic": STORE_MAGIC, "schema_version": SCHEMA_VERSION},
                    indent=2,
                )
                + "\n",
            )

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Write a whole file through a same-directory temp + rename."""
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @contextmanager
    def _disk_mutation_lock(self):
        """Exclusive inter-process lock over every disk mutation.

        Appends are single atomic lines, but shard *rewrites* (quarantine
        sweeps, gc) read-modify-replace whole files: without exclusion, a
        record appended by another process between the read and the
        ``os.replace`` would be silently dropped.  All mutators — appends
        included — therefore serialise on ``<root>/.lock`` via ``flock``.
        Re-entrant within a thread; a no-op where ``fcntl`` is missing.

        Deliberately does NOT touch ``_lock``: a mutator blocking on
        another process's flock (e.g. a long ``cache gc`` elsewhere) must
        not stall this process's pure in-memory index reads.
        """
        with self._disk_rlock:
            self._disk_lock_depth += 1
            if self._disk_lock_depth == 1 and fcntl is not None:
                self._disk_lock_handle = open(self.root / ".lock", "a")
                fcntl.flock(self._disk_lock_handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                self._disk_lock_depth -= 1
                if self._disk_lock_depth == 0 and self._disk_lock_handle is not None:
                    fcntl.flock(self._disk_lock_handle, fcntl.LOCK_UN)
                    self._disk_lock_handle.close()
                    self._disk_lock_handle = None

    @staticmethod
    def _prefix(key: str) -> str:
        return key[:2]

    def _shard_path(self, prefix: str) -> Path:
        return self.shards_dir / f"{prefix}.jsonl"

    # ------------------------------------------------------------------ #
    # Shard loading and quarantine
    # ------------------------------------------------------------------ #
    def _load_shard(self, prefix: str) -> Dict[str, dict]:
        """Parse one shard, quarantining invalid lines, and cache its index."""
        with self._lock:
            if prefix in self._index:
                return self._index[prefix]
        index, bad_lines = self._read_shard(prefix)
        if bad_lines:
            # Re-read under the inter-process mutation lock: another process
            # may have appended valid records since the optimistic read, and
            # the quarantine rewrite must not drop them.
            with self._disk_mutation_lock():
                index, bad_lines = self._read_shard(prefix)
                if bad_lines:
                    self._quarantine(prefix, bad_lines, index)
        with self._lock:
            # Another thread may have finished loading first; keep its view.
            return self._index.setdefault(prefix, index)

    def _read_shard(self, prefix: str):
        """One pass over a shard file: (key -> record index, invalid lines).

        Every pass is timed and sized into the ``repro_store_shard_scan_*``
        histograms — the data ROADMAP item 2 (read-optimized index) waits
        on: when scans dominate the serve latency profile, these say so.
        """
        path = self._shard_path(prefix)
        index: Dict[str, dict] = {}
        bad_lines: List[str] = []
        lines_scanned = 0
        started = time.perf_counter()
        with span("store.scan", shard=prefix):
            if path.exists():
                for line in path.read_text().splitlines():
                    if not line.strip():
                        continue
                    lines_scanned += 1
                    record = self._parse_record(line)
                    if record is None:
                        bad_lines.append(line)
                    else:
                        index[record["key"]] = record
        registry = get_registry()
        registry.histogram(
            "repro_store_shard_scan_seconds", "wall time of one JSONL shard scan"
        ).observe(time.perf_counter() - started)
        registry.histogram(
            "repro_store_shard_scan_lines",
            "record lines parsed per shard scan",
            buckets=SCAN_LINE_BUCKETS,
        ).observe(lines_scanned)
        return index, bad_lines

    @staticmethod
    def _parse_record(line: str) -> Optional[dict]:
        """A valid record dict, or None when the line must be quarantined."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        if any(field not in record for field in RECORD_FIELDS):
            return None
        if record["schema"] != SCHEMA_VERSION:
            return None
        return record

    def _quarantine(self, prefix: str, bad_lines: List[str], index: Dict[str, dict]) -> None:
        """Move invalid lines aside and rewrite the shard with valid records.

        Callers must hold the disk mutation lock and pass an ``index`` read
        under it.
        """
        quarantine_path = self.quarantine_dir / f"{prefix}.jsonl"
        with open(quarantine_path, "a") as handle:
            handle.write("".join(line + "\n" for line in bad_lines))
        body = "".join(canonical_json(record) + "\n" for record in index.values())
        shard = self._shard_path(prefix)
        if body:
            self._write_atomic(shard, body)
        elif shard.exists():
            shard.unlink()

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def get(self, kind: str, key_payload: dict) -> Optional[dict]:
        """The stored value for a key, or None (counted as hit / miss).

        The value is deep-copied out of the in-memory index: results are
        hydrated from it by reference-heavy code (plans, metadata dicts)
        that may mutate what it receives, and a caller's mutation must
        never poison later hydrations of the same key.
        """
        key = content_key(kind, key_payload)
        with span("store.get", kind=kind):
            record = self._reader.lookup(self, key)
            hit = record is not None and record["kind"] == kind
            with self._lock:
                if hit:
                    self._hits += 1
                else:
                    self._misses += 1
            get_registry().counter(
                "repro_store_lookups_total", "store lookups by result"
            ).inc(result="hit" if hit else "miss")
            if not hit:
                return None
            with span("store.hydrate", kind=kind):
                return copy.deepcopy(record["value"])

    def contains(self, kind: str, key_payload: dict) -> bool:
        """Whether a record exists, without touching the hit/miss counters."""
        key = content_key(kind, key_payload)
        record = self._reader.lookup(self, key)
        return record is not None and record["kind"] == kind

    def put(self, kind: str, key_payload: dict, value: dict) -> str:
        """Persist one record (single atomic line append); returns its key."""
        key = content_key(kind, key_payload)
        record = {
            "key": key,
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "ts": time.time(),
            "value": value,
        }
        line = canonical_json(record) + "\n"
        prefix = self._prefix(key)
        with span("store.put", kind=kind, shard=prefix):
            with self._disk_mutation_lock():
                with open(self._shard_path(prefix), "a") as handle:
                    handle.write(line)
                if self._index_handle is not None:
                    # Mirror the append while still holding the flock, so
                    # the index can never carry a row the shards lack.
                    self._index_handle.insert(record)
                with self._lock:
                    if prefix in self._index:
                        self._index[prefix][key] = record
                    self._puts += 1
        get_registry().counter(
            "repro_store_puts_total", "records appended to the store"
        ).inc(kind=kind)
        return key

    def refresh(self) -> None:
        """Drop the in-memory index so later reads see other writers' lines."""
        with self._lock:
            self._index.clear()

    def _quarantined_on_disk(self) -> int:
        """Count of lines currently parked in the quarantine directory."""
        return sum(
            sum(1 for line in path.read_text().splitlines() if line.strip())
            for path in self.quarantine_dir.glob("*.jsonl")
        )

    # ------------------------------------------------------------------ #
    # Whole-store operations
    # ------------------------------------------------------------------ #
    def _shard_prefixes(self) -> List[str]:
        return sorted(path.stem for path in self.shards_dir.glob("*.jsonl"))

    def records(self) -> Iterator[dict]:
        """Every valid record, shard by shard (loads the whole store)."""
        for prefix in self._shard_prefixes():
            yield from list(self._load_shard(prefix).values())

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def gc(
        self,
        max_records: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Evict expired / excess records; returns how many were dropped.

        Age eviction drops records older than ``max_age_seconds``; capacity
        eviction then keeps only the ``max_records`` newest.  Surviving
        shards are rewritten atomically; quarantined lines are purged.

        Records referenced by a pregen ``manifest.json`` in the store root
        are **pinned**: they survive both bounds unconditionally (the
        artifact's zero-simulation guarantee must not rot under routine
        gc), so a store holding a pregen artifact may legitimately keep
        more than ``max_records`` rows.  Delete the manifest to unpin.
        """
        if max_records is not None and max_records < 0:
            raise StoreError("gc max_records must be >= 0")
        with self._disk_mutation_lock():
            # Reload under the lock so concurrent appenders cannot slip a
            # record between the read and the shard rewrites below.
            with self._lock:
                self._index.clear()
            pinned_keys = self._pinned_keys()
            all_records = list(self.records())
            pinned = [r for r in all_records if r["key"] in pinned_keys]
            survivors = [r for r in all_records if r["key"] not in pinned_keys]
            before = len(survivors)
            if max_age_seconds is not None:
                horizon = time.time() - max_age_seconds
                survivors = [r for r in survivors if r["ts"] >= horizon]
            if max_records is not None and len(survivors) > max_records:
                survivors.sort(key=lambda record: record["ts"])
                survivors = survivors[len(survivors) - max_records:]
            evicted = before - len(survivors)
            survivors.extend(pinned)

            by_prefix: Dict[str, List[dict]] = {}
            for record in survivors:
                by_prefix.setdefault(self._prefix(record["key"]), []).append(record)
            for prefix in self._shard_prefixes():
                keep = by_prefix.get(prefix, [])
                shard = self._shard_path(prefix)
                if keep:
                    self._write_atomic(
                        shard, "".join(canonical_json(r) + "\n" for r in keep)
                    )
                elif shard.exists():
                    shard.unlink()
            for stale in self.quarantine_dir.glob("*.jsonl"):
                stale.unlink()
            if self._index_handle is not None:
                # The shard rewrites above invalidated the SQLite mirror;
                # rebuild it from the survivors while still holding the
                # flock so no appender can race the two representations
                # apart.
                self._index_handle.replace_all(survivors)
            with self._lock:
                self._index.clear()
                self._evictions += evicted
            return evicted

    def _pinned_keys(self) -> frozenset:
        """Content keys pinned by a pregen ``manifest.json`` in the root.

        Imported lazily: :mod:`repro.store.pregen` builds on this module.
        """
        from repro.store.pregen import manifest_record_keys

        return manifest_record_keys(self.root)

    def export(self) -> dict:
        """JSON-serialisable dump of the whole store (``cache export``)."""
        records = sorted(self.records(), key=lambda record: record["key"])
        return {
            "schema_version": SCHEMA_VERSION,
            "root": str(self.root),
            "num_records": len(records),
            "records": records,
        }

    def disk_summary(self) -> dict:
        """Cheap O(#shards) view: directory stats without parsing records.

        Suitable for embedding in every CLI payload; use :meth:`stats` /
        ``cache stats`` when record counts by kind are worth a full load.
        """
        from repro.store.index import index_summary

        shard_paths = list(self.shards_dir.glob("*.jsonl"))
        summary = {
            "root": str(self.root),
            "shards": len(shard_paths),
            "disk_bytes": sum(path.stat().st_size for path in shard_paths),
        }
        summary.update(index_summary(self))
        return summary

    def _build_stats(self, num_records: int) -> StoreStats:
        """Assemble a :class:`StoreStats` from a just-completed record walk.

        Callers walk the records first: lazy shard loading is what performs
        the quarantine sweep, so the quarantine directory must be inspected
        *after* the walk.
        """
        disk = self.disk_summary()
        quarantined = self._quarantined_on_disk()
        with self._lock:
            return StoreStats(
                records=num_records,
                shards=disk["shards"],
                disk_bytes=disk["disk_bytes"],
                quarantined_records=quarantined,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
            )

    def stats(self) -> StoreStats:
        """Disk-level aggregates plus this handle's runtime counters."""
        return self._build_stats(sum(1 for _ in self.records()))

    def overview(self) -> dict:
        """Stats plus a per-record-kind histogram, from one record walk."""
        kinds: Dict[str, int] = {}
        num_records = 0
        for record in self.records():
            num_records += 1
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        return {
            "root": str(self.root),
            "stats": self._build_stats(num_records).to_dict(),
            "records_by_kind": dict(sorted(kinds.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentStore(root={str(self.root)!r})"


def open_store(
    store: Union["ExperimentStore", str, Path, None]
) -> Optional[ExperimentStore]:
    """Coerce a store argument (instance, path or None) to a store handle."""
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)
