"""Autotuner: search strategy x granularity x hardware x placement jointly.

Pipe-BD's core claim is that the right parallelisation is hardware- and
workload-dependent; this package makes the system *find* it instead of
making the user enumerate grids.  A :class:`~repro.tune.space.TuneSpace`
describes the candidate grid, an objective (``epoch_time``,
``jobs_per_hour``, ``cost``) scores candidates, a pluggable search driver
(``exhaustive``, ``random``, ``successive-halving``) decides what to
evaluate under a simulation budget, and the session-backed incremental
evaluator makes re-evaluation nearly free.  Results carry a Pareto frontier
over epoch time x GPUs x memory, with dominated points pruned.

Documented in ``docs/TUNING.md`` (guide) and ``docs/API.md`` (reference);
frontier reporting lives in :mod:`repro.analysis.pareto`.
"""

from repro.tune.space import TunePoint, TuneSpace, default_space
from repro.tune.objective import (
    GPU_HOURLY_RATES,
    MinCostUnderDeadline,
    OBJECTIVES,
    TuneMeasurement,
    cost_per_epoch,
    register_objective,
    resolve_objective,
)
from repro.tune.evaluator import EvaluatorStats, TuneEvaluator
from repro.tune.drivers import DRIVERS, DriverRun, SearchDriver, register_driver
from repro.tune.result import PARETO_AXES, TuneResult, dominates, pareto_frontier
from repro.tune.tuner import tune

__all__ = [
    "TunePoint",
    "TuneSpace",
    "default_space",
    "GPU_HOURLY_RATES",
    "MinCostUnderDeadline",
    "OBJECTIVES",
    "TuneMeasurement",
    "cost_per_epoch",
    "register_objective",
    "resolve_objective",
    "EvaluatorStats",
    "TuneEvaluator",
    "DRIVERS",
    "DriverRun",
    "SearchDriver",
    "register_driver",
    "PARETO_AXES",
    "TuneResult",
    "dominates",
    "pareto_frontier",
    "tune",
]
