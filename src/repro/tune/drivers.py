"""Pluggable search drivers and their registry.

Covered by ``docs/TUNING.md`` (driver guide) and ``docs/API.md``.

A driver decides *which* candidates of a :class:`~repro.tune.space.TuneSpace`
to evaluate, and at what fidelity, under a simulation budget.  Drivers are
pluggable through :data:`DRIVERS` — a registry mirroring the strategy and
placement-policy registries — so a custom search plugs into ``Session.tune``
and the CLI by name:

    from repro.tune.drivers import register_driver

    @register_driver
    class MySearch:
        name = "my-search"

        def search(self, space, objective, evaluator, *, budget, seed):
            ...return a DriverRun...

Three built-ins cover the classic trade-offs:

* ``"exhaustive"`` — simulate every candidate (ground truth, budget-capped),
* ``"random"`` — a seeded uniform sample of the grid,
* ``"successive-halving"`` — rank everything with free analytic estimates,
  simulate the survivors at low fidelity, then promote the best to full
  fidelity; finds the grid optimum while simulating far fewer cells.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Protocol, Tuple, runtime_checkable

from repro.errors import ConfigurationError
from repro.registry import NamedRegistry, make_register
from repro.tune.evaluator import TuneEvaluator
from repro.tune.objective import TuneMeasurement
from repro.tune.space import TuneSpace

#: Lowest simulation fidelity a driver may use (the executor's minimum).
MIN_FIDELITY_STEPS = 4


@dataclass
class DriverRun:
    """What a driver hands back: full-fidelity evaluations plus telemetry.

    Example:
        >>> from repro.tune.drivers import DriverRun
        >>> DriverRun(evaluated=(), trajectory=(), notes={"truncated": False}).notes
        {'truncated': False}
    """

    evaluated: Tuple[TuneMeasurement, ...]
    trajectory: Tuple[dict, ...] = ()
    notes: dict = field(default_factory=dict)


@runtime_checkable
class SearchDriver(Protocol):
    """A pluggable tuning search.

    ``search`` receives the space, the (resolved) objective, a
    :class:`~repro.tune.evaluator.TuneEvaluator` and a simulation budget;
    it returns a :class:`DriverRun` whose ``evaluated`` measurements are all
    full-fidelity (estimates never leave the driver).
    """

    name: str

    def search(
        self,
        space: TuneSpace,
        objective,
        evaluator: TuneEvaluator,
        *,
        budget: int,
        seed: int,
    ) -> DriverRun:
        """Explore the space and return the evaluated candidates."""
        ...


class DriverRegistry(NamedRegistry[SearchDriver]):
    """Ordered name -> :class:`SearchDriver` mapping with validation."""

    kind = "search driver"
    kind_plural = "drivers"

    def validate(self, name: str, driver: SearchDriver) -> None:
        if not callable(getattr(driver, "search", None)):
            raise ConfigurationError(f"driver {name!r} must expose a callable 'search'")


#: The process-wide search-driver registry.
DRIVERS = DriverRegistry()

#: Register a driver class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_driver = make_register(DRIVERS)


def _evaluate_all(
    points,
    objective,
    evaluator: TuneEvaluator,
) -> Tuple[Tuple[TuneMeasurement, ...], Tuple[dict, ...]]:
    """Fully evaluate candidates in order, tracking best-so-far convergence."""
    measurements: List[TuneMeasurement] = []
    trajectory: List[dict] = []
    best_key = None
    for point in points:
        measurement = evaluator.evaluate(point, objective)
        measurements.append(measurement)
        key = objective.key(measurement)
        if best_key is None or key < best_key:
            best_key = key
            trajectory.append(
                {
                    "simulations": evaluator.stats.simulations,
                    "best_score": objective.score(measurement),
                    "best_label": point.label(),
                }
            )
    return tuple(measurements), tuple(trajectory)


# ---------------------------------------------------------------------- #
# Built-in drivers
# ---------------------------------------------------------------------- #
@register_driver
class ExhaustiveSearch:
    """Simulate every candidate of the grid, in grid order (budget-capped).

    The ground truth the cheaper drivers are measured against.  If the grid
    exceeds the budget only the first ``budget`` candidates run and the run
    is flagged ``notes["truncated"] = True``.

    Example:
        >>> from repro.tune.drivers import DRIVERS
        >>> DRIVERS.get("exhaustive").name
        'exhaustive'
    """

    name = "exhaustive"

    def search(self, space, objective, evaluator, *, budget, seed) -> DriverRun:
        points = space.points()
        truncated = len(points) > budget
        evaluated, trajectory = _evaluate_all(points[:budget], objective, evaluator)
        return DriverRun(
            evaluated=evaluated,
            trajectory=trajectory,
            notes={"truncated": truncated, "grid_size": len(points)},
        )


@register_driver
class RandomSearch:
    """A seeded uniform sample of ``budget`` distinct candidates.

    Deterministic for a given seed: the same ``(space, budget, seed)`` always
    evaluates the same candidates in the same order.

    Example:
        >>> from repro.tune.drivers import DRIVERS
        >>> DRIVERS.get("random").name
        'random'
    """

    name = "random"

    def search(self, space, objective, evaluator, *, budget, seed) -> DriverRun:
        points = list(space.points())
        rng = random.Random(seed)
        if budget < len(points):
            points = rng.sample(points, budget)
        evaluated, trajectory = _evaluate_all(points, objective, evaluator)
        return DriverRun(
            evaluated=evaluated,
            trajectory=trajectory,
            notes={"grid_size": len(space), "sampled": len(points)},
        )


@register_driver
class SuccessiveHalving:
    """Estimate everything, simulate survivors, promote the best (eta=2).

    Three rungs of increasing fidelity:

    1. *Estimate* every candidate analytically (free — no discrete-event
       simulation) and rank by the objective's proxy key.
    2. Simulate the top ``budget - budget // (1 + eta)`` candidates at the
       minimum fidelity (``4`` steps) and re-rank on real simulations.
    3. Promote the top ``budget // (1 + eta)`` to full fidelity; these are
       the measurements the frontier and winner are drawn from.

    Total simulations never exceed ``budget``, and the number of *distinct
    cells* simulated is the rung-2 width — strictly less than the grid
    whenever the grid outgrows the budget.

    Example:
        >>> from repro.tune.drivers import DRIVERS
        >>> DRIVERS.get("successive-halving").eta
        2
    """

    name = "successive-halving"
    eta = 2

    def search(self, space, objective, evaluator, *, budget, seed) -> DriverRun:
        points = space.points()
        # Rung 0 goes through the batch entry point: one span + counter for
        # the whole grid, vectorized plan scoring underneath.
        estimates = evaluator.estimate_all(points)
        ranked = sorted(points, key=lambda point: objective.proxy_key(estimates[point]))

        full_steps = evaluator.simulated_steps
        final_width = max(1, budget // (1 + self.eta))
        low_width = min(len(ranked), budget - final_width)
        final_width = min(final_width, low_width) if low_width else min(len(ranked), budget)

        if full_steps <= MIN_FIDELITY_STEPS or low_width <= final_width:
            # No fidelity gap (or budget too small to stage): single rung.
            survivors = ranked[: min(len(ranked), budget)]
            evaluated, trajectory = _evaluate_all(survivors, objective, evaluator)
            return DriverRun(
                evaluated=evaluated,
                trajectory=trajectory,
                notes={
                    "grid_size": len(points),
                    "rungs": [{"fidelity": full_steps, "width": len(survivors)}],
                },
            )

        # Fleet objectives probe the cluster at low fidelity too: the probe
        # rides the shared epoch-time memo, and only a real jobs/hour number
        # can rank placement policies against each other.
        needs_cluster = getattr(objective, "needs_cluster", False)
        rung_low = {
            point: (
                evaluator.evaluate(point, objective, steps=MIN_FIDELITY_STEPS)
                if needs_cluster
                else evaluator.measure(point, steps=MIN_FIDELITY_STEPS)
            )
            for point in ranked[:low_width]
        }
        rank_key = objective.key if needs_cluster else objective.proxy_key
        promoted = sorted(rung_low, key=lambda point: rank_key(rung_low[point]))
        promoted = promoted[:final_width]
        evaluated, trajectory = _evaluate_all(promoted, objective, evaluator)
        return DriverRun(
            evaluated=evaluated,
            trajectory=trajectory,
            notes={
                "grid_size": len(points),
                "rungs": [
                    {"fidelity": 0, "width": len(points)},
                    {"fidelity": MIN_FIDELITY_STEPS, "width": low_width},
                    {"fidelity": full_steps, "width": len(promoted)},
                ],
            },
        )
