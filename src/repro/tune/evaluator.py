"""The incremental evaluator: analytic estimates and memoised simulations.

Covered by ``docs/TUNING.md`` (fidelity model) and ``docs/API.md``.

A :class:`TuneEvaluator` wraps one :class:`~repro.core.session.Session` and
offers three fidelities, each cheaper than the last thanks to two layers of
reuse:

* :meth:`estimate` — an *analytic* epoch-time estimate that never runs the
  discrete-event simulator.  Pipeline plans are scored with the profile-backed
  :class:`~repro.parallel.estimator.StageTimeEstimator` (max stage time, as in
  the paper's AHD search); layerwise and data-parallel plans with the same
  cost-model sums the executor uses for task durations.  Profiles come from
  the session cache, so one profile serves every strategy of a cell.
* :meth:`measure` — a full discrete-event simulation via ``Session.run``,
  memoised by ``(cell, strategy, steps)`` so refinement rounds only
  re-simulate changed cells.
* :meth:`throughput` — a fleet probe for ``jobs_per_hour`` objectives: a
  batch of identical jobs gang-scheduled by a
  :class:`~repro.cluster.simulator.ClusterSimulator` whose epoch-time memo is
  shared across *all* probes of a search, so policies replay the fleet
  without new discrete-event simulations.  Two sibling probes reuse the
  same memo: :meth:`goodput` (fault-injected fleets) and :meth:`slo`
  (contended multi-tenant fleets with deadlines and price curves).

When the wrapped session carries a persistent
:class:`~repro.store.store.ExperimentStore`, every fidelity additionally
hydrates from and writes through it — estimates and fleet probes under
their own record kinds, simulations via ``Session.run``'s store path — so
a *restarted* tune against the same store performs zero simulations
(``EvaluatorStats.store_hydrations`` counts the replays).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from repro.cluster.faults import (
    FAULT_PRESETS,
    FaultModel,
    FaultTrace,
    RecoveryModel,
    parse_fault_spec,
)
from repro.cluster.market import PriceCurve, parse_price_curve
from repro.cluster.simulator import ClusterSimulator, EpochKey
from repro.cluster.spec import default_cluster
from repro.cluster.workload import (
    JobMix,
    JobSpec,
    TenantSpec,
    Workload,
    parse_tenant_shorthand,
    tenant_workload,
)
from repro.core.config import ExperimentConfig
from repro.core.session import Session
from repro.data.loader import DataLoadModel
from repro.errors import ConfigurationError
from repro.models.layers import BYTES_PER_ELEMENT
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.parallel.estimator import StageTimeEstimator
from repro.parallel.plan import SchedulePlan
from repro.parallel.registry import REGISTRY
from repro.store.keys import estimate_key, goodput_key, slo_key, throughput_key
from repro.tune.objective import TuneMeasurement, cost_per_epoch
from repro.tune.space import TunePoint

#: Tenant roster the SLO probe contends with when none is configured: a
#: best-effort batch tenant flooding the fleet plus a deadline-bound
#: production tenant trickling jobs in.
DEFAULT_SLO_TENANTS: Tuple[TenantSpec, ...] = (
    TenantSpec("batch", priority=0, rate=0.2),
    TenantSpec("prod", priority=2, deadline_policy="strict", rate=0.05),
)


def _count_probe(fidelity: str, amount: int = 1) -> None:
    """Evaluator probes (memo hits included) by fidelity.

    Batch entry points bump the counter once with ``amount`` set to the
    batch size, so grid-scale estimate sweeps stay one metric event.
    """
    get_registry().counter(
        "repro_tune_probes_total", "TuneEvaluator probes by fidelity"
    ).inc(amount, fidelity=fidelity)


@dataclass
class EvaluatorStats:
    """Work counters: how much each fidelity ran vs. hit a memo.

    Example:
        >>> from repro.tune.evaluator import EvaluatorStats
        >>> stats = EvaluatorStats(simulations=3, simulation_hits=9)
        >>> stats.to_dict()["simulations"]
        3
    """

    estimates: int = 0
    estimate_hits: int = 0
    simulations: int = 0
    simulation_hits: int = 0
    cluster_probes: int = 0
    cluster_probe_hits: int = 0
    goodput_probes: int = 0
    goodput_probe_hits: int = 0
    slo_probes: int = 0
    slo_probe_hits: int = 0
    #: Results served from the session's persistent store instead of being
    #: recomputed (estimates, simulations and fleet probes combined).
    store_hydrations: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class TuneEvaluator:
    """Session-backed candidate evaluation at three fidelities.

    Example:
        >>> from repro.tune.evaluator import TuneEvaluator
        >>> from repro.tune.space import TunePoint
        >>> point = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=2, batch_size=128, strategy="DP")
        >>> evaluator = TuneEvaluator(simulated_steps=4)
        >>> estimate = evaluator.estimate(point)
        >>> full = evaluator.measure(point)
        >>> (estimate.fidelity, full.fidelity, full.epoch_time > 0)
        ('estimate', 'simulated', True)
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        simulated_steps: int = 10,
        throughput_jobs: int = 12,
        faults: Union[FaultModel, FaultTrace, str, None] = None,
        elastic: str = "restart",
        fault_seed: int = 0,
        recovery: Optional[RecoveryModel] = None,
        tenants: Union[Tuple[TenantSpec, ...], str, None] = None,
        price_curve: Union[PriceCurve, str, None] = None,
        slo_deadline_slack: float = 900.0,
    ) -> None:
        if simulated_steps < 4:
            raise ConfigurationError("simulated_steps must be >= 4")
        if throughput_jobs < 1:
            raise ConfigurationError("throughput_jobs must be >= 1")
        if slo_deadline_slack <= 0:
            raise ConfigurationError("slo_deadline_slack must be > 0 seconds")
        self.session = session if session is not None else Session()
        self.simulated_steps = simulated_steps
        self.throughput_jobs = throughput_jobs
        if isinstance(faults, str):
            faults = parse_fault_spec(faults)
        #: Fault scenario the goodput probe injects; defaults to the
        #: bursty-preemption preset when an objective needs faults.
        self.faults = faults
        self.elastic = elastic
        self.fault_seed = fault_seed
        self.recovery = recovery if recovery is not None else RecoveryModel()
        if isinstance(tenants, str):
            tenants = parse_tenant_shorthand(tenants)
        #: Tenant roster the SLO probe contends with; defaults to
        #: :data:`DEFAULT_SLO_TENANTS` when an objective needs tenants.
        self.tenants = tuple(tenants) if tenants is not None else None
        #: Price curve metering the SLO probe's GPU-seconds (None = flat).
        self.price_curve = (
            price_curve
            if isinstance(price_curve, PriceCurve)
            else parse_price_curve(price_curve)
        )
        self.slo_deadline_slack = slo_deadline_slack
        self.stats = EvaluatorStats()
        self._estimates: Dict[Tuple, TuneMeasurement] = {}
        self._measurements: Dict[Tuple, TuneMeasurement] = {}
        self._throughputs: Dict[Tuple, float] = {}
        self._goodputs: Dict[Tuple, float] = {}
        self._slos: Dict[Tuple, Tuple[float, float]] = {}
        #: Epoch-time memo shared by every fleet probe of this evaluator.
        self._cluster_epoch_times: Dict[EpochKey, float] = {}

    # ------------------------------------------------------------------ #
    # Fidelity 0: analytic estimate (no discrete-event simulation)
    # ------------------------------------------------------------------ #
    def estimate(self, point: TunePoint) -> TuneMeasurement:
        """Analytic epoch-time estimate; builds the plan but never simulates.

        Estimates are memoised in this evaluator and — when the session has
        a persistent store — hydrated from / written through it, so a
        restarted tuning run re-derives no analytic model either.
        """
        _count_probe("estimate")
        cached = self._estimate_cached(point)
        if cached is not None:
            return cached
        with span("tune.estimate", point=point.label()):
            return self._estimate_compute(point)

    def estimate_all(self, points) -> Dict[TunePoint, TuneMeasurement]:
        """Batch twin of :meth:`estimate`: one span + counter for the grid.

        Rung 0 of successive halving estimates *every* grid point; doing
        that through :meth:`estimate` emits one span and one counter bump
        per cell, which drowns profile reports at grid scale.  This entry
        point records a single ``tune.estimate_all`` span (annotated with
        the batch size and miss count) and one counter increment for the
        whole batch, while sharing the same memo and store path cell for
        cell.
        """
        points = list(points)
        _count_probe("estimate", amount=len(points))
        results: Dict[TunePoint, TuneMeasurement] = {}
        missing = []
        for point in points:
            cached = self._estimate_cached(point)
            if cached is not None:
                results[point] = cached
            else:
                missing.append(point)
        if missing:
            with span(
                "tune.estimate_all", count=len(points), misses=len(missing)
            ):
                for point in missing:
                    results[point] = self._estimate_compute(point)
        return {point: results[point] for point in points}

    def _estimate_cached(self, point: TunePoint) -> Optional[TuneMeasurement]:
        """Memo / store lookup for one estimate; None on a miss."""
        key = point.cell_signature()
        if key in self._estimates:
            self.stats.estimate_hits += 1
            return replace(self._estimates[key], point=point)
        store = self.session.store
        if store is not None:
            stored = store.get("estimate", estimate_key(key))
            if stored is not None:
                measurement = TuneMeasurement(
                    point=point,
                    epoch_time=stored["epoch_time_s"],
                    cost=stored["cost_usd_per_epoch"],
                    fidelity="estimate",
                    simulated_steps=0,
                )
                self._estimates[key] = measurement
                self.stats.store_hydrations += 1
                return measurement
        return None

    def _estimate_compute(self, point: TunePoint) -> TuneMeasurement:
        """Build the plan, score it analytically, memoise and store-write."""
        config = point.config(self.simulated_steps)
        session = self.session
        pair = session.pair(config)
        server = session.server(config)
        dataset = session.dataset(config)
        planner = REGISTRY.get(point.strategy)
        profile = session.profile(config) if planner.requires_profile else None
        plan = planner.build(pair, server, config.batch_size, dataset, profile=profile)

        if plan.kind == "pipeline":
            if profile is None:
                profile = session.profile(config)
            # The planners route their candidate searches through the
            # vectorized estimator internally; for the single winning plan's
            # breakdown the scalar estimator is faster than numpy's
            # small-array overhead, and the equivalence suite proves the two
            # return bit-identical StageTimeEstimates.
            estimator = StageTimeEstimator(
                pair=pair, server=server, dataset=dataset, profile=profile
            )
            step_time = self._pipeline_step_time(plan, estimator)
        elif plan.kind == "layerwise":
            step_time = self._layerwise_step_time(plan, config)
        else:
            step_time = self._data_parallel_step_time(plan, config)

        epoch_time = step_time * dataset.steps_per_epoch(config.batch_size)
        measurement = TuneMeasurement(
            point=point,
            epoch_time=epoch_time,
            cost=cost_per_epoch(point.server, point.num_gpus, epoch_time),
            fidelity="estimate",
            simulated_steps=0,
        )
        self._estimates[point.cell_signature()] = measurement
        self.stats.estimates += 1
        store = self.session.store
        if store is not None:
            store.put(
                "estimate",
                estimate_key(point.cell_signature()),
                {
                    "epoch_time_s": measurement.epoch_time,
                    "cost_usd_per_epoch": measurement.cost,
                },
            )
        return measurement

    @staticmethod
    def _pipeline_step_time(plan: SchedulePlan, estimator) -> float:
        """Steady-state step time of a pipeline plan.

        ``estimator`` is either the scalar
        :class:`~repro.parallel.estimator.StageTimeEstimator` or its
        vectorized twin — both expose ``stage_estimates``.

        Decoupled plans (DPU) run stages independently, so throughput is set
        by the slowest stage (paper SIV-C).  Plans that keep the per-step
        barrier (plain TR) serialise on the teacher-relay chain instead: a
        stage cannot start its step before every earlier stage's teacher has
        run, so its finish time is the teacher prefix plus its own student
        work, and the step time is the slowest such finish.
        """
        estimates = estimator.stage_estimates(plan)
        if plan.decoupled_update:
            return max(estimate.total for estimate in estimates)
        critical = 0.0
        teacher_prefix = 0.0
        for estimate in estimates:
            teacher_prefix += estimate.teacher
            critical = max(
                critical,
                teacher_prefix + estimate.student + estimate.update + estimate.allreduce,
            )
        overlapped = max(
            max(estimate.data_load for estimate in estimates),
            max(estimate.relay for estimate in estimates),
        )
        return max(critical, overlapped)

    def _layerwise_step_time(self, plan: SchedulePlan, config: ExperimentConfig) -> float:
        """Max-device step time of an LS plan (teacher prefix + owned blocks)."""
        pair = self.session.pair(config)
        server = self.session.server(config)
        cost_model = server.cost_model()
        loader = DataLoadModel(dataset=self.session.dataset(config), host=server.host)
        batch = plan.batch_size
        rounds = pair.student_rounds_per_step
        load_time = loader.batch_load_time(batch, concurrent_loaders=1)
        assert plan.device_blocks is not None
        device_times = []
        for block_ids in plan.device_blocks.values():
            prefix = range(max(block_ids) + 1)
            compute = sum(
                cost_model.block_forward_time(pair.teacher.block(i), batch) for i in prefix
            )
            for block_id in block_ids:
                student = pair.student.block(block_id)
                compute += rounds * (
                    cost_model.block_forward_time(student, batch)
                    + cost_model.block_backward_time(student, batch)
                )
                compute += cost_model.weight_update_time(student)
            device_times.append(max(compute, load_time))
        return max(device_times)

    def _data_parallel_step_time(self, plan: SchedulePlan, config: ExperimentConfig) -> float:
        """Summed per-block step time of the DP baseline (blocks run serially)."""
        pair = self.session.pair(config)
        server = self.session.server(config)
        cost_model = server.cost_model()
        loader = DataLoadModel(dataset=self.session.dataset(config), host=server.host)
        micro_batch = max(1, plan.batch_size // plan.num_devices)
        rounds = pair.student_rounds_per_step
        load_time = loader.batch_load_time(micro_batch, concurrent_loaders=1)
        total = 0.0
        teacher_prefix = 0.0
        for block_id in range(plan.num_blocks):
            teacher_prefix += cost_model.block_forward_time(
                pair.teacher.block(block_id), micro_batch
            )
            student = pair.student.block(block_id)
            compute = teacher_prefix
            compute += rounds * (
                cost_model.block_forward_time(student, micro_batch)
                + cost_model.block_backward_time(student, micro_batch)
            )
            compute += cost_model.weight_update_time(student)
            if plan.num_devices > 1:
                compute += server.interconnect.allreduce_time(
                    float(student.params * BYTES_PER_ELEMENT), plan.num_devices
                )
            total += max(compute, load_time)
        return total

    # ------------------------------------------------------------------ #
    # Fidelity 1..n: memoised discrete-event simulation
    # ------------------------------------------------------------------ #
    def measure(self, point: TunePoint, steps: Optional[int] = None) -> TuneMeasurement:
        """Run the cell's discrete-event simulation, memoised by fidelity."""
        _count_probe("simulate")
        steps = self.simulated_steps if steps is None else steps
        key = point.cell_signature() + (steps,)
        if key in self._measurements:
            self.stats.simulation_hits += 1
            return replace(self._measurements[key], point=point)
        runs_before = self.session.stats.runs
        with span("tune.measure", point=point.label(), steps=steps):
            result = self.session.run(point.config(steps))
        measurement = TuneMeasurement(
            point=point,
            epoch_time=result.epoch_time,
            cost=cost_per_epoch(point.server, point.num_gpus, result.epoch_time),
            fidelity="simulated",
            simulated_steps=steps,
            max_memory_gb=result.max_memory_gb(),
        )
        self._measurements[key] = measurement
        # A store-hydrated result is not a fresh discrete-event simulation;
        # tell them apart so budget accounting stays honest across restarts.
        if self.session.stats.runs > runs_before:
            self.stats.simulations += 1
        else:
            self.stats.store_hydrations += 1
        return measurement

    # ------------------------------------------------------------------ #
    # Fleet probe for throughput objectives
    # ------------------------------------------------------------------ #
    def throughput(self, point: TunePoint, steps: Optional[int] = None) -> float:
        """Jobs/hour of a fleet saturated with this candidate's jobs.

        The probe gang-schedules ``throughput_jobs`` identical copies of the
        candidate cell (all arriving at t=0) under the point's placement
        policy, sharing one epoch-time memo across every probe of the search.
        """
        if point.policy is None:
            raise ConfigurationError(
                f"candidate {point.label()!r} has no placement policy; "
                "throughput objectives need a space with a policies axis"
            )
        _count_probe("throughput")
        steps = self.simulated_steps if steps is None else steps
        cluster = point.cluster if point.cluster is not None else default_cluster()
        # Memoise on the spec itself, not its name: two candidate fleets may
        # share a (default) name yet differ in shape.
        key = point.cell_signature() + (steps, point.policy, cluster)
        if key in self._throughputs:
            self.stats.cluster_probe_hits += 1
            return self._throughputs[key]
        store = self.session.store
        store_key = throughput_key(
            point.cell_signature(),
            steps,
            self.throughput_jobs,
            point.policy,
            cluster.to_dict(),
        )
        if store is not None:
            stored = store.get("throughput", store_key)
            if stored is not None:
                self._throughputs[key] = stored["jobs_per_hour"]
                self.stats.store_hydrations += 1
                return stored["jobs_per_hour"]
        workload = self._probe_workload(point, steps)
        simulator = ClusterSimulator(
            cluster,
            policy=point.policy,
            session=self.session,
            epoch_time_cache=self._cluster_epoch_times,
        )
        with span("tune.throughput", point=point.label()):
            report = simulator.run(workload)
        self._throughputs[key] = report.jobs_per_hour
        self.stats.cluster_probes += 1
        if store is not None:
            store.put(
                "throughput", store_key, {"jobs_per_hour": report.jobs_per_hour}
            )
        return report.jobs_per_hour

    def _probe_workload(self, point: TunePoint, steps: int) -> Workload:
        """``throughput_jobs`` identical candidate jobs, all arriving at t=0."""
        jobs = tuple(
            JobSpec(
                job_id=f"tune-{index:03d}",
                arrival_time=0.0,
                gpus=point.num_gpus,
                task=point.task,
                dataset=point.dataset,
                batch_size=point.batch_size,
                strategy=point.strategy,
                epochs=1,
                simulated_steps=steps,
            )
            for index in range(self.throughput_jobs)
        )
        return Workload(name=f"tune-probe({point.label()})", jobs=jobs)

    # ------------------------------------------------------------------ #
    # Fault-injected goodput probe
    # ------------------------------------------------------------------ #
    def goodput(self, point: TunePoint, steps: Optional[int] = None) -> float:
        """Useful jobs/hour of a fault-injected fleet running this candidate.

        Same probe shape as :meth:`throughput` — ``throughput_jobs``
        identical copies of the candidate cell gang-scheduled under the
        point's placement policy — but with the evaluator's fault scenario
        replayed through the elastic simulator, scoring the report's
        :attr:`~repro.analysis.cluster_report.ClusterReport.goodput_jobs_per_hour`.
        Probes hydrate from / write through the persistent store under
        fault-spec-aware keys (:func:`repro.store.keys.goodput_key`), so a
        repeated identical fault sweep performs zero simulations.
        """
        if point.policy is None:
            raise ConfigurationError(
                f"candidate {point.label()!r} has no placement policy; "
                "fault-goodput objectives need a space with a policies axis"
            )
        _count_probe("goodput")
        steps = self.simulated_steps if steps is None else steps
        cluster = point.cluster if point.cluster is not None else default_cluster()
        faults = self.faults if self.faults is not None else FAULT_PRESETS["bursty-preemption"]
        fault_spec = (
            {"trace": faults.to_dict()}
            if isinstance(faults, FaultTrace)
            else {"model": faults.to_dict()}
        )
        key = point.cell_signature() + (
            steps,
            point.policy,
            cluster,
            faults,
            self.elastic,
            self.fault_seed,
            self.recovery,
        )
        if key in self._goodputs:
            self.stats.goodput_probe_hits += 1
            return self._goodputs[key]
        store = self.session.store
        store_key = goodput_key(
            point.cell_signature(),
            steps,
            self.throughput_jobs,
            point.policy,
            cluster.to_dict(),
            fault_spec,
            self.elastic,
            self.fault_seed,
            self.recovery.to_dict(),
        )
        if store is not None:
            stored = store.get("goodput", store_key)
            if stored is not None:
                self._goodputs[key] = stored["goodput_jobs_per_hour"]
                self.stats.store_hydrations += 1
                return stored["goodput_jobs_per_hour"]
        workload = self._probe_workload(point, steps)
        simulator = ClusterSimulator(
            cluster,
            policy=point.policy,
            session=self.session,
            epoch_time_cache=self._cluster_epoch_times,
            faults=faults,
            elastic=self.elastic,
            recovery=self.recovery,
            fault_seed=self.fault_seed,
        )
        with span("tune.goodput", point=point.label()):
            report = simulator.run(workload)
        value = report.goodput_jobs_per_hour
        self._goodputs[key] = value
        self.stats.goodput_probes += 1
        if store is not None:
            store.put("goodput", store_key, {"goodput_jobs_per_hour": value})
        return value

    # ------------------------------------------------------------------ #
    # Multi-tenant SLO probe
    # ------------------------------------------------------------------ #
    def slo(self, point: TunePoint, steps: Optional[int] = None) -> Tuple[float, float]:
        """``(deadline_hit_rate, cost_per_job)`` of a contended tenant fleet.

        The probe gang-schedules ``throughput_jobs`` copies of the
        candidate cell split across the evaluator's tenant roster (rate
        weights decide the split, deadline tenants get
        ``slo_deadline_slack`` seconds past arrival) under the point's
        placement policy, with GPU-seconds metered through the price
        curve.  Probes hydrate from / write through the persistent store
        under roster-aware keys (:func:`repro.store.keys.slo_key`).
        """
        if point.policy is None:
            raise ConfigurationError(
                f"candidate {point.label()!r} has no placement policy; "
                "SLO objectives need a space with a policies axis"
            )
        _count_probe("slo")
        steps = self.simulated_steps if steps is None else steps
        cluster = point.cluster if point.cluster is not None else default_cluster()
        tenants = self.tenants if self.tenants is not None else DEFAULT_SLO_TENANTS
        key = point.cell_signature() + (
            steps,
            point.policy,
            cluster,
            tenants,
            self.price_curve,
            self.slo_deadline_slack,
        )
        if key in self._slos:
            self.stats.slo_probe_hits += 1
            return self._slos[key]
        store = self.session.store
        store_key = slo_key(
            point.cell_signature(),
            steps,
            self.throughput_jobs,
            point.policy,
            cluster.to_dict(),
            tuple(spec.to_dict() for spec in tenants),
            self.price_curve.to_dict() if self.price_curve is not None else {},
            self.slo_deadline_slack,
        )
        if store is not None:
            stored = store.get("slo", store_key)
            if stored is not None:
                value = (stored["deadline_hit_rate"], stored["cost_usd_per_job"])
                self._slos[key] = value
                self.stats.store_hydrations += 1
                return value
        mix = JobMix(
            tasks=(point.task,),
            batch_sizes=(point.batch_size,),
            gpu_demands=(point.num_gpus,),
            strategies=(point.strategy,),
            epochs=(1,),
        )
        workload = tenant_workload(
            tenants,
            self.throughput_jobs,
            seed=0,
            mixes={spec.name: mix for spec in tenants},
            deadline_slack=self.slo_deadline_slack,
            name=f"tune-slo({point.label()})",
        )
        workload = replace(
            workload,
            jobs=tuple(
                replace(job, simulated_steps=steps) for job in workload.jobs
            ),
        )
        simulator = ClusterSimulator(
            cluster,
            policy=point.policy,
            session=self.session,
            epoch_time_cache=self._cluster_epoch_times,
            price_curve=self.price_curve,
        )
        with span("tune.slo", point=point.label()):
            report = simulator.run(workload)
        value = (report.deadline_hit_rate, report.cost_per_job)
        self._slos[key] = value
        self.stats.slo_probes += 1
        if store is not None:
            store.put(
                "slo",
                store_key,
                {
                    "deadline_hit_rate": value[0],
                    "cost_usd_per_job": value[1],
                },
            )
        return value

    # ------------------------------------------------------------------ #
    def evaluate(self, point: TunePoint, objective, steps: Optional[int] = None) -> TuneMeasurement:
        """Full-fidelity evaluation for an objective (fleet probe if needed)."""
        measurement = self.measure(point, steps)
        if getattr(objective, "needs_tenants", False):
            hit_rate, cost_per_job = self.slo(point, steps)
            measurement = replace(
                measurement,
                deadline_hit_rate=hit_rate,
                cost_per_job=cost_per_job,
            )
        elif getattr(objective, "needs_faults", False):
            measurement = replace(measurement, goodput=self.goodput(point, steps))
        elif getattr(objective, "needs_cluster", False):
            measurement = replace(
                measurement, jobs_per_hour=self.throughput(point, steps)
            )
        return measurement

    @property
    def distinct_simulated_cells(self) -> int:
        """Distinct (cell, strategy) pairs simulated at any fidelity."""
        return len({key[:-1] for key in self._measurements})
