"""Tuning objectives and the measurement record they score.

Covered by ``docs/TUNING.md`` (objective guide) and ``docs/API.md``.

A :class:`TuneMeasurement` is one evaluated candidate: its simulated epoch
time, per-rank peak memory, dollar cost per epoch and (for fleet objectives)
jobs-per-hour throughput, tagged with the fidelity it was obtained at
(``"estimate"`` for the analytic model, ``"simulated"`` for a discrete-event
run).  An *objective* scores measurements; three built-ins are registered in
:data:`OBJECTIVES` (a :class:`~repro.registry.NamedRegistry` mirroring the
strategy and policy registries):

* ``"epoch_time"`` — minimise simulated seconds per training epoch,
* ``"jobs_per_hour"`` — maximise fleet throughput under a placement policy,
* ``"goodput_under_faults"`` — maximise useful throughput under injected
  faults (``needs_faults``),
* ``"deadline_hit_rate"`` — maximise deadlines met on a contended
  multi-tenant fleet (``needs_tenants``),
* ``"cost_per_job"`` — minimise dollars per completed job on the same
  contended, price-curve-metered fleet (``needs_tenants``),
* ``"cost"`` — minimise dollars per epoch, optionally under an epoch-time
  deadline (:class:`MinCostUnderDeadline`).

Objectives expose two rankings: :meth:`key` (lower-is-better, used on full
simulations) and :meth:`proxy_key` (lower-is-better on cheap estimates —
fleet throughput falls back to epoch time, which is monotone in it for a
fixed fleet).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.market import GPU_HOURLY_RATES
from repro.errors import ConfigurationError
from repro.registry import NamedRegistry, make_register
from repro.tune.space import TunePoint

__all__ = [
    "GPU_HOURLY_RATES",  # re-exported from repro.cluster.market for compat
    "OBJECTIVES",
    "TuneMeasurement",
    "cost_per_epoch",
    "register_objective",
    "resolve_objective",
]


def cost_per_epoch(server: str, num_gpus: int, epoch_time: float) -> float:
    """Dollar cost of one training epoch on ``num_gpus`` GPUs of a preset.

    Example:
        >>> from repro.tune.objective import cost_per_epoch
        >>> round(cost_per_epoch("a6000", 4, 3600.0), 2)
        4.4
    """
    if server not in GPU_HOURLY_RATES:
        raise ConfigurationError(
            f"no hourly rate for server {server!r}; known: {sorted(GPU_HOURLY_RATES)}"
        )
    return epoch_time / 3600.0 * num_gpus * GPU_HOURLY_RATES[server]


@dataclass(frozen=True)
class TuneMeasurement:
    """One evaluated candidate, at estimate or simulation fidelity.

    Example:
        >>> from repro.tune.objective import TuneMeasurement
        >>> from repro.tune.space import TunePoint
        >>> point = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=4, batch_size=256, strategy="DP")
        >>> m = TuneMeasurement(point=point, epoch_time=12.5, cost=0.015,
        ...                     fidelity="simulated", simulated_steps=10)
        >>> (m.gpus, m.to_dict()["epoch_time_s"])
        (4, 12.5)
    """

    point: TunePoint
    epoch_time: float
    cost: float
    fidelity: str
    simulated_steps: int
    max_memory_gb: Optional[float] = None
    jobs_per_hour: Optional[float] = None
    #: Fault-discounted fleet throughput (useful jobs/hour under an injected
    #: fault scenario); only set by the ``goodput_under_faults`` objective.
    goodput: Optional[float] = None
    #: Fraction of deadline-carrying jobs finishing on time in a contended
    #: multi-tenant probe; only set by tenant-aware objectives.
    deadline_hit_rate: Optional[float] = None
    #: Dollars per completed job in the same probe (price-curve metered).
    cost_per_job: Optional[float] = None

    @property
    def gpus(self) -> int:
        """GPU count of the candidate (a Pareto axis)."""
        return self.point.num_gpus

    def to_dict(self) -> dict:
        return {
            "point": self.point.to_dict(),
            "label": self.point.label(),
            "epoch_time_s": self.epoch_time,
            "gpus": self.gpus,
            "max_memory_gb": self.max_memory_gb,
            "cost_usd_per_epoch": self.cost,
            "jobs_per_hour": self.jobs_per_hour,
            "goodput_jobs_per_hour": self.goodput,
            "deadline_hit_rate": self.deadline_hit_rate,
            "cost_usd_per_job": self.cost_per_job,
            "fidelity": self.fidelity,
            "simulated_steps": self.simulated_steps,
        }


class ObjectiveRegistry(NamedRegistry):
    """Ordered name -> objective mapping with validated registration."""

    kind = "objective"
    kind_plural = "objectives"

    def validate(self, name: str, objective) -> None:
        if getattr(objective, "sense", None) not in ("min", "max"):
            raise ConfigurationError(
                f"objective {name!r} must expose sense 'min' or 'max'"
            )
        if not isinstance(getattr(objective, "needs_cluster", None), bool):
            raise ConfigurationError(
                f"objective {name!r} must expose a boolean 'needs_cluster'"
            )
        for method in ("score", "key", "proxy_key"):
            if not callable(getattr(objective, method, None)):
                raise ConfigurationError(
                    f"objective {name!r} must expose a callable {method!r}"
                )


#: The process-wide objective registry consulted by drivers, CLI and Session.
OBJECTIVES = ObjectiveRegistry()

#: Register an objective class or instance (usable as a decorator); see
#: :func:`repro.registry.make_register`.
register_objective = make_register(OBJECTIVES)


@register_objective
class MinEpochTime:
    """Minimise simulated seconds per training epoch (the paper's Table II).

    Example:
        >>> from repro.tune.objective import OBJECTIVES
        >>> OBJECTIVES.get("epoch_time").sense
        'min'
    """

    name = "epoch_time"
    sense = "min"
    needs_cluster = False

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: seconds per epoch."""
        return measurement.epoch_time

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better ranking key on full simulations."""
        return measurement.epoch_time

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better ranking key on analytic estimates."""
        return measurement.epoch_time


@register_objective
class MaxJobsPerHour:
    """Maximise fleet throughput when every job runs this candidate cell.

    Requires a space with a ``policies`` axis; the evaluator probes each
    (cell, policy, cluster) by gang-scheduling a batch of identical jobs.

    Example:
        >>> from repro.tune.objective import OBJECTIVES
        >>> OBJECTIVES.get("jobs_per_hour").needs_cluster
        True
    """

    name = "jobs_per_hour"
    sense = "max"
    needs_cluster = True

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: completed jobs per hour."""
        return measurement.jobs_per_hour or 0.0

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better key (negated throughput)."""
        return -(measurement.jobs_per_hour or 0.0)

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Packing-aware throughput proxy for fidelities without a fleet probe.

        Epoch time alone is anti-correlated with throughput across gang
        sizes (two 2-GPU gangs outpack one 4-GPU gang even if each is
        slower), so the proxy multiplies the candidate's epoch rate by how
        many of its gangs the fleet holds at once.
        """
        if measurement.jobs_per_hour is not None:
            return self.key(measurement)
        point = measurement.point
        if point.cluster is not None:
            slots = sum(
                node.num_gpus // point.num_gpus for node in point.cluster.nodes
            )
        else:
            slots = 1
        return -(max(slots, 1) * 3600.0 / measurement.epoch_time)


@register_objective
class MaxGoodputUnderFaults:
    """Maximise *useful* fleet throughput under an injected fault scenario.

    Like ``jobs_per_hour``, but the evaluator's fleet probe replays a
    seeded fault model through the elastic cluster simulator and scores
    :attr:`~repro.analysis.cluster_report.ClusterReport.goodput_jobs_per_hour`
    — throughput discounted by the GPU-time faults destroy.  Candidates
    whose strategies recover cheaply (decoupled sub-pipelines) and whose
    gang sizes re-partition well therefore win even when their fault-free
    epoch times tie.

    Requires a space with a ``policies`` axis (the probe gang-schedules a
    fleet); the fault scenario itself is configured on the evaluator /
    :func:`repro.tune.tuner.tune` (``faults=``, ``elastic=``).

    Example:
        >>> from repro.tune.objective import OBJECTIVES
        >>> obj = OBJECTIVES.get("goodput_under_faults")
        >>> (obj.sense, obj.needs_cluster, obj.needs_faults)
        ('max', True, True)
    """

    name = "goodput_under_faults"
    sense = "max"
    needs_cluster = True
    needs_faults = True

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: useful jobs per hour under faults."""
        return measurement.goodput or 0.0

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better key (negated goodput)."""
        return -(measurement.goodput or 0.0)

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Fault-free packing proxy for fidelities without a fleet probe.

        Reuses the throughput proxy (slots x epoch rate): goodput is
        monotone in fault-free throughput for a fixed fault scenario, and
        cheap estimates cannot see faults anyway.
        """
        if measurement.goodput is not None:
            return self.key(measurement)
        return OBJECTIVES.get("jobs_per_hour").proxy_key(measurement)


@register_objective
class MaxDeadlineHitRate:
    """Maximise the deadline hit rate of a contended multi-tenant fleet.

    The evaluator's SLO probe gang-schedules a two-tenant contended
    workload (a best-effort tenant plus a deadline tenant, both running
    the candidate cell) under each policy and scores
    :attr:`~repro.analysis.cluster_report.ClusterReport.deadline_hit_rate`.
    Candidates whose gang sizes leave room for the deadline tenant's jobs
    — and policies that reorder or preempt for them — win.

    Requires a space with a ``policies`` axis; the tenant roster and the
    price curve are configured on the evaluator /
    :func:`repro.tune.tuner.tune` (``tenants=``, ``price_curve=``).

    Example:
        >>> from repro.tune.objective import OBJECTIVES
        >>> obj = OBJECTIVES.get("deadline_hit_rate")
        >>> (obj.sense, obj.needs_cluster, obj.needs_tenants)
        ('max', True, True)
    """

    name = "deadline_hit_rate"
    sense = "max"
    needs_cluster = True
    needs_tenants = True

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: fraction of deadlines met."""
        return measurement.deadline_hit_rate or 0.0

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better key (negated hit rate; ties: faster epochs)."""
        return -(measurement.deadline_hit_rate or 0.0)

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Epoch-time proxy: shorter service times meet more deadlines."""
        if measurement.deadline_hit_rate is not None:
            return self.key(measurement)
        return measurement.epoch_time


@register_objective
class MinCostPerJob:
    """Minimise dollars per completed job on a contended, metered fleet.

    Scored from the same SLO probe as ``deadline_hit_rate``:
    :attr:`~repro.analysis.cluster_report.ClusterReport.cost_per_job`
    with GPU-seconds metered through the evaluator's price curve.
    Candidates that finish jobs with fewer GPU-seconds — or schedule
    them into cheap price-curve valleys — win.

    Example:
        >>> from repro.tune.objective import OBJECTIVES
        >>> obj = OBJECTIVES.get("cost_per_job")
        >>> (obj.sense, obj.needs_tenants)
        ('min', True)
    """

    name = "cost_per_job"
    sense = "min"
    needs_cluster = True
    needs_tenants = True

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: dollars per completed job."""
        return measurement.cost_per_job or 0.0

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better key; unprobed candidates rank last."""
        if measurement.cost_per_job is None:
            return math.inf
        return measurement.cost_per_job

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Per-epoch cost proxy: cheap epochs make cheap jobs."""
        if measurement.cost_per_job is not None:
            return self.key(measurement)
        return measurement.cost


@register_objective
class MinCostUnderDeadline:
    """Minimise dollars per epoch, subject to an epoch-time deadline.

    Candidates whose epoch time exceeds ``deadline`` seconds score
    ``inf`` and can never win (the registered default has no deadline).

    Example:
        >>> from repro.tune.objective import MinCostUnderDeadline, TuneMeasurement
        >>> from repro.tune.space import TunePoint
        >>> point = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=2, batch_size=128, strategy="DP")
        >>> slow = TuneMeasurement(point=point, epoch_time=90.0, cost=0.05,
        ...                        fidelity="simulated", simulated_steps=10)
        >>> MinCostUnderDeadline(deadline=60.0).key(slow)
        inf
    """

    name = "cost"
    sense = "min"
    needs_cluster = False

    def __init__(self, deadline: float = math.inf) -> None:
        if deadline <= 0:
            raise ConfigurationError("deadline must be > 0 seconds")
        self.deadline = deadline

    def score(self, measurement: TuneMeasurement) -> float:
        """Natural-units score: dollars per epoch."""
        return measurement.cost

    def key(self, measurement: TuneMeasurement) -> float:
        """Lower-is-better key; deadline violations rank last."""
        if measurement.epoch_time > self.deadline:
            return math.inf
        return measurement.cost

    def proxy_key(self, measurement: TuneMeasurement) -> float:
        """Estimates carry a cost too (derived from estimated epoch time)."""
        return self.key(measurement)


def resolve_objective(objective):
    """Accept an objective by registry name or as a duck-typed instance.

    Example:
        >>> from repro.tune.objective import resolve_objective
        >>> resolve_objective("epoch_time").name
        'epoch_time'
    """
    if isinstance(objective, str):
        return OBJECTIVES.get(objective)
    OBJECTIVES.validate(getattr(objective, "name", "<anonymous>"), objective)
    return objective
