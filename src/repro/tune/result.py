"""Tuning results: Pareto-frontier analytics and JSON export.

Covered by ``docs/TUNING.md`` (reading results) and ``docs/API.md``.

The frontier is computed over three minimised axes — epoch time (seconds),
GPU count and per-rank peak memory (GB) — so it answers the question the
paper's Figs. 5-7 circle around: *how much hardware buys how much speed, and
at what memory cost?*  Dominated points are pruned; the surviving frontier is
sorted by epoch time, fastest first.  :meth:`TuneResult.to_dict` produces the
JSON document consumed by :mod:`repro.analysis.pareto` and the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.tune.objective import TuneMeasurement
from repro.tune.space import TunePoint

#: The minimised axes of the Pareto frontier, in display order.
PARETO_AXES: Tuple[str, ...] = ("epoch_time", "gpus", "max_memory_gb")


def _axis_values(measurement: TuneMeasurement) -> Tuple[float, ...]:
    memory = measurement.max_memory_gb
    if memory is None:
        raise ConfigurationError(
            f"measurement {measurement.point.label()!r} has no memory reading "
            "(estimate-fidelity measurements cannot enter a Pareto frontier)"
        )
    return (measurement.epoch_time, float(measurement.gpus), memory)


def dominates(first: TuneMeasurement, second: TuneMeasurement) -> bool:
    """Whether ``first`` Pareto-dominates ``second`` (<= on all axes, < on one).

    Example:
        >>> from repro.tune.objective import TuneMeasurement
        >>> from repro.tune.result import dominates
        >>> from repro.tune.space import TunePoint
        >>> point = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=2, batch_size=128, strategy="DP")
        >>> fast = TuneMeasurement(point=point, epoch_time=5.0, cost=0.01,
        ...                        fidelity="simulated", simulated_steps=10,
        ...                        max_memory_gb=2.0)
        >>> slow = TuneMeasurement(point=point, epoch_time=9.0, cost=0.01,
        ...                        fidelity="simulated", simulated_steps=10,
        ...                        max_memory_gb=2.0)
        >>> dominates(fast, slow), dominates(slow, fast), dominates(fast, fast)
        (True, False, False)
    """
    a = _axis_values(first)
    b = _axis_values(second)
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(
    measurements: Sequence[TuneMeasurement],
) -> Tuple[TuneMeasurement, ...]:
    """The non-dominated subset, sorted fastest-first (stable on ties).

    Duplicate axis-vectors are kept once (the first occurrence wins), so the
    frontier never lists the same trade-off twice.

    Example:
        >>> from repro.tune.objective import TuneMeasurement
        >>> from repro.tune.result import pareto_frontier
        >>> from repro.tune.space import TunePoint
        >>> def m(gpus, t):
        ...     p = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=gpus, batch_size=128, strategy="DP")
        ...     return TuneMeasurement(point=p, epoch_time=t, cost=0.0,
        ...                            fidelity="simulated", simulated_steps=10,
        ...                            max_memory_gb=1.0)
        >>> frontier = pareto_frontier([m(4, 5.0), m(2, 8.0), m(4, 9.0)])
        >>> [(x.gpus, x.epoch_time) for x in frontier]
        [(4, 5.0), (2, 8.0)]
    """
    frontier = []
    seen_vectors = set()
    for candidate in measurements:
        vector = _axis_values(candidate)
        if vector in seen_vectors:
            continue
        if any(dominates(other, candidate) for other in measurements):
            continue
        seen_vectors.add(vector)
        frontier.append(candidate)
    frontier.sort(key=_axis_values)
    return tuple(frontier)


@dataclass
class TuneResult:
    """Outcome of one autotuning search.

    ``measurements`` holds every full-fidelity evaluation the driver made
    (in evaluation order); ``frontier`` its non-dominated subset; ``best``
    the objective's winner.  ``trajectory`` records best-so-far convergence
    against the number of simulations spent, which
    ``benchmarks/bench_tune_convergence.py`` plots.

    Example:
        >>> from repro.tune import TuneSpace, tune
        >>> result = tune(TuneSpace(strategies=("DP", "TR+DPU+AHD"),
        ...                         batch_sizes=(128,), gpu_counts=(2,)),
        ...               driver="exhaustive", budget=2, simulated_steps=4)
        >>> (result.best.point.strategy, len(result.frontier) >= 1)
        ('TR+DPU+AHD', True)
    """

    objective_name: str
    objective_sense: str
    driver: str
    budget: int
    space_summary: dict
    best: TuneMeasurement
    measurements: Tuple[TuneMeasurement, ...]
    frontier: Tuple[TuneMeasurement, ...]
    trajectory: Tuple[dict, ...] = ()
    notes: dict = field(default_factory=dict)
    evaluator_stats: dict = field(default_factory=dict)
    session_stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def best_point(self) -> TunePoint:
        """The winning candidate's configuration."""
        return self.best.point

    def __len__(self) -> int:
        return len(self.measurements)

    def frontier_labels(self) -> Tuple[str, ...]:
        """Candidate labels along the frontier, fastest first."""
        return tuple(measurement.point.label() for measurement in self.frontier)

    def dominated_count(self) -> int:
        """How many evaluated candidates the frontier pruned away."""
        return len(self.measurements) - len(self.frontier)

    def frontier_series(
        self, x: str = "gpus", y: str = "epoch_time"
    ) -> Dict[float, float]:
        """One frontier axis against another, e.g. GPUs vs. epoch time."""
        for axis in (x, y):
            if axis not in PARETO_AXES:
                raise ConfigurationError(
                    f"unknown frontier axis {axis!r}; axes: {PARETO_AXES}"
                )
        getter: Callable[[TuneMeasurement, str], float] = lambda m, axis: {
            "epoch_time": m.epoch_time,
            "gpus": float(m.gpus),
            "max_memory_gb": m.max_memory_gb or 0.0,
        }[axis]
        series: Dict[float, float] = {}
        for measurement in self.frontier:
            key = getter(measurement, x)
            value = getter(measurement, y)
            if key not in series or value < series[key]:
                series[key] = value
        return series

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "objective": {"name": self.objective_name, "sense": self.objective_sense},
            "driver": self.driver,
            "budget": self.budget,
            "space": self.space_summary,
            "best": self.best.to_dict(),
            "frontier": [measurement.to_dict() for measurement in self.frontier],
            "measurements": [measurement.to_dict() for measurement in self.measurements],
            "trajectory": list(self.trajectory),
            "notes": dict(self.notes),
            "evaluator_stats": dict(self.evaluator_stats),
            "session_stats": dict(self.session_stats),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
