"""The autotuner's search-space DSL: :class:`TunePoint` and :class:`TuneSpace`.

Covered by ``docs/TUNING.md`` (usage) and ``docs/API.md`` (reference).

A :class:`TunePoint` is one candidate configuration the tuner may evaluate —
an :class:`~repro.core.config.ExperimentConfig` cell (task, dataset, server,
GPU count, batch size, strategy) optionally extended with a cluster placement
policy and a :class:`~repro.cluster.spec.ClusterSpec` candidate for
fleet-throughput objectives.  A :class:`TuneSpace` is the cartesian grid of
those axes, built either explicitly or from an existing config with
:meth:`TuneSpace.from_config`.

The GPU-count axis doubles as the *partition-granularity* axis: each strategy
partitions the teacher/student blocks across exactly ``num_gpus`` devices, so
sweeping GPU counts sweeps how finely the block pipeline is cut (the paper's
C(B-1, N-1) contiguous-partition space grows with N).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cluster.scheduler import POLICIES
from repro.cluster.spec import ClusterSpec
from repro.core.config import (
    ExperimentConfig,
    VALID_DATASETS,
    VALID_SERVERS,
    VALID_TASKS,
)
from repro.errors import ConfigurationError
from repro.parallel.registry import REGISTRY


@dataclass(frozen=True)
class TunePoint:
    """One candidate the autotuner may evaluate.

    ``policy`` and ``cluster`` are only set for fleet-throughput objectives;
    single-server objectives leave them ``None``.

    Example:
        >>> from repro.tune.space import TunePoint
        >>> point = TunePoint(task="nas", dataset="cifar10", server="a6000",
        ...                   num_gpus=4, batch_size=256, strategy="TR+DPU+AHD")
        >>> point.config(simulated_steps=6).cell_label()
        'nas/cifar10/a6000x4/b256'
    """

    task: str
    dataset: str
    server: str
    num_gpus: int
    batch_size: int
    strategy: str
    policy: Optional[str] = None
    cluster: Optional[ClusterSpec] = None

    def config(self, simulated_steps: int = 10) -> ExperimentConfig:
        """Materialise the single-server experiment cell of this candidate."""
        return ExperimentConfig(
            task=self.task,
            dataset=self.dataset,
            server=self.server,
            num_gpus=self.num_gpus,
            batch_size=self.batch_size,
            strategy=self.strategy,
            simulated_steps=simulated_steps,
        )

    def cell_signature(self) -> Tuple[str, str, str, int, int, str]:
        """Hashable identity of the single-server cell (ignores policy/cluster)."""
        return (
            self.task,
            self.dataset,
            self.server,
            self.num_gpus,
            self.batch_size,
            self.strategy,
        )

    def key(self) -> Tuple:
        """Full hashable identity, including the cluster axes.

        The cluster participates as the spec itself (frozen, hashable), not
        its name — candidate fleets may share a name yet differ in shape.
        """
        return self.cell_signature() + (self.policy, self.cluster)

    def label(self) -> str:
        """Short human-readable label used in frontier tables."""
        base = (
            f"{self.task}/{self.dataset}/{self.server}x{self.num_gpus}"
            f"/b{self.batch_size}/{self.strategy}"
        )
        if self.policy is not None:
            base += f"/{self.policy}"
        return base

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "dataset": self.dataset,
            "server": self.server,
            "num_gpus": self.num_gpus,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "policy": self.policy,
            "cluster": self.cluster.name if self.cluster is not None else None,
        }


@dataclass(frozen=True)
class TuneSpace:
    """The cartesian search grid the autotuner explores.

    Every axis is a non-empty tuple; ``policies``/``clusters`` default to
    empty and are only crossed in when provided (fleet-throughput
    objectives).  When ``clusters`` are given, the single-server ``servers``
    axis is ignored for those points — the scheduler decides which node (and
    therefore which GPU type) a gang lands on, so each point's nominal
    server is taken from the cluster's first node.

    Example:
        >>> from repro.tune.space import TuneSpace
        >>> space = TuneSpace(strategies=("DP", "TR+DPU+AHD"),
        ...                   batch_sizes=(128, 256), gpu_counts=(2, 4))
        >>> len(space)
        8
        >>> space.points()[0].strategy
        'DP'
    """

    strategies: Tuple[str, ...] = ("DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD")
    batch_sizes: Tuple[int, ...] = (128, 256, 384, 512)
    gpu_counts: Tuple[int, ...] = (2, 4)
    servers: Tuple[str, ...] = ("a6000",)
    tasks: Tuple[str, ...] = ("nas",)
    datasets: Tuple[str, ...] = ("cifar10",)
    policies: Tuple[str, ...] = ()
    clusters: Tuple[ClusterSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in ("strategies", "batch_sizes", "gpu_counts", "servers", "tasks", "datasets"):
            values = getattr(self, name)
            if not values:
                raise ConfigurationError(f"tune space axis {name!r} must be non-empty")
            if len(set(values)) != len(values):
                raise ConfigurationError(f"tune space axis {name!r} has duplicates")
        for strategy in self.strategies:
            REGISTRY.get(strategy)
        for policy in self.policies:
            POLICIES.get(policy)
        for task in self.tasks:
            if task not in VALID_TASKS:
                raise ConfigurationError(f"unknown task {task!r}; valid: {VALID_TASKS}")
        for dataset in self.datasets:
            if dataset not in VALID_DATASETS:
                raise ConfigurationError(
                    f"unknown dataset {dataset!r}; valid: {VALID_DATASETS}"
                )
        for server in self.servers:
            if server not in VALID_SERVERS:
                raise ConfigurationError(
                    f"unknown server {server!r}; valid: {VALID_SERVERS}"
                )
        if min(self.gpu_counts) < 1:
            raise ConfigurationError("gpu_counts must all be >= 1")
        if min(self.batch_sizes) < max(self.gpu_counts):
            raise ConfigurationError(
                f"smallest batch size ({min(self.batch_sizes)}) must be >= the "
                f"largest GPU count ({max(self.gpu_counts)})"
            )
        if self.clusters and not self.policies:
            raise ConfigurationError(
                "a tune space with cluster candidates also needs a policies axis"
            )
        cluster_names = [cluster.name for cluster in self.clusters]
        if len(set(cluster_names)) != len(cluster_names):
            raise ConfigurationError(
                "cluster candidates must have distinct names (pass name=... to "
                f"cluster_from_shorthand); got {cluster_names}"
            )
        for cluster in self.clusters:
            if max(self.gpu_counts) > cluster.max_gpus_per_node:
                raise ConfigurationError(
                    f"gpu count {max(self.gpu_counts)} exceeds the largest node of "
                    f"cluster {cluster.name!r} ({cluster.max_gpus_per_node} GPUs)"
                )

    # ------------------------------------------------------------------ #
    @property
    def has_cluster_axes(self) -> bool:
        """Whether this space crosses placement policies (fleet objectives)."""
        return bool(self.policies)

    def effective_clusters(self) -> Tuple[ClusterSpec, ...]:
        """Cluster candidates, defaulting to the standard 4-node fleet."""
        if self.clusters:
            return self.clusters
        from repro.cluster.spec import default_cluster

        return (default_cluster(),)

    def __len__(self) -> int:
        base = (
            len(self.strategies)
            * len(self.batch_sizes)
            * len(self.gpu_counts)
            * len(self.tasks)
            * len(self.datasets)
        )
        if self.has_cluster_axes:
            return base * len(self.policies) * len(self.effective_clusters())
        return base * len(self.servers)

    def points(self) -> Tuple[TunePoint, ...]:
        """Every candidate of the grid, in a deterministic axis order.

        Example:
            >>> from repro.tune.space import TuneSpace
            >>> space = TuneSpace(strategies=("DP",), batch_sizes=(128,),
            ...                   gpu_counts=(2,), servers=("a6000", "2080ti"))
            >>> [p.server for p in space.points()]
            ['a6000', '2080ti']
        """
        points = []
        cells = itertools.product(
            self.tasks, self.datasets, self.gpu_counts, self.batch_sizes, self.strategies
        )
        if self.has_cluster_axes:
            clusters = self.effective_clusters()
            for task, dataset, gpus, batch, strategy in cells:
                for cluster in clusters:
                    for policy in self.policies:
                        points.append(
                            TunePoint(
                                task=task,
                                dataset=dataset,
                                server=cluster.nodes[0].server,
                                num_gpus=gpus,
                                batch_size=batch,
                                strategy=strategy,
                                policy=policy,
                                cluster=cluster,
                            )
                        )
        else:
            for task, dataset, gpus, batch, strategy in cells:
                for server in self.servers:
                    points.append(
                        TunePoint(
                            task=task,
                            dataset=dataset,
                            server=server,
                            num_gpus=gpus,
                            batch_size=batch,
                            strategy=strategy,
                        )
                    )
        return tuple(points)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls,
        base: ExperimentConfig,
        *,
        strategies: Optional[Sequence[str]] = None,
        batch_sizes: Optional[Sequence[int]] = None,
        gpu_counts: Optional[Sequence[int]] = None,
        servers: Optional[Sequence[str]] = None,
        tasks: Optional[Sequence[str]] = None,
        datasets: Optional[Sequence[str]] = None,
        policies: Sequence[str] = (),
        clusters: Sequence[ClusterSpec] = (),
    ) -> "TuneSpace":
        """Grow a space around an existing config; ``None`` axes stay fixed.

        Example:
            >>> from repro.core.config import ExperimentConfig
            >>> from repro.tune.space import TuneSpace
            >>> space = TuneSpace.from_config(ExperimentConfig(),
            ...                               batch_sizes=(128, 256))
            >>> (len(space), space.points()[0].strategy)
            (2, 'TR+DPU+AHD')
        """

        def axis(values, fallback):
            return tuple(values) if values is not None else (fallback,)

        return cls(
            strategies=axis(strategies, base.strategy),
            batch_sizes=axis(batch_sizes, base.batch_size),
            gpu_counts=axis(gpu_counts, base.num_gpus),
            servers=axis(servers, base.server),
            tasks=axis(tasks, base.task),
            datasets=axis(datasets, base.dataset),
            policies=tuple(policies),
            clusters=tuple(clusters),
        )

    def to_dict(self) -> dict:
        return {
            "strategies": list(self.strategies),
            "batch_sizes": list(self.batch_sizes),
            "gpu_counts": list(self.gpu_counts),
            "servers": list(self.servers),
            "tasks": list(self.tasks),
            "datasets": list(self.datasets),
            "policies": list(self.policies),
            "clusters": [cluster.to_dict() for cluster in self.clusters],
            "size": len(self),
        }


def default_space() -> TuneSpace:
    """The default tuning grid: every strategy x batch x GPU count x server.

    96 candidates (6 strategies x 4 batch sizes x 2 GPU counts x 2 servers)
    on the paper's NAS/CIFAR-10 workload — the grid the CLI tunes when no
    axis flags are given.

    Example:
        >>> from repro.tune.space import default_space
        >>> len(default_space())
        96
    """
    return TuneSpace(servers=("a6000", "2080ti"))
