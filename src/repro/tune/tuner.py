"""The :func:`tune` orchestrator tying space, driver, objective and evaluator.

Covered by ``docs/TUNING.md`` (worked examples) and ``docs/API.md``.

``tune(...)`` is the function behind :meth:`repro.core.session.Session.tune`
and the ``python -m repro tune`` subcommand: it resolves the objective and
driver by name, runs the search against a session-backed evaluator, and
packages the winner, the Pareto frontier and every cache counter into a
:class:`~repro.tune.result.TuneResult`.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.core.session import Session
from repro.errors import ConfigurationError
from repro.tune.drivers import DRIVERS, SearchDriver
from repro.tune.evaluator import TuneEvaluator
from repro.tune.objective import resolve_objective
from repro.tune.result import TuneResult, pareto_frontier
from repro.tune.space import TuneSpace, default_space


def tune(
    space: Optional[TuneSpace] = None,
    *,
    objective: Union[str, object] = "epoch_time",
    driver: Union[str, SearchDriver] = "successive-halving",
    budget: int = 64,
    seed: int = 0,
    session: Optional[Session] = None,
    simulated_steps: int = 10,
    throughput_jobs: int = 12,
    faults=None,
    elastic: str = "restart",
    fault_seed: int = 0,
    tenants=None,
    price_curve=None,
    slo_deadline_slack: float = 900.0,
) -> TuneResult:
    """Search a tuning space for the best candidate under an objective.

    ``budget`` bounds the number of discrete-event simulations a driver may
    spend; analytic estimates are free.  The returned result carries the
    evaluator's and session's counters so callers can verify how much of the
    grid was actually simulated.

    ``faults`` / ``elastic`` / ``fault_seed`` configure the fault scenario
    the ``goodput_under_faults`` objective injects into its fleet probes
    (a :class:`~repro.cluster.faults.FaultModel`, a
    :class:`~repro.cluster.faults.FaultTrace`, a CLI-style spec string or
    ``None`` for the ``bursty-preemption`` preset); other objectives
    ignore them.  ``tenants`` / ``price_curve`` / ``slo_deadline_slack``
    likewise configure the contended fleet the ``deadline_hit_rate`` and
    ``cost_per_job`` objectives probe (tenant specs or a shorthand string,
    a :class:`~repro.cluster.market.PriceCurve` or preset/spec string,
    and the deadline slack in seconds).

    Example:
        >>> from repro.tune import TuneSpace, tune
        >>> space = TuneSpace(strategies=("DP", "TR", "TR+DPU+AHD"),
        ...                   batch_sizes=(128, 256), gpu_counts=(2, 4))
        >>> result = tune(space, objective="epoch_time", budget=6,
        ...               simulated_steps=4)
        >>> result.best.epoch_time <= result.frontier[-1].epoch_time
        True
    """
    if budget < 1:
        raise ConfigurationError("tuning budget must be >= 1 simulation")
    space = space if space is not None else default_space()
    resolved_objective = resolve_objective(objective)
    resolved_driver = DRIVERS.get(driver) if isinstance(driver, str) else driver
    if resolved_objective.needs_cluster and not space.has_cluster_axes:
        raise ConfigurationError(
            f"objective {resolved_objective.name!r} needs a fleet; give the tune "
            "space a policies axis (and optionally cluster candidates)"
        )

    evaluator = TuneEvaluator(
        session=session,
        simulated_steps=simulated_steps,
        throughput_jobs=throughput_jobs,
        faults=faults,
        elastic=elastic,
        fault_seed=fault_seed,
        tenants=tenants,
        price_curve=price_curve,
        slo_deadline_slack=slo_deadline_slack,
    )
    run = resolved_driver.search(
        space, resolved_objective, evaluator, budget=budget, seed=seed
    )
    if not run.evaluated:
        raise ConfigurationError(
            f"driver {resolved_driver.name!r} evaluated no candidates"
        )
    best = min(run.evaluated, key=resolved_objective.key)
    if math.isinf(resolved_objective.key(best)):
        raise ConfigurationError(
            f"no evaluated candidate is feasible under objective "
            f"{resolved_objective.name!r} (every candidate scored infinite — "
            "e.g. a deadline no configuration can meet); relax the constraint "
            "or widen the space"
        )
    return TuneResult(
        objective_name=resolved_objective.name,
        objective_sense=resolved_objective.sense,
        driver=resolved_driver.name,
        budget=budget,
        space_summary=space.to_dict(),
        best=best,
        measurements=run.evaluated,
        frontier=pareto_frontier(run.evaluated),
        trajectory=run.trajectory,
        notes=run.notes,
        evaluator_stats=evaluator.stats.to_dict(),
        session_stats=evaluator.session.stats.to_dict(),
    )
