"""Tests of breakdowns, speedups, memory reports and schedule rendering."""

import pytest

from repro.analysis.breakdown import (
    breakdown_fractions,
    breakdown_total,
    epoch_breakdown,
    ideal_breakdown,
)
from repro.analysis.memory_report import (
    average_memory_overhead,
    max_memory_gb,
    memory_overhead_table,
    per_rank_memory_gb,
)
from repro.analysis.schedule_viz import render_gantt, schedule_summary
from repro.analysis.speedup import (
    crossover_batch,
    geometric_mean_speedup,
    normalized_epoch_times,
    speedup_over,
    speedup_series,
)
from repro.core.runner import run_ablation
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def suite(default_config):
    return run_ablation(default_config, strategies=("DP", "TR", "TR+DPU+AHD"))


class TestBreakdown:
    def test_epoch_breakdown_categories(self, suite):
        breakdown = epoch_breakdown(suite.results["DP"])
        assert set(breakdown) == {"data_load", "teacher_exec", "student_exec", "idle"}
        assert breakdown_total(breakdown) > 0

    def test_fractions_sum_to_one(self, suite):
        fractions = breakdown_fractions(epoch_breakdown(suite.results["DP"]))
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_zero_breakdown(self):
        assert breakdown_fractions({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}

    def test_ideal_has_no_idle_and_beats_baseline(self, default_config, suite):
        ideal = ideal_breakdown(
            default_config.build_pair(),
            default_config.build_server(),
            default_config.build_dataset(),
            default_config.batch_size,
        )
        assert ideal["idle"] == 0.0
        # Fig. 2: the ideal bar is far below the DP baseline bar.
        assert breakdown_total(ideal) < breakdown_total(epoch_breakdown(suite.results["DP"]))

    def test_pipe_bd_teacher_time_less_than_dp(self, suite):
        # Teacher relaying removes the redundant prefix executions.
        dp = epoch_breakdown(suite.results["DP"])
        pipe_bd = epoch_breakdown(suite.results["TR+DPU+AHD"])
        assert pipe_bd["teacher_exec"] < dp["teacher_exec"]


class TestSpeedup:
    def test_speedup_over_and_series(self, suite):
        base = suite.results["DP"]
        assert speedup_over(base, base) == pytest.approx(1.0)
        series = speedup_series(suite.results, "DP")
        assert series["TR+DPU+AHD"] > series["DP"]

    def test_missing_baseline_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            speedup_series(suite.results, "LS")

    def test_geometric_mean(self):
        assert geometric_mean_speedup([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            geometric_mean_speedup([])
        with pytest.raises(ConfigurationError):
            geometric_mean_speedup([1.0, 0.0])

    def test_normalized_epoch_times_inverse(self, suite):
        normalized = normalized_epoch_times(suite.results)
        assert normalized["DP"] == pytest.approx(1.0)
        assert normalized["TR+DPU+AHD"] < 1.0

    def test_crossover_batch(self):
        series_a = {128: 2.0, 256: 2.0, 512: 2.0}
        series_b = {128: 1.0, 256: 2.5, 512: 3.0}
        assert crossover_batch(series_a, series_b) == 256
        assert crossover_batch(series_b, {128: 0.5, 256: 0.5, 512: 0.5}) is None


class TestMemoryReport:
    def test_per_rank_and_max(self, suite):
        per_rank = per_rank_memory_gb(suite.results["TR"])
        assert set(per_rank) == {0, 1, 2, 3}
        assert max_memory_gb(suite.results["TR"]) == pytest.approx(max(per_rank.values()))

    def test_average_overhead_tr_over_dp_positive(self, suite):
        overhead = average_memory_overhead(suite.results["TR"], suite.results["DP"])
        assert overhead > 0

    def test_overhead_table_excludes_baseline(self, suite):
        table = memory_overhead_table(suite.results, baseline="DP")
        assert "DP" not in table
        assert "TR" in table

    def test_mismatched_devices_rejected(self, suite):
        from dataclasses import replace

        broken = replace(suite.results["TR"], peak_memory_bytes={0: 1.0})
        with pytest.raises(ConfigurationError):
            average_memory_overhead(broken, suite.results["DP"])


class TestScheduleViz:
    def test_schedule_summary_mentions_every_device(self, suite):
        summary = schedule_summary(suite.results["TR+DPU+AHD"].plan)
        for device in range(4):
            assert f"device {device}" in summary
        assert "DP" in schedule_summary(suite.results["DP"].plan) or "all devices" in schedule_summary(
            suite.results["DP"].plan
        )

    def test_render_gantt_has_one_row_per_device(self, suite):
        trace = suite.results["TR+DPU+AHD"].trace
        chart = render_gantt(trace, num_devices=4, width=60)
        assert chart.count("gpu") == 4
        assert "legend" in chart

    def test_render_gantt_validates_width(self, suite):
        with pytest.raises(ValueError):
            render_gantt(suite.results["TR"].trace, num_devices=4, width=5)

    def test_render_gantt_empty_window(self, suite):
        chart = render_gantt(suite.results["TR"].trace, num_devices=4, start=5.0, end=5.0)
        assert chart == "(empty trace)"
