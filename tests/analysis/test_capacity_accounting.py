"""Unit tests for crash-adjusted capacity accounting on ClusterReport.

Regression for the utilization bug: ``gpu_utilization`` divided busy
GPU-seconds by ``total_gpus * makespan`` even when crash faults had
permanently removed GPUs, under-reporting utilization of the surviving
fleet.  The denominator must be the live-capacity integral: each crash
subtracts ``removed_gpus * (makespan - crash_time)``.
"""

import pytest

from repro.analysis.cluster_report import ClusterReport, JobRecord


def record(job_id, start, finish, gpus=2, node="a"):
    return JobRecord(
        job_id=job_id,
        node=node,
        gpus=gpus,
        strategy="TR",
        cell="nas/cifar10/a6000x2/b128",
        arrival_time=start,
        start_time=start,
        finish_time=finish,
    )


def report(records, fault_events=()):
    return ClusterReport(
        policy="fifo",
        cluster_name="cluster",
        workload_name="w",
        node_gpus={"a": 4, "b": 4},
        records=tuple(records),
        fault_events=tuple(fault_events),
    )


class TestCapacityIntegral:
    def test_fault_free_capacity_is_total_gpus_times_makespan(self):
        fleet = report([record("j0", 0.0, 100.0)])
        assert fleet.capacity_gpu_seconds == pytest.approx(8 * 100.0)

    def test_partial_crash_subtracts_from_crash_time_onwards(self):
        fleet = report(
            [record("j0", 0.0, 100.0)],
            fault_events=[{"kind": "crash", "node": "a", "time": 50.0, "gpus": 2}],
        )
        # 8 GPUs * 100 s, minus the 2 crashed GPUs for the last 50 s.
        assert fleet.capacity_gpu_seconds == pytest.approx(800.0 - 2 * 50.0)

    def test_whole_node_crash_removes_all_live_gpus(self):
        fleet = report(
            [record("j0", 0.0, 100.0)],
            fault_events=[{"kind": "crash", "node": "b", "time": 25.0}],
        )
        assert fleet.capacity_gpu_seconds == pytest.approx(800.0 - 4 * 75.0)

    def test_repeated_crashes_never_drive_a_node_negative(self):
        fleet = report(
            [record("j0", 0.0, 100.0)],
            fault_events=[
                {"kind": "crash", "node": "a", "time": 0.0, "gpus": 3},
                {"kind": "crash", "node": "a", "time": 0.0, "gpus": 3},
            ],
        )
        # Second crash only removes the one GPU still live.
        assert fleet.capacity_gpu_seconds == pytest.approx(800.0 - 4 * 100.0)

    def test_non_crash_and_unknown_node_events_are_ignored(self):
        fleet = report(
            [record("j0", 0.0, 100.0)],
            fault_events=[
                {"kind": "preempt", "node": "a", "time": 10.0, "gpus": 4},
                {"kind": "crash", "node": "ghost", "time": 10.0, "gpus": 4},
            ],
        )
        assert fleet.capacity_gpu_seconds == pytest.approx(800.0)

    def test_utilization_is_scored_against_surviving_capacity(self):
        # 2 GPUs busy for the whole 100 s makespan = 200 busy GPU-seconds.
        records = [record("j0", 0.0, 100.0, gpus=2)]
        healthy = report(records)
        degraded = report(
            records,
            fault_events=[{"kind": "crash", "node": "b", "time": 0.0}],
        )
        assert healthy.gpu_utilization == pytest.approx(200.0 / 800.0)
        # The old total_gpus * makespan denominator would report 0.25 here
        # too; the live-capacity integral credits the surviving fleet.
        assert degraded.gpu_utilization == pytest.approx(200.0 / 400.0)
        assert degraded.gpu_utilization > healthy.gpu_utilization

    def test_fully_crashed_fleet_reports_zero_utilization(self):
        fleet = report(
            [record("j0", 0.0, 100.0)],
            fault_events=[
                {"kind": "crash", "node": "a", "time": 0.0},
                {"kind": "crash", "node": "b", "time": 0.0},
            ],
        )
        assert fleet.capacity_gpu_seconds == 0.0
        assert fleet.gpu_utilization == 0.0
