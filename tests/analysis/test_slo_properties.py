"""Property-based tests for the SLO analytics on :class:`ClusterReport`.

The fairness index and the deadline/cost rates are consumed by tune
objectives and CI gates, so they must be total functions: bounded on
every record set hypothesis can dream up, and never dividing by zero on
empty or degenerate inputs.  The deterministic hypothesis profile is
registered in ``tests/conftest.py``.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.analysis.cluster_report import ClusterReport, JobRecord  # noqa: E402


def record(
    index: int,
    wait: float,
    service: float,
    tenant: str,
    deadline_offset=None,
    cost=None,
) -> JobRecord:
    arrival = float(index)
    start = arrival + wait
    finish = start + service
    return JobRecord(
        job_id=f"j{index}",
        node="a6000-0",
        gpus=1,
        strategy="TR",
        cell="nas/cifar10/a6000x1/b128",
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        tenant=tenant,
        deadline=arrival + deadline_offset if deadline_offset is not None else None,
        cost_usd=cost,
    )


def report(records, tenants=()):
    return ClusterReport(
        policy="fifo",
        cluster_name="cluster",
        workload_name="w",
        node_gpus={"a6000-0": 4},
        records=tuple(records),
        tenants=tuple({"name": name} for name in tenants),
    )


# One hypothesis-drawn job: (wait, service, tenant, deadline offset or
# None, cost or None).  Waits/services span six orders of magnitude to
# probe the slowdown clamp; tenants draw from a tiny alphabet so multi-
# tenant collisions actually happen.
job_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    st.sampled_from(["a", "b", "c", "d"]),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e3, allow_nan=False)),
)


class TestFairnessIndexBounds:
    @given(st.lists(job_strategy, min_size=0, max_size=24))
    def test_always_within_unit_interval(self, jobs):
        records = [
            record(i, wait, service, tenant, deadline, cost)
            for i, (wait, service, tenant, deadline, cost) in enumerate(jobs)
        ]
        index = report(records).fairness_index
        assert 0.0 <= index <= 1.0

    @given(st.lists(job_strategy, min_size=1, max_size=24))
    def test_single_tenant_is_perfectly_fair(self, jobs):
        records = [
            record(i, wait, service, "solo", deadline, cost)
            for i, (wait, service, _, deadline, cost) in enumerate(jobs)
        ]
        assert report(records).fairness_index == 1.0

    @given(st.lists(job_strategy, min_size=2, max_size=24))
    def test_identical_slowdowns_are_perfectly_fair(self, jobs):
        # Same wait/service for every tenant's jobs -> equal slowdowns ->
        # Jain's index must sit at its maximum.
        records = [
            record(i, 10.0, 50.0, tenant)
            for i, (_, _, tenant, _, _) in enumerate(jobs)
        ]
        assert report(records).fairness_index == pytest.approx(1.0)


class TestEmptyAndDegenerateInputs:
    def test_empty_report_raises_nothing(self):
        empty = report([])
        assert empty.fairness_index == 1.0
        assert empty.deadline_hit_rate == 1.0
        assert empty.cost_per_job == 0.0
        assert empty.total_cost_usd == 0.0
        assert empty.per_tenant() == {}
        assert empty.gpu_utilization == 0.0

    def test_declared_tenants_without_records_are_still_reported(self):
        # Declared-but-idle tenants must appear with safe zero stats, not
        # blow up on a 0/0 mean.
        empty = report([], tenants=("prod", "batch"))
        breakdown = empty.per_tenant()
        assert set(breakdown) == {"prod", "batch"}
        for stats in breakdown.values():
            assert stats["jobs"] == 0
            assert stats["mean_wait_s"] == 0.0
            assert stats["mean_slowdown"] == 0.0
            assert stats["deadline_hit_rate"] == 1.0
            assert stats["cost_usd"] == 0.0

    @given(st.lists(job_strategy, min_size=0, max_size=24))
    def test_slo_metrics_are_total_functions(self, jobs):
        records = [
            record(i, wait, service, tenant, deadline, cost)
            for i, (wait, service, tenant, deadline, cost) in enumerate(jobs)
        ]
        fleet = report(records, tenants=("a", "b", "c", "d", "idle"))
        assert 0.0 <= fleet.deadline_hit_rate <= 1.0
        assert fleet.cost_per_job >= 0.0
        breakdown = fleet.per_tenant()
        assert "idle" in breakdown
        for stats in breakdown.values():
            assert 0.0 <= stats["deadline_hit_rate"] <= 1.0
            assert stats["mean_slowdown"] >= 0.0

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_zero_service_jobs_never_divide_by_zero(self, wait):
        # service_time == 0 -> slowdown hits its 1e-9 clamp, not a crash.
        records = [record(0, wait, 0.0, "a"), record(1, 0.0, 0.0, "b")]
        fleet = report(records)
        assert 0.0 <= fleet.fairness_index <= 1.0
