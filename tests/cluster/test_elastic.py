"""Tests for elastic recovery: policies, fault-injected runs, acceptance."""

import pytest

from repro.cluster.elastic import (
    ELASTIC_POLICIES,
    ElasticDecision,
    register_elastic_policy,
    resolve_elastic,
)
from repro.cluster.faults import FAULT_PRESETS, FaultEvent, FaultTrace
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.spec import cluster_from_shorthand
from repro.cluster.workload import JobMix, JobSpec, Workload, bursty_workload
from repro.core.session import Session
from repro.errors import ClusterError, ConfigurationError

MIX = JobMix(
    tasks=("nas",),
    datasets=("cifar10",),
    batch_sizes=(128,),
    gpu_demands=(4,),
    strategies=("TR+DPU+AHD",),
    epochs=(2, 3),
)


def job(job_id, arrival, gpus, **overrides):
    defaults = dict(
        job_id=job_id,
        arrival_time=arrival,
        gpus=gpus,
        batch_size=128,
        strategy="TR+DPU+AHD",
        simulated_steps=4,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert ELASTIC_POLICIES.names() == ("restart", "shrink", "migrate")

    def test_resolve_by_name_and_instance(self):
        assert resolve_elastic("shrink").name == "shrink"
        instance = ELASTIC_POLICIES.get("migrate")
        assert resolve_elastic(instance) is instance

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="restart"):
            resolve_elastic("teleport")

    def test_custom_policy_pluggable(self):
        @register_elastic_policy
        class AlwaysQueue:
            name = "always-queue"

            def reschedule(self, job, lost_node, free_gpus, cluster):
                return ElasticDecision(action="queue")

        try:
            assert "always-queue" in ELASTIC_POLICIES
            assert resolve_elastic("always-queue").reschedule(
                None, "n", {}, None
            ).action == "queue"
        finally:
            ELASTIC_POLICIES.unregister("always-queue")

    def test_decision_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticDecision(action="panic")
        with pytest.raises(ConfigurationError):
            ElasticDecision(action="continue")  # no node
        with pytest.raises(ConfigurationError):
            ElasticDecision(action="continue", node="n0", gpus=0)


class TestBuiltinDecisions:
    def test_shrink_continues_on_survivors(self):
        policy = ELASTIC_POLICIES.get("shrink")
        decision = policy.reschedule(
            job("j", 0.0, 4), "n0", {"n0": 2, "n1": 0}, None
        )
        assert (decision.action, decision.node, decision.gpus) == ("continue", "n0", 2)

    def test_shrink_falls_back_to_queue_when_node_dead(self):
        policy = ELASTIC_POLICIES.get("shrink")
        assert policy.reschedule(job("j", 0.0, 4), "n0", {"n0": 0}, None).action == "queue"

    def test_migrate_prefers_tightest_other_node(self):
        policy = ELASTIC_POLICIES.get("migrate")
        decision = policy.reschedule(
            job("j", 0.0, 2), "n0", {"n0": 4, "n1": 4, "n2": 2}, None
        )
        assert (decision.node, decision.gpus) == ("n2", 2)

    def test_restart_always_queues(self):
        policy = ELASTIC_POLICIES.get("restart")
        assert policy.reschedule(job("j", 0.0, 1), "n0", {"n0": 4}, None).action == "queue"


class TestFaultInjectedRuns:
    def cluster(self):
        return cluster_from_shorthand("a6000:4,a6000:4", name="duo")

    def test_preempt_evicts_and_shrink_finishes_on_fewer_gpus(self):
        # One 4-GPU job, preempted mid-run: shrink must finish it on the
        # node's 2 survivors.
        workload = Workload(name="one", jobs=(job("j0", 0.0, 4, epochs=3),))
        trace = FaultTrace(
            name="mid-run",
            events=(FaultEvent(time=10.0, kind="preempt", node="a6000-0",
                               gpus=2, duration=1e6),),
        )
        report = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"),
            faults=trace,
            elastic="shrink",
            session=Session(),
        ).run(workload)
        assert report.num_jobs == 1
        record = report.records[0]
        assert record.preemptions == 1
        assert record.final_gpus == 2
        assert record.wasted_gpu_seconds > 0
        assert report.goodput < report.gpu_utilization

    def test_crash_kills_unplaceable_jobs(self):
        workload = Workload(
            name="doomed",
            jobs=(job("j0", 0.0, 4, epochs=3), job("j1", 0.1, 4)),
        )
        trace = FaultTrace(
            name="total-loss",
            events=(FaultEvent(time=5.0, kind="crash", node="a6000-0"),),
        )
        report = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"),
            faults=trace,
            elastic="restart",
            session=Session(),
        ).run(workload)
        assert report.num_jobs == 0
        assert report.jobs_killed == 2
        assert {entry["job_id"] for entry in report.killed} == {"j0", "j1"}
        # The running job's occupancy until the crash counts as waste.
        assert report.wasted_gpu_hours > 0

    def test_partial_crash_shrinks_fleet_but_smaller_gangs_survive(self):
        workload = Workload(
            name="mixed",
            jobs=(job("j0", 0.0, 4, epochs=2), job("j1", 0.1, 2), job("j2", 0.2, 4)),
        )
        trace = FaultTrace(
            name="half-loss",
            events=(FaultEvent(time=5.0, kind="crash", node="a6000-0", gpus=2),),
        )
        report = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"),
            faults=trace,
            elastic="restart",
            session=Session(),
        ).run(workload)
        # 4-GPU gangs can never fit the 2-GPU remainder; the 2-GPU job can.
        assert {r.job_id for r in report.records} == {"j1"}
        assert {entry["job_id"] for entry in report.killed} == {"j0", "j2"}

    def test_straggler_stretches_makespan_without_evictions(self):
        workload = Workload(name="one", jobs=(job("j0", 0.0, 4, epochs=2),))
        clean = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"), session=Session()
        ).run(workload)
        trace = FaultTrace(
            name="slow",
            events=(FaultEvent(time=1.0, kind="straggler", node="a6000-0",
                               factor=2.0, duration=1e6),),
        )
        slowed = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"),
            faults=trace,
            session=Session(),
        ).run(workload)
        assert slowed.num_jobs == 1
        assert slowed.makespan > clean.makespan
        assert slowed.interruptions == 0

    def test_straggler_window_end_restores_speed(self):
        workload = Workload(name="one", jobs=(job("j0", 0.0, 4, epochs=2),))
        short = FaultTrace(
            name="short-slow",
            events=(FaultEvent(time=1.0, kind="straggler", node="a6000-0",
                               factor=2.0, duration=5.0),),
        )
        long = FaultTrace(
            name="long-slow",
            events=(FaultEvent(time=1.0, kind="straggler", node="a6000-0",
                               factor=2.0, duration=1e6),),
        )
        def solo():
            return cluster_from_shorthand("a6000:4", name="solo")

        short_report = ClusterSimulator(solo(), faults=short, session=Session()).run(workload)
        long_report = ClusterSimulator(solo(), faults=long, session=Session()).run(workload)
        assert short_report.makespan < long_report.makespan

    def test_unknown_trace_node_rejected(self):
        workload = Workload(name="one", jobs=(job("j0", 0.0, 2),))
        trace = FaultTrace(
            name="bad", events=(FaultEvent(time=1.0, kind="crash", node="mars"),)
        )
        with pytest.raises(ClusterError, match="mars"):
            ClusterSimulator(
                cluster_from_shorthand("a6000:4", name="solo"),
                faults=trace,
                session=Session(),
            ).run(workload)

    def test_recovery_durations_feed_p95(self):
        # Whole-node preemption forces a queue-and-wait recovery.
        workload = Workload(name="one", jobs=(job("j0", 0.0, 4, epochs=3),))
        trace = FaultTrace(
            name="outage",
            events=(FaultEvent(time=10.0, kind="preempt", node="a6000-0",
                               gpus=4, duration=50.0),),
        )
        report = ClusterSimulator(
            cluster_from_shorthand("a6000:4", name="solo"),
            faults=trace,
            elastic="restart",
            session=Session(),
        ).run(workload)
        assert report.num_jobs == 1
        assert len(report.recoveries) == 1
        assert report.recovery_p95 == pytest.approx(50.0)
        assert report.records[0].recovery_seconds == pytest.approx(50.0)


class TestAcceptance:
    """The ISSUE's acceptance criteria, pinned as tests."""

    def test_shrink_beats_restart_on_goodput_in_bursty_preemption_preset(self):
        cluster = cluster_from_shorthand("a6000:4,a6000:4", name="duo")
        workload = bursty_workload(10, burst_size=5, burst_gap=60.0, seed=0, mix=MIX)
        session = Session()
        reports = {}
        for elastic in ("restart", "shrink"):
            simulator = ClusterSimulator(
                cluster,
                policy="fifo",
                session=session,
                faults=FAULT_PRESETS["bursty-preemption"],
                elastic=elastic,
                fault_seed=0,
            )
            reports[elastic] = simulator.run(workload)
        assert reports["shrink"].interruptions > 0
        assert reports["shrink"].goodput > reports["restart"].goodput
        assert (
            reports["shrink"].goodput_jobs_per_hour
            > reports["restart"].goodput_jobs_per_hour
        )

    def test_identical_fault_sweep_hydrates_fully_from_store(self, tmp_path):
        cluster = cluster_from_shorthand("a6000:4,a6000:4", name="duo")
        workload = bursty_workload(8, burst_size=4, burst_gap=60.0, seed=1, mix=MIX)
        store = str(tmp_path / "store")

        def sweep(session):
            out = []
            for elastic in ("restart", "shrink"):
                simulator = ClusterSimulator(
                    cluster,
                    policy="fifo",
                    session=session,
                    faults=FAULT_PRESETS["bursty-preemption"],
                    elastic=elastic,
                    fault_seed=0,
                )
                out.append(simulator.run(workload))
            return out

        cold_session = Session(store=store)
        cold = sweep(cold_session)
        assert cold_session.stats.runs > 0

        warm_session = Session(store=store)
        warm = sweep(warm_session)
        # 100% hydration: zero discrete-event simulations on the replay.
        assert warm_session.stats.runs == 0
        assert warm_session.stats.store_hits > 0
        for before, after in zip(cold, warm):
            assert before.to_json() == after.to_json()


class TestPerNodeAttribution:
    def test_migrated_job_charges_both_nodes(self):
        # A 4-GPU job starts on a6000-0, the node burns down, migrate moves
        # it to a6000-1: both nodes must show busy time, and neither may
        # exceed 100% utilization.
        workload = Workload(name="one", jobs=(job("j0", 0.0, 4, epochs=3),))
        trace = FaultTrace(
            name="burn",
            events=(FaultEvent(time=10.0, kind="crash", node="a6000-0"),),
        )
        report = ClusterSimulator(
            cluster_from_shorthand("a6000:4,a6000:4", name="duo"),
            policy="fifo",
            faults=trace,
            elastic="migrate",
            session=Session(),
        ).run(workload)
        assert report.num_jobs == 1
        assert report.records[0].node == "a6000-1"  # final node
        utilization = report.per_node_utilization()
        assert utilization["a6000-0"] > 0  # pre-crash occupancy attributed
        assert utilization["a6000-1"] > 0
        assert all(0.0 <= value <= 1.0 for value in utilization.values())
        busy = report.node_busy_gpu_seconds
        assert busy["a6000-0"] == pytest.approx(4 * 10.0)  # 4 GPUs for 10 s
