"""Golden fault-trace regression tests.

Two committed JSON fault traces under ``tests/cluster/traces/`` are
replayed against a fixed workload and cluster; the resulting
:class:`~repro.analysis.cluster_report.ClusterReport` JSON must be
byte-stable across repeated runs (fresh sessions, fresh simulators) and
across fault seeds for generated models — the reproducibility guarantee
the ISSUE's acceptance criteria pin.
"""

from pathlib import Path

import json

import pytest

from repro.analysis.cluster_report import ClusterReport
from repro.cluster.faults import FAULT_PRESETS, FaultTrace
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.spec import cluster_from_shorthand
from repro.cluster.workload import JobMix, bursty_workload
from repro.core.session import Session

TRACES = Path(__file__).parent / "traces"

#: The fixed scenario every golden replay uses.
MIX = JobMix(
    tasks=("nas",),
    datasets=("cifar10",),
    batch_sizes=(128,),
    gpu_demands=(2, 4),
    strategies=("TR", "TR+DPU+AHD"),
    epochs=(1, 2),
)


def golden_workload():
    return bursty_workload(10, burst_size=5, burst_gap=90.0, seed=4, mix=MIX)


def golden_cluster():
    return cluster_from_shorthand("a6000:4,a6000:4", name="golden-duo")


def replay(trace, elastic="shrink", session=None, policy="fifo"):
    simulator = ClusterSimulator(
        golden_cluster(),
        policy=policy,
        session=session if session is not None else Session(),
        faults=trace,
        elastic=elastic,
    )
    return simulator.run(golden_workload())


@pytest.mark.parametrize("trace_name", ["preempt_burst", "crash_straggler"])
class TestGoldenTraces:
    def test_trace_loads_and_is_non_trivial(self, trace_name):
        trace = FaultTrace.load(TRACES / f"{trace_name}.json")
        assert len(trace) >= 4
        assert all(event.node.startswith("a6000-") for event in trace)

    def test_report_json_is_byte_stable_across_runs(self, trace_name):
        trace = FaultTrace.load(TRACES / f"{trace_name}.json")
        first = replay(trace, session=Session())
        second = replay(trace, session=Session())
        assert first.to_json() == second.to_json()

    def test_report_json_round_trips(self, trace_name):
        trace = FaultTrace.load(TRACES / f"{trace_name}.json")
        report = replay(trace)
        parsed = ClusterReport.from_dict(json.loads(report.to_json()))
        assert parsed.to_json() == report.to_json()
        assert parsed.faults_injected == len(trace)
        assert parsed.elastic_policy == "shrink"

    def test_faults_actually_bite(self, trace_name):
        trace = FaultTrace.load(TRACES / f"{trace_name}.json")
        report = replay(trace)
        assert report.interruptions > 0
        assert report.wasted_gpu_hours > 0
        assert 0.0 < report.goodput <= report.gpu_utilization

    def test_elastic_policies_share_one_epoch_memo(self, trace_name):
        trace = FaultTrace.load(TRACES / f"{trace_name}.json")
        session = Session()
        replay(trace, elastic="restart", session=session)
        runs_after_first = session.stats.runs
        replay(trace, elastic="shrink", session=session)
        # Shrink re-partitions gangs onto smaller GPU counts: those are new
        # cells, so a few extra simulations are expected — but never a full
        # re-run of the base cells.
        assert session.stats.runs >= runs_after_first
        assert session.stats.profile_hits > 0


class TestGeneratedTraceStability:
    def test_same_seed_same_trace_json(self):
        cluster = golden_cluster()
        model = FAULT_PRESETS["bursty-preemption"]
        first = model.trace(cluster, horizon=900.0, seed=11)
        second = model.trace(cluster, horizon=900.0, seed=11)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        cluster = golden_cluster()
        model = FAULT_PRESETS["bursty-preemption"]
        assert (
            model.trace(cluster, horizon=900.0, seed=1).to_json()
            != model.trace(cluster, horizon=900.0, seed=2).to_json()
        )

    @pytest.mark.parametrize("seed", [0, 7])
    def test_model_driven_report_is_byte_stable_per_seed(self, seed):
        model = FAULT_PRESETS["bursty-preemption"]
        reports = []
        for _ in range(2):
            simulator = ClusterSimulator(
                golden_cluster(),
                policy="fifo",
                session=Session(),
                faults=model,
                elastic="shrink",
                fault_seed=seed,
            )
            reports.append(simulator.run(golden_workload()))
        assert reports[0].to_json() == reports[1].to_json()
