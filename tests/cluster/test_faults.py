"""Unit tests for fault models, traces and the recovery cost model."""

import pytest

from repro.cluster.faults import (
    FAULT_PRESETS,
    FaultEvent,
    FaultModel,
    FaultTrace,
    RecoveryModel,
    parse_fault_spec,
    recovery_fraction,
    resolve_faults,
    strategy_is_decoupled,
)
from repro.cluster.spec import default_cluster
from repro.cluster.workload import poisson_workload
from repro.errors import ConfigurationError


class TestFaultEvent:
    def test_round_trip(self):
        event = FaultEvent(time=5.0, kind="preempt", node="n0", gpus=2, duration=60.0)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_whole_node_default(self):
        assert FaultEvent(time=0.0, kind="crash", node="n0").gpus is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=-1.0, kind="crash", node="n0"),
            dict(time=0.0, kind="meteor", node="n0"),
            dict(time=0.0, kind="crash", node=""),
            dict(time=0.0, kind="crash", node="n0", gpus=0),
            dict(time=0.0, kind="preempt", node="n0"),  # no duration
            dict(time=0.0, kind="straggler", node="n0", duration=10.0, factor=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultEvent(**kwargs)


class TestFaultTrace:
    def test_unsorted_events_rejected(self):
        events = (
            FaultEvent(time=10.0, kind="crash", node="n0"),
            FaultEvent(time=5.0, kind="crash", node="n1"),
        )
        with pytest.raises(ConfigurationError):
            FaultTrace(name="bad", events=events)

    def test_from_dict_sorts(self):
        payload = {
            "name": "t",
            "events": [
                {"time": 10.0, "kind": "crash", "node": "n0"},
                {"time": 5.0, "kind": "crash", "node": "n1"},
            ],
        }
        trace = FaultTrace.from_dict(payload)
        assert [event.time for event in trace] == [5.0, 10.0]

    def test_save_load_round_trip(self, tmp_path):
        trace = FaultTrace(
            name="demo",
            events=(FaultEvent(time=1.0, kind="straggler", node="n0",
                               duration=10.0, factor=2.0),),
        )
        path = trace.save(tmp_path / "trace.json")
        assert FaultTrace.load(path) == trace

    def test_describe_counts_kinds(self):
        trace = FaultTrace(
            name="demo",
            events=(
                FaultEvent(time=1.0, kind="crash", node="n0"),
                FaultEvent(time=2.0, kind="crash", node="n1"),
            ),
        )
        assert "2 crash" in trace.describe()


class TestFaultModel:
    def test_same_seed_same_trace(self):
        model = FaultModel(crash_rate=0.01, preempt_rate=0.02, straggler_rate=0.01)
        cluster = default_cluster()
        assert model.trace(cluster, 500.0, seed=3) == model.trace(cluster, 500.0, seed=3)

    def test_horizon_bounds_events(self):
        model = FaultModel(preempt_rate=0.05)
        trace = model.trace(default_cluster(), 200.0, seed=0)
        assert all(event.time < 200.0 for event in trace)

    def test_weibull_arrivals_are_deterministic_too(self):
        model = FaultModel(preempt_rate=0.05, arrival="weibull", weibull_shape=0.5)
        cluster = default_cluster()
        assert model.trace(cluster, 400.0, seed=1) == model.trace(cluster, 400.0, seed=1)

    def test_zero_rate_model_yields_empty_trace(self):
        assert len(FaultModel().trace(default_cluster(), 100.0)) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(crash_rate=-1.0)
        with pytest.raises(ConfigurationError):
            FaultModel(arrival="uniform")
        with pytest.raises(ConfigurationError):
            FaultModel(straggler_factor=0.9)


class TestParseFaultSpec:
    def test_preset_lookup(self):
        model = parse_fault_spec("bursty-preemption")
        assert model is FAULT_PRESETS["bursty-preemption"]
        assert model.preempt_gpus == 2

    def test_rate_list(self):
        model = parse_fault_spec("crash:0.01,straggler:0.002")
        assert (model.crash_rate, model.straggler_rate) == (0.01, 0.002)
        assert model.preempt_rate == 0.0

    @pytest.mark.parametrize(
        "spec", ["", "meteor:0.1", "crash", "crash:abc", "crash:0", "crash:0.1,crash:0.2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)


class TestRecoveryModel:
    def test_decoupled_strategies_lose_less(self):
        assert strategy_is_decoupled("TR+DPU+AHD")
        assert strategy_is_decoupled("LS")
        assert not strategy_is_decoupled("DP")
        assert not strategy_is_decoupled("TR")
        assert recovery_fraction("TR", 4) == 1.0
        assert recovery_fraction("TR+DPU", 4) == 0.25

    def test_lost_seconds_is_since_last_checkpoint(self):
        model = RecoveryModel(checkpoint_interval=100.0)
        assert model.lost_seconds("DP", 4, 250.0) == 50.0
        assert model.lost_seconds("DP", 4, 0.0) == 0.0
        assert model.lost_seconds("TR+DPU+AHD", 2, 250.0) == 25.0

    def test_overheads_by_action(self):
        model = RecoveryModel()
        assert model.overhead("shrink") == model.repartition_overhead
        with pytest.raises(ConfigurationError):
            model.overhead("teleport")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryModel(checkpoint_interval=0.0)
        with pytest.raises(ConfigurationError):
            RecoveryModel(restart_overhead=-1.0)


class TestResolveFaults:
    def test_none_passes_through(self):
        workload = poisson_workload(3, rate=1.0)
        assert resolve_faults(None, default_cluster(), workload) is None

    def test_spec_string_materialises(self):
        workload = poisson_workload(3, rate=1.0)
        trace = resolve_faults("preempt:0.05", default_cluster(), workload, seed=1)
        assert isinstance(trace, FaultTrace)

    def test_trace_passes_through_unchanged(self):
        workload = poisson_workload(3, rate=1.0)
        trace = FaultTrace(name="t", events=())
        assert resolve_faults(trace, default_cluster(), workload) is trace

    def test_garbage_rejected(self):
        workload = poisson_workload(3, rate=1.0)
        with pytest.raises(ConfigurationError):
            resolve_faults(42, default_cluster(), workload)
