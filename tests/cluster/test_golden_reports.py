"""Golden cluster-report regression: the two committed traces, pinned.

``tests/cluster/test_fault_traces.py`` proves the replays are byte-stable
*within* one code version; these goldens pin them *across* versions.  Both
committed fault traces are replayed on the golden duo cluster and the
resulting :class:`~repro.analysis.cluster_report.ClusterReport` JSON must
match the committed documents byte-for-byte — the lock that the event-loop
tightening and batched epoch-memo fills changed no observable behaviour.

Refreshing after an *intentional* simulator change::

    PYTHONPATH=src REPRO_UPDATE_GOLDEN=1 python -m pytest \
        tests/cluster/test_golden_reports.py -q
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster.faults import FaultTrace
from repro.core.session import Session
from tests.cluster.test_fault_traces import TRACES, replay

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("trace_name", ["preempt_burst", "crash_straggler"])
def test_trace_report_matches_golden(trace_name):
    trace = FaultTrace.load(TRACES / f"{trace_name}.json")
    report = replay(trace, elastic="shrink", session=Session(), policy="fifo")
    payload = report.to_json() + "\n"
    path = GOLDEN_DIR / f"{trace_name}_report.json"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)
        pytest.skip(f"golden refreshed: {path.name}")
    assert path.is_file(), (
        f"missing golden {path}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert payload == path.read_text(), (
        f"{trace_name} report drifted from {path.name}; if the change is "
        "intentional, refresh with REPRO_UPDATE_GOLDEN=1"
    )
